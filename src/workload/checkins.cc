#include "workload/checkins.h"

#include <algorithm>

namespace muppet {
namespace workload {

const std::vector<std::string>& RetailerNames() {
  static const std::vector<std::string>* kNames =
      new std::vector<std::string>{"Walmart", "Sam's Club", "Best Buy",
                                   "JCPenney", "Target"};
  return *kNames;
}

namespace {

// Free-text venue spellings per retailer, to exercise the mapper's
// pattern matching (the Appendix A mapper matches "(?i)\s*wal.*mart.*").
std::string VenueSpelling(const std::string& retailer, Rng& rng) {
  const uint64_t variant = rng.Uniform(3);
  if (retailer == "Walmart") {
    const char* v[] = {"Walmart Supercenter #31", "WAL-MART", "wal mart"};
    return v[variant];
  }
  if (retailer == "Sam's Club") {
    const char* v[] = {"Sam's Club", "SAMS CLUB #12", "sam s club"};
    return v[variant];
  }
  if (retailer == "Best Buy") {
    const char* v[] = {"Best Buy", "BEST BUY Store 101", "best buy mobile"};
    return v[variant];
  }
  if (retailer == "JCPenney") {
    const char* v[] = {"JCPenney", "JC Penney", "jcpenney outlet"};
    return v[variant];
  }
  const char* v[] = {"Target", "Target Store T-204", "SuperTarget"};
  return v[variant];
}

}  // namespace

CheckinGenerator::CheckinGenerator(CheckinOptions options,
                                   Timestamp start_ts)
    : options_(options),
      users_(options.num_users, /*skew=*/0.8),
      venues_(options.num_venues, options.venue_skew),
      rng_(options.seed),
      ts_(start_ts),
      step_(std::max<Timestamp>(
          1, static_cast<Timestamp>(
                 static_cast<double>(kMicrosPerSecond) /
                 std::max(1.0, options.events_per_second)))) {}

Checkin CheckinGenerator::Next() {
  Checkin checkin;
  ts_ += step_;
  checkin.ts = ts_;
  checkin.user = "u" + std::to_string(users_.Sample(rng_));

  Json j = Json::MakeObject();
  j["user"] = std::string(checkin.user);
  j["ts"] = checkin.ts;

  std::string venue_name;
  if (rng_.Chance(options_.retailer_fraction)) {
    const auto& retailers = RetailerNames();
    size_t idx;
    if (options_.hot_retailer >= 0 &&
        static_cast<size_t>(options_.hot_retailer) < retailers.size() &&
        rng_.Chance(options_.hot_fraction)) {
      idx = static_cast<size_t>(options_.hot_retailer);
    } else {
      idx = rng_.Uniform(retailers.size());
    }
    checkin.retailer = retailers[idx];
    venue_name = VenueSpelling(checkin.retailer, rng_);
  } else {
    venue_name = "Venue " + std::to_string(venues_.Sample(rng_));
  }
  j["venue"] = venue_name;
  j["venue_id"] = static_cast<int64_t>(venues_.Sample(rng_));
  checkin.json = j.Dump();
  return checkin;
}

}  // namespace workload
}  // namespace muppet
