// Synthetic Foursquare checkin stream (paper §2 Example 1, §5: "1.5
// million checkins per day"). Venues mix recognizable retailers (the
// paper's JCPenney / Best Buy / Walmart / Sam's Club examples) with
// non-retail venues; venue popularity is Zipf-skewed; values are JSON
// checkin objects whose free-text venue names exercise the
// RetailerMapper's pattern matching (Appendix A).
#ifndef MUPPET_WORKLOAD_CHECKINS_H_
#define MUPPET_WORKLOAD_CHECKINS_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "json/json.h"

namespace muppet {
namespace workload {

struct CheckinOptions {
  uint64_t num_users = 5000;
  uint64_t num_venues = 2000;
  double venue_skew = 1.0;
  // Fraction of checkins that land at a recognizable retailer.
  double retailer_fraction = 0.3;
  double events_per_second = 1000.0;
  // If >= 0: index into RetailerNames() that receives `hot_fraction` of
  // all retailer checkins (the Example 6 "everyone is at Best Buy" load).
  int hot_retailer = -1;
  double hot_fraction = 0.9;
  uint64_t seed = 11;
};

struct Checkin {
  Bytes user;        // key: user id
  Bytes json;        // value: checkin JSON
  Timestamp ts = 0;
  std::string retailer;  // canonical retailer name, empty if none
};

// The canonical retailer names the example mapper recognizes.
const std::vector<std::string>& RetailerNames();

class CheckinGenerator {
 public:
  explicit CheckinGenerator(CheckinOptions options, Timestamp start_ts = 0);

  Checkin Next();

  Timestamp current_ts() const { return ts_; }
  const CheckinOptions& options() const { return options_; }

 private:
  CheckinOptions options_;
  ZipfSampler users_;
  ZipfSampler venues_;
  Rng rng_;
  Timestamp ts_;
  Timestamp step_;
};

}  // namespace workload
}  // namespace muppet

#endif  // MUPPET_WORKLOAD_CHECKINS_H_
