#include "workload/rate.h"

#include <algorithm>

namespace muppet {
namespace workload {

RateController::RateController(double events_per_second, Clock* clock)
    : events_per_second_(std::max(1e-6, events_per_second)),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      start_(clock_->Now()) {}

void RateController::Pace() {
  ++count_;
  const Timestamp due =
      start_ + static_cast<Timestamp>(static_cast<double>(count_) *
                                      static_cast<double>(kMicrosPerSecond) /
                                      events_per_second_);
  const Timestamp now = clock_->Now();
  if (due > now) clock_->SleepFor(due - now);
}

void RateController::Reset() {
  start_ = clock_->Now();
  count_ = 0;
}

}  // namespace workload
}  // namespace muppet
