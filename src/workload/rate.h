// Rate control for sources. Drives an engine at a target offered load —
// the latency experiments (E4) sweep offered load to find the saturation
// knee, and E10 deliberately over-drives the engine to trigger overflow.
#ifndef MUPPET_WORKLOAD_RATE_H_
#define MUPPET_WORKLOAD_RATE_H_

#include "common/clock.h"

namespace muppet {
namespace workload {

// Paces a loop to `events_per_second` against a clock using a token-bucket
// style schedule (sleeps only when ahead of schedule, so a slow consumer
// is never slowed further).
class RateController {
 public:
  RateController(double events_per_second, Clock* clock = nullptr);

  // Block until the next event is due. Call once per event.
  void Pace();

  // Events issued so far.
  int64_t count() const { return count_; }

  // Reset the schedule baseline to "now" (after a pause).
  void Reset();

 private:
  double events_per_second_;
  Clock* clock_;
  Timestamp start_;
  int64_t count_ = 0;
};

}  // namespace workload
}  // namespace muppet

#endif  // MUPPET_WORKLOAD_RATE_H_
