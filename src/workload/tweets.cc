#include "workload/tweets.h"

#include <algorithm>

namespace muppet {
namespace workload {

TweetGenerator::TweetGenerator(TweetOptions options, Timestamp start_ts)
    : options_(options),
      users_(options.num_users, options.user_skew),
      topics_(static_cast<uint64_t>(std::max(1, options.num_topics)),
              options.topic_skew),
      urls_(options.num_urls, options.url_skew),
      rng_(options.seed),
      ts_(start_ts),
      step_(std::max<Timestamp>(
          1, static_cast<Timestamp>(
                 static_cast<double>(kMicrosPerSecond) /
                 std::max(1.0, options.events_per_second)))) {}

std::string TweetGenerator::TopicName(int topic) {
  return "topic" + std::to_string(topic);
}

Tweet TweetGenerator::Next() {
  Tweet tweet;
  ts_ += step_;
  tweet.ts = ts_;
  const uint64_t user_rank = users_.Sample(rng_);
  tweet.user = "u" + std::to_string(user_rank);

  Json j = Json::MakeObject();
  j["user"] = std::string(tweet.user);
  j["ts"] = tweet.ts;

  // Topic mentions.
  const bool in_burst = options_.burst_topic >= 0 &&
                        tweet.ts >= options_.burst_start &&
                        tweet.ts < options_.burst_end;
  double topic_p = options_.topic_probability;
  if (rng_.Chance(topic_p)) {
    const int n_topics = 1 + (rng_.Chance(0.3) ? 1 : 0);
    for (int i = 0; i < n_topics; ++i) {
      int topic = static_cast<int>(topics_.Sample(rng_));
      tweet.topics.push_back(topic);
    }
  }
  // During a burst the hot topic piles on extra mentions.
  if (in_burst &&
      rng_.Chance(std::min(1.0, topic_p * options_.burst_multiplier / 4.0))) {
    tweet.topics.push_back(options_.burst_topic);
  }
  std::sort(tweet.topics.begin(), tweet.topics.end());
  tweet.topics.erase(std::unique(tweet.topics.begin(), tweet.topics.end()),
                     tweet.topics.end());
  Json topic_array = Json::MakeArray();
  for (int topic : tweet.topics) topic_array.Append(TopicName(topic));
  j["topics"] = std::move(topic_array);

  // Retweets / replies reference another (typically popular) user.
  const double roll = rng_.NextDouble();
  if (roll < options_.retweet_probability) {
    tweet.is_retweet = true;
    tweet.target_user = "u" + std::to_string(users_.Sample(rng_));
    j["retweet_of"] = std::string(tweet.target_user);
  } else if (roll <
             options_.retweet_probability + options_.reply_probability) {
    tweet.is_reply = true;
    tweet.target_user = "u" + std::to_string(users_.Sample(rng_));
    j["reply_to"] = std::string(tweet.target_user);
  }

  if (rng_.Chance(options_.url_probability)) {
    tweet.url = "http://ex.am/p" + std::to_string(urls_.Sample(rng_));
    j["url"] = std::string(tweet.url);
  }

  j["text"] = "synthetic tweet #" + std::to_string(rng_.Next() % 100000);
  tweet.json = j.Dump();
  return tweet;
}

}  // namespace workload
}  // namespace muppet
