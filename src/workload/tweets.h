// Synthetic Twitter Firehose. Stands in for the stream the paper's
// production deployment consumed ("over 100 million tweets ... per day",
// §5): Zipf-skewed users, a fixed topic vocabulary with per-tweet topic
// mentions, retweets/replies referencing other users (for the reputation
// application of Example 3), and timestamps advancing at a configurable
// event rate. Values are JSON objects, like real tweets.
#ifndef MUPPET_WORKLOAD_TWEETS_H_
#define MUPPET_WORKLOAD_TWEETS_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "json/json.h"

namespace muppet {
namespace workload {

struct TweetOptions {
  uint64_t num_users = 10000;
  double user_skew = 1.0;  // Zipf skew of tweet authorship
  // Topic vocabulary size; each tweet mentions 0-2 topics.
  int num_topics = 20;
  double topic_skew = 0.8;
  double retweet_probability = 0.2;
  double reply_probability = 0.1;
  // Probability that a tweet mentions at least one topic.
  double topic_probability = 0.7;
  // Probability that a tweet carries a URL (for the top-URLs application),
  // and the URL popularity model.
  double url_probability = 0.3;
  uint64_t num_urls = 500;
  double url_skew = 1.1;
  // Simulated event spacing: events per second of stream time.
  double events_per_second = 1000.0;
  // A "burst topic": between burst_start and burst_end (stream time),
  // this topic's mention probability is multiplied (hot-topic detection
  // needs an actual hot topic).
  int burst_topic = -1;  // -1 = no burst
  Timestamp burst_start = 0;
  Timestamp burst_end = 0;
  double burst_multiplier = 10.0;
  uint64_t seed = 7;
};

struct Tweet {
  Bytes user;           // key: user id ("u<rank>")
  Bytes json;           // value: the tweet JSON blob
  Timestamp ts = 0;     // stream timestamp
  std::vector<int> topics;
  Bytes url;            // shared URL; empty if none
  Bytes target_user;    // retweeted/replied-to user; empty if none
  bool is_retweet = false;
  bool is_reply = false;
};

class TweetGenerator {
 public:
  explicit TweetGenerator(TweetOptions options, Timestamp start_ts = 0);

  // Produce the next tweet; timestamps increase by 1/events_per_second.
  Tweet Next();

  // Topic name for an id ("topic<i>").
  static std::string TopicName(int topic);

  Timestamp current_ts() const { return ts_; }
  const TweetOptions& options() const { return options_; }

 private:
  TweetOptions options_;
  ZipfSampler users_;
  ZipfSampler topics_;
  ZipfSampler urls_;
  Rng rng_;
  Timestamp ts_;
  Timestamp step_;
};

}  // namespace workload
}  // namespace muppet

#endif  // MUPPET_WORKLOAD_TWEETS_H_
