#include "workload/zipf_keys.h"

namespace muppet {
namespace workload {

ZipfKeyGenerator::ZipfKeyGenerator(uint64_t n, double skew,
                                   std::string prefix, uint64_t seed)
    : sampler_(n, skew), rng_(seed), prefix_(std::move(prefix)) {}

Bytes ZipfKeyGenerator::Next() {
  last_rank_ = sampler_.Sample(rng_);
  return KeyAt(last_rank_);
}

Bytes ZipfKeyGenerator::KeyAt(uint64_t rank) const {
  return prefix_ + std::to_string(rank);
}

}  // namespace workload
}  // namespace muppet
