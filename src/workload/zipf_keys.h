// Zipf-skewed key generation. The paper observes that "the distribution of
// event keys can be strongly skewed (e.g., follow a Zipfian distribution)"
// (§5); every hotspot experiment (E7, E8) drives the engines with keys from
// this generator.
#ifndef MUPPET_WORKLOAD_ZIPF_KEYS_H_
#define MUPPET_WORKLOAD_ZIPF_KEYS_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace muppet {
namespace workload {

class ZipfKeyGenerator {
 public:
  // `n` distinct keys named "<prefix><rank>", rank 0 hottest; skew 0 =
  // uniform.
  ZipfKeyGenerator(uint64_t n, double skew, std::string prefix = "key",
                   uint64_t seed = 42);

  // Next key (sampled by popularity rank).
  Bytes Next();

  // Rank sampled for the most recent Next() (for assertions).
  uint64_t last_rank() const { return last_rank_; }

  // The key string for a given rank.
  Bytes KeyAt(uint64_t rank) const;

  uint64_t n() const { return sampler_.n(); }

 private:
  ZipfSampler sampler_;
  Rng rng_;
  std::string prefix_;
  uint64_t last_rank_ = 0;
};

}  // namespace workload
}  // namespace muppet

#endif  // MUPPET_WORKLOAD_ZIPF_KEYS_H_
