// Tests of the example applications against the reference executor (exact
// §3 semantics). Engine-level behaviour is covered by engine/parity_test.
#include <map>
#include <string>

#include "apps/hot_topics.h"
#include "apps/reputation.h"
#include "apps/retailer.h"
#include "apps/top_urls.h"
#include "core/reference_executor.h"
#include "core/slate.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace muppet {
namespace apps {
namespace {

TEST(RetailerMapperTest, MatchesPaperPatterns) {
  // Appendix A: "(?i)\s*wal.*mart.*" and "(?i)\s*sam.*s\s*club\s*".
  EXPECT_EQ(RetailerMapper::MatchRetailer("Walmart Supercenter"), "Walmart");
  EXPECT_EQ(RetailerMapper::MatchRetailer("WAL-MART"), "Walmart");
  EXPECT_EQ(RetailerMapper::MatchRetailer("wal mart #33"), "Walmart");
  EXPECT_EQ(RetailerMapper::MatchRetailer("Sam's Club"), "Sam's Club");
  EXPECT_EQ(RetailerMapper::MatchRetailer("SAMS CLUB"), "Sam's Club");
  EXPECT_EQ(RetailerMapper::MatchRetailer("BEST BUY Store"), "Best Buy");
  EXPECT_EQ(RetailerMapper::MatchRetailer("JC Penney"), "JCPenney");
  EXPECT_EQ(RetailerMapper::MatchRetailer("SuperTarget"), "Target");
  EXPECT_EQ(RetailerMapper::MatchRetailer("Joe's Diner"), "");
  EXPECT_EQ(RetailerMapper::MatchRetailer(""), "");
}

TEST(RetailerAppTest, CountsCheckinsPerRetailer) {
  AppConfig config;
  ASSERT_OK(BuildRetailerApp(&config));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());

  auto publish_checkin = [&](const std::string& venue, Timestamp ts) {
    Json c = Json::MakeObject();
    c["venue"] = venue;
    ASSERT_OK(exec.Publish("S1", "user", c.Dump(), ts));
  };
  for (int i = 0; i < 7; ++i) publish_checkin("Walmart", 100 + i);
  for (int i = 0; i < 3; ++i) publish_checkin("Best Buy", 200 + i);
  for (int i = 0; i < 5; ++i) publish_checkin("Corner Cafe", 300 + i);
  ASSERT_OK(exec.Run());

  EXPECT_EQ(CountingUpdater::CountOf(
                exec.slates().at(SlateId{"U1", "Walmart"})),
            7);
  EXPECT_EQ(CountingUpdater::CountOf(
                exec.slates().at(SlateId{"U1", "Best Buy"})),
            3);
  EXPECT_EQ(exec.slates().count(SlateId{"U1", "Corner Cafe"}), 0u)
      << "unrecognized venues produce no events";
}

TEST(RetailerAppTest, MalformedCheckinsSkipped) {
  AppConfig config;
  ASSERT_OK(BuildRetailerApp(&config));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  ASSERT_OK(exec.Publish("S1", "u", "this is not json", 1));
  ASSERT_OK(exec.Publish("S1", "u", "{\"no_venue\": 1}", 2));
  ASSERT_OK(exec.Run());
  EXPECT_TRUE(exec.slates().empty());
}

TEST(HotTopicsKeyTest, TopicMinuteKeyRoundTrip) {
  const std::string key = TopicMinuteKey("earthquake", 1439);
  EXPECT_EQ(key, "earthquake_1439");
  std::string topic;
  int minute = 0;
  ASSERT_OK(ParseTopicMinuteKey(key, &topic, &minute));
  EXPECT_EQ(topic, "earthquake");
  EXPECT_EQ(minute, 1439);
  // Topics containing '_' still parse (rightmost separator).
  ASSERT_OK(ParseTopicMinuteKey(TopicMinuteKey("a_b", 5), &topic, &minute));
  EXPECT_EQ(topic, "a_b");
  EXPECT_EQ(minute, 5);
  EXPECT_FALSE(ParseTopicMinuteKey("nounderscore", &topic, &minute).ok());
}

Json TweetWithTopics(const std::vector<std::string>& topics) {
  Json t = Json::MakeObject();
  Json arr = Json::MakeArray();
  for (const auto& topic : topics) arr.Append(topic);
  t["topics"] = std::move(arr);
  return t;
}

TEST(HotTopicsAppTest, DetectsBurstAgainstHistoricalAverage) {
  AppConfig config;
  ASSERT_OK(BuildHotTopicsApp(&config, /*threshold=*/3.0));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());

  // Establish history: on days 0 and 1, minute 10 sees 2 mentions of
  // "quake"; day 2 brings a 10x burst in the same minute.
  auto at = [](int64_t day, int minute, int offset) {
    return day * kMicrosPerDay + minute * kMicrosPerMinute + offset;
  };
  const Bytes tweet = TweetWithTopics({"quake"}).Dump();
  for (int64_t day = 0; day < 2; ++day) {
    for (int i = 0; i < 2; ++i) {
      ASSERT_OK(exec.Publish("S1", "u", tweet, at(day, 10, i + 1)));
    }
    // A later-minute tweet closes minute 10 for that day.
    ASSERT_OK(exec.Publish("S1", "u", tweet, at(day, 11, 1)));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(exec.Publish("S1", "u", tweet, at(2, 10, i + 1)));
  }
  ASSERT_OK(exec.Publish("S1", "u", tweet, at(2, 11, 1)));
  ASSERT_OK(exec.Run());

  const auto& hot = exec.StreamLog("S4");
  ASSERT_EQ(hot.size(), 1u) << "exactly the day-2 burst is hot";
  EXPECT_EQ(Bytes(hot[0].key), TopicMinuteKey("quake", 10));
  Result<Json> payload = Json::Parse(hot[0].value);
  ASSERT_OK(payload);
  EXPECT_EQ(payload.value().GetInt("count"), 20);
  EXPECT_DOUBLE_EQ(payload.value().GetDouble("avg"), 2.0);
}

TEST(HotTopicsAppTest, SteadyTopicNeverHot) {
  AppConfig config;
  ASSERT_OK(BuildHotTopicsApp(&config, /*threshold=*/3.0));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  const Bytes tweet = TweetWithTopics({"weather"}).Dump();
  for (int64_t day = 0; day < 5; ++day) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_OK(exec.Publish("S1", "u", tweet,
                             day * kMicrosPerDay + 10 * kMicrosPerMinute + i + 1));
    }
    ASSERT_OK(exec.Publish("S1", "u", tweet,
                           day * kMicrosPerDay + 11 * kMicrosPerMinute + 1));
  }
  ASSERT_OK(exec.Run());
  EXPECT_TRUE(exec.StreamLog("S4").empty());
}

TEST(ReputationAppTest, ScoresRespondToMentions) {
  AppConfig config;
  ReputationParams params;
  ASSERT_OK(BuildReputationApp(&config, params));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());

  auto tweet = [&](const std::string& user, const std::string& retweet_of,
                   Timestamp ts) {
    Json t = Json::MakeObject();
    t["user"] = user;
    if (!retweet_of.empty()) t["retweet_of"] = retweet_of;
    ASSERT_OK(exec.Publish("S1", user, t.Dump(), ts));
  };

  // Alice tweets a lot (high score), then retweets Bob.
  for (int i = 0; i < 50; ++i) tweet("alice", "", 100 + i);
  tweet("alice", "bob", 1000);
  // Carol (new, low score) retweets Bob too.
  tweet("carol", "bob", 2000);
  ASSERT_OK(exec.Run());

  const double alice = ReputationUpdater::ScoreOf(
      exec.slates().at(SlateId{"U1", "alice"}));
  const double bob =
      ReputationUpdater::ScoreOf(exec.slates().at(SlateId{"U1", "bob"}));
  const double carol = ReputationUpdater::ScoreOf(
      exec.slates().at(SlateId{"U1", "carol"}));
  EXPECT_GT(alice, 1.4);  // 51 tweets * 0.01 + initial 1.0
  EXPECT_GT(bob, 1.0) << "mentions raise the target's score";
  // Bob gained from both mentions: 0.05*(alice score) + 0.05*(carol score).
  EXPECT_NEAR(bob, 1.0 + 0.05 * alice + 0.05 * carol, 0.01);
  JsonSlate bob_slate(&exec.slates().at(SlateId{"U1", "bob"}));
  EXPECT_EQ(bob_slate.data().GetInt("mentions"), 2);
}

TEST(ReputationAppTest, MentionCarriesSenderScoreSnapshot) {
  // The mention event must carry A's score at emit time — the MapUpdate
  // idiom for cross-slate dependencies.
  AppConfig config;
  ASSERT_OK(BuildReputationApp(&config));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  Json t = Json::MakeObject();
  t["user"] = "a";
  t["reply_to"] = "b";
  ASSERT_OK(exec.Publish("S1", "a", t.Dump(), 10));
  ASSERT_OK(exec.Run());
  const auto& mentions = exec.StreamLog("S3");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(Bytes(mentions[0].key), "b");
  Result<Json> payload = Json::Parse(mentions[0].value);
  ASSERT_OK(payload);
  EXPECT_NEAR(payload.value().GetDouble("mention_score"), 1.01, 1e-9);
  EXPECT_EQ(payload.value().GetString("from"), "a");
}

TEST(TopUrlsAppTest, MaintainsTopKRanking) {
  AppConfig config;
  ASSERT_OK(BuildTopUrlsApp(&config, /*k=*/3, /*report_every=*/1));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());

  auto tweet_url = [&](const std::string& url, Timestamp ts) {
    Json t = Json::MakeObject();
    t["user"] = "u";
    t["url"] = url;
    ASSERT_OK(exec.Publish("S1", "u", t.Dump(), ts));
  };
  Timestamp ts = 1;
  for (int i = 0; i < 10; ++i) tweet_url("http://a", ts++);
  for (int i = 0; i < 7; ++i) tweet_url("http://b", ts++);
  for (int i = 0; i < 3; ++i) tweet_url("http://c", ts++);
  for (int i = 0; i < 1; ++i) tweet_url("http://d", ts++);
  ASSERT_OK(exec.Run());

  const auto& slate =
      exec.slates().at(SlateId{"U2", UrlCountUpdater::kAggregationKey});
  const auto top = TopKUpdater::TopOf(slate);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "http://a");
  EXPECT_EQ(top[0].second, 10);
  EXPECT_EQ(top[1].first, "http://b");
  EXPECT_EQ(top[2].first, "http://c");
}

TEST(TopUrlsAppTest, ReportEveryAmortizesHotspot) {
  AppConfig config;
  ASSERT_OK(BuildTopUrlsApp(&config, /*k=*/10, /*report_every=*/5));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  Json t = Json::MakeObject();
  t["user"] = "u";
  t["url"] = "http://x";
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(exec.Publish("S1", "u", t.Dump(), i + 1));
  }
  ASSERT_OK(exec.Run());
  // 20 url events -> 4 reports (every 5th count).
  EXPECT_EQ(exec.StreamLog("S3").size(), 4u);
  const auto top = TopKUpdater::TopOf(
      exec.slates().at(SlateId{"U2", UrlCountUpdater::kAggregationKey}));
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].second, 20);
}

TEST(TopUrlsAppTest, TweetsWithoutUrlsIgnored) {
  AppConfig config;
  ASSERT_OK(BuildTopUrlsApp(&config));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  Json t = Json::MakeObject();
  t["user"] = "u";
  ASSERT_OK(exec.Publish("S1", "u", t.Dump(), 1));
  ASSERT_OK(exec.Run());
  EXPECT_TRUE(exec.slates().empty());
}

}  // namespace
}  // namespace apps
}  // namespace muppet
