#include "common/bytes.h"

#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(BytesTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0x12345678u, 0xFFFFFFFFu}) {
    Bytes b;
    PutFixed32(&b, v);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(DecodeFixed32(b.data()), v);
  }
}

TEST(BytesTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0x123456789abcdef0},
                     std::numeric_limits<uint64_t>::max()}) {
    Bytes b;
    PutFixed64(&b, v);
    ASSERT_EQ(b.size(), 8u);
    EXPECT_EQ(DecodeFixed64(b.data()), v);
  }
}

TEST(BytesTest, Varint32RoundTrip) {
  const std::vector<uint32_t> values = {0,    1,    127,        128,
                                        300,  16383, 16384,     (1u << 21) - 1,
                                        1u << 28, 0xFFFFFFFFu};
  for (uint32_t v : values) {
    Bytes b;
    PutVarint32(&b, v);
    const char* p = b.data();
    uint32_t decoded = 0;
    ASSERT_TRUE(GetVarint32(&p, b.data() + b.size(), &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(p, b.data() + b.size());
  }
}

TEST(BytesTest, Varint64RoundTrip) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, (1ull << 35), (1ull << 56) + 17,
      std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    Bytes b;
    PutVarint64(&b, v);
    const char* p = b.data();
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&p, b.data() + b.size(), &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(p, b.data() + b.size());
  }
}

TEST(BytesTest, VarintSizes) {
  Bytes b;
  PutVarint32(&b, 127);
  EXPECT_EQ(b.size(), 1u);
  b.clear();
  PutVarint32(&b, 128);
  EXPECT_EQ(b.size(), 2u);
  b.clear();
  PutVarint64(&b, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(b.size(), 10u);
}

TEST(BytesTest, VarintTruncationDetected) {
  Bytes b;
  PutVarint32(&b, 1u << 30);
  // Chop the final byte.
  b.pop_back();
  const char* p = b.data();
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(&p, b.data() + b.size(), &decoded));

  uint64_t decoded64 = 0;
  Bytes empty;
  const char* q = empty.data();
  EXPECT_FALSE(GetVarint64(&q, q, &decoded64));
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes b;
  PutLengthPrefixed(&b, "hello");
  PutLengthPrefixed(&b, "");
  PutLengthPrefixed(&b, std::string(1000, 'x'));
  const char* p = b.data();
  const char* limit = b.data() + b.size();
  BytesView a, c, d;
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &a));
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &c));
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &d));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(c, "");
  EXPECT_EQ(d.size(), 1000u);
  EXPECT_EQ(p, limit);
}

TEST(BytesTest, LengthPrefixedDetectsShortBuffer) {
  Bytes b;
  PutLengthPrefixed(&b, "hello world");
  b.resize(b.size() - 3);  // truncate payload
  const char* p = b.data();
  BytesView out;
  EXPECT_FALSE(GetLengthPrefixed(&p, b.data() + b.size(), &out));
}

TEST(BytesTest, LengthPrefixedBinarySafe) {
  const Bytes payload("\x00\x01\xff\x00zz", 6);
  Bytes b;
  PutLengthPrefixed(&b, payload);
  const char* p = b.data();
  BytesView out;
  ASSERT_TRUE(GetLengthPrefixed(&p, b.data() + b.size(), &out));
  EXPECT_EQ(Bytes(out), payload);
}

}  // namespace
}  // namespace muppet
