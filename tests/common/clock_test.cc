#include "common/clock.h"

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(ClockTest, SystemClockAdvances) {
  SystemClock* clock = SystemClock::Default();
  const Timestamp a = clock->Now();
  clock->SleepFor(2000);  // 2ms
  const Timestamp b = clock->Now();
  EXPECT_GE(b - a, 1500);
}

TEST(ClockTest, SimulatedClockManualAdvance) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.Now(), 1000);
  clock.Advance(500);
  EXPECT_EQ(clock.Now(), 1500);
  clock.SleepFor(250);  // sleeping advances logical time
  EXPECT_EQ(clock.Now(), 1750);
  clock.Set(42);
  EXPECT_EQ(clock.Now(), 42);
}

TEST(ClockTest, MinuteOfDayMatchesPaperExamples) {
  // Paper Example 5: "if the timestamp is 00:14 then m = 14; if the
  // timestamp is 23:59 then m = 1439".
  EXPECT_EQ(MinuteOfDay(14 * kMicrosPerMinute), 14);
  EXPECT_EQ(MinuteOfDay(23 * 60 * kMicrosPerMinute + 59 * kMicrosPerMinute),
            1439);
  EXPECT_EQ(MinuteOfDay(0), 0);
  // Second day wraps back to the same minutes.
  EXPECT_EQ(MinuteOfDay(kMicrosPerDay + 14 * kMicrosPerMinute), 14);
}

TEST(ClockTest, DayIndex) {
  EXPECT_EQ(DayIndex(0), 0);
  EXPECT_EQ(DayIndex(kMicrosPerDay - 1), 0);
  EXPECT_EQ(DayIndex(kMicrosPerDay), 1);
  EXPECT_EQ(DayIndex(10 * kMicrosPerDay + 5), 10);
}

TEST(ClockTest, MinuteOfDayWithinRange) {
  for (Timestamp ts = 0; ts < 3 * kMicrosPerDay; ts += 17 * kMicrosPerMinute) {
    const int m = MinuteOfDay(ts);
    EXPECT_GE(m, 0);
    EXPECT_LE(m, 1439);
  }
}

}  // namespace
}  // namespace muppet
