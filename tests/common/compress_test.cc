#include "common/compress.h"

#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

void ExpectRoundTrip(const Bytes& input) {
  Bytes compressed = Compress(input);
  Result<Bytes> restored = Decompress(compressed);
  ASSERT_OK(restored);
  EXPECT_EQ(restored.value(), input) << "input size " << input.size();
}

TEST(CompressTest, EmptyInput) { ExpectRoundTrip(""); }

TEST(CompressTest, TinyInputs) {
  ExpectRoundTrip("a");
  ExpectRoundTrip("ab");
  ExpectRoundTrip("abc");
  ExpectRoundTrip("abcd");
}

TEST(CompressTest, RepetitiveJsonShrinks) {
  // Slate-like JSON: highly repetitive.
  Bytes json = "{";
  for (int i = 0; i < 200; ++i) {
    json += "\"count_" + std::to_string(i) + "\": 12345,";
  }
  json += "\"end\": 0}";
  Bytes compressed = Compress(json);
  EXPECT_LT(compressed.size(), json.size() / 2)
      << "expected at least 2x compression on repetitive JSON";
  ExpectRoundTrip(json);
}

TEST(CompressTest, RunLengthCase) {
  ExpectRoundTrip(Bytes(100000, 'x'));
  Bytes compressed = Compress(Bytes(100000, 'x'));
  EXPECT_LT(compressed.size(), 2000u);
}

TEST(CompressTest, OverlappingMatchReplication) {
  // "abcabcabc..." exercises dist < len copies.
  Bytes input;
  for (int i = 0; i < 10000; ++i) input += "abc";
  ExpectRoundTrip(input);
}

TEST(CompressTest, IncompressibleRandomData) {
  Rng rng(42);
  Bytes input;
  input.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xFF));
  }
  Bytes compressed = Compress(input);
  // Worst-case expansion bound: ~1% + header.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 64 + 16);
  ExpectRoundTrip(input);
}

TEST(CompressTest, BinaryWithEmbeddedNulsAndHighBytes) {
  Bytes input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<char>(i % 256));
  }
  ExpectRoundTrip(input);
}

TEST(CompressTest, ManySizesSweep) {
  Rng rng(7);
  for (size_t size : {1u, 2u, 5u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u,
                      4095u, 4096u, 4097u, 100000u}) {
    Bytes input;
    input.reserve(size);
    // Half compressible, half random.
    for (size_t i = 0; i < size; ++i) {
      input.push_back(i % 2 == 0 ? 'z'
                                 : static_cast<char>(rng.Next() & 0xFF));
    }
    ExpectRoundTrip(input);
  }
}

TEST(CompressTest, CorruptHeaderRejected) {
  Result<Bytes> r = Decompress("");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(CompressTest, TruncatedStreamRejected) {
  Bytes compressed = Compress(Bytes(1000, 'q'));
  compressed.resize(compressed.size() / 2);
  Result<Bytes> r = Decompress(compressed);
  EXPECT_FALSE(r.ok());
}

TEST(CompressTest, LengthMismatchRejected) {
  Bytes compressed = Compress("hello world hello world");
  // Tamper with the declared length (first varint byte).
  compressed[0] = static_cast<char>(compressed[0] ^ 0x01);
  Result<Bytes> r = Decompress(compressed);
  EXPECT_FALSE(r.ok());
}

TEST(CompressTest, DecompressAppendsToOutput) {
  Bytes out = "prefix:";
  Bytes compressed = Compress("payload");
  ASSERT_OK(DecompressBytes(compressed, &out));
  EXPECT_EQ(out, "prefix:payload");
}

}  // namespace
}  // namespace muppet
