#include "common/hash.h"

#include <set>
#include <string>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(HashTest, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Fnv1a64Deterministic) {
  EXPECT_EQ(Fnv1a64("muppet"), Fnv1a64("muppet"));
  EXPECT_NE(Fnv1a64("muppet"), Fnv1a64("muppit"));
}

TEST(HashTest, Mix64Avalanches) {
  // Nearby inputs should produce wildly different outputs.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
  // At least half the bits should flip for adjacent inputs, on average.
  int total_flips = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    total_flips += __builtin_popcountll(Mix64(i) ^ Mix64(i + 1));
  }
  EXPECT_GT(total_flips / 100, 20);
}

TEST(HashTest, SeededHashVariesWithSeed) {
  EXPECT_NE(SeededHash("key", 1), SeededHash("key", 2));
  EXPECT_EQ(SeededHash("key", 7), SeededHash("key", 7));
}

TEST(HashTest, Crc32KnownVectors) {
  // CRC-32 (IEEE 802.3) check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(HashTest, Crc32DetectsSingleBitFlip) {
  std::string data(100, 'a');
  const uint32_t original = Crc32(data);
  data[50] = 'b';
  EXPECT_NE(Crc32(data), original);
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashTest, RoutingDispersion) {
  // Keys should spread roughly evenly over a small modulus — the property
  // worker routing relies on.
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {0};
  for (int i = 0; i < 8000; ++i) {
    counts[Fnv1a64("user" + std::to_string(i)) % kBuckets]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

}  // namespace
}  // namespace muppet
