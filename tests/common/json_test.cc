#include "json/json.h"

#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(JsonTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(JsonTest, ScalarConstructionAndDump) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
}

TEST(JsonTest, ObjectBuildAndAccess) {
  Json j = Json::MakeObject();
  j["count"] = 10;
  j["name"] = "walmart";
  j["nested"]["deep"] = true;
  EXPECT_EQ(j.GetInt("count"), 10);
  EXPECT_EQ(j.GetString("name"), "walmart");
  EXPECT_TRUE(j["nested"]["deep"].AsBool());
  EXPECT_TRUE(j.Contains("count"));
  EXPECT_FALSE(j.Contains("absent"));
  EXPECT_EQ(j.GetInt("absent", -1), -1);
}

TEST(JsonTest, OperatorBracketOnFreshNodeCreatesObject) {
  Json j;  // null
  j["a"] = 1;
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.GetInt("a"), 1);
}

TEST(JsonTest, ConstAccessOfMissingKeyIsNull) {
  const Json j = Json::MakeObject();
  EXPECT_TRUE(j["missing"].is_null());
}

TEST(JsonTest, ArrayAppendAndSize) {
  Json j = Json::MakeArray();
  j.Append(1);
  j.Append("two");
  j.Append(Json::MakeObject());
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.Dump(), "[1,\"two\",{}]");
}

TEST(JsonTest, DumpSortsObjectKeys) {
  Json j = Json::MakeObject();
  j["b"] = 2;
  j["a"] = 1;
  EXPECT_EQ(j.Dump(), "{\"a\":1,\"b\":2}");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_EQ(Json::Parse("true").value().AsBool(), true);
  EXPECT_EQ(Json::Parse("-123").value().AsInt(), -123);
  EXPECT_DOUBLE_EQ(Json::Parse("2.25").value().AsDouble(), 2.25);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3").value().AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"str\"").value().AsString(), "str");
}

TEST(JsonTest, ParsePreservesInt64Exactly) {
  const int64_t big = 9007199254740993;  // not representable as double
  Result<Json> j = Json::Parse(std::to_string(big));
  ASSERT_OK(j);
  EXPECT_TRUE(j.value().is_int());
  EXPECT_EQ(j.value().AsInt(), big);
}

TEST(JsonTest, ParseNestedDocument) {
  const std::string doc = R"({
    "user": "u42",
    "topics": ["a", "b"],
    "meta": {"retweet": true, "score": 1.5},
    "count": 3
  })";
  Result<Json> j = Json::Parse(doc);
  ASSERT_OK(j);
  EXPECT_EQ(j.value().GetString("user"), "u42");
  EXPECT_EQ(j.value()["topics"].size(), 2u);
  EXPECT_EQ(j.value()["topics"].AsArray()[1].AsString(), "b");
  EXPECT_TRUE(j.value()["meta"]["retweet"].AsBool());
  EXPECT_EQ(j.value().GetInt("count"), 3);
}

TEST(JsonTest, RoundTripStability) {
  const std::string doc =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":{"d":[{}]}},"e":-17})";
  Result<Json> first = Json::Parse(doc);
  ASSERT_OK(first);
  const std::string dumped = first.value().Dump();
  Result<Json> second = Json::Parse(dumped);
  ASSERT_OK(second);
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(second.value().Dump(), dumped);  // fixed point
}

TEST(JsonTest, StringEscapes) {
  Json j("line\nbreak \"quoted\" back\\slash \t tab");
  const std::string dumped = j.Dump();
  Result<Json> back = Json::Parse(dumped);
  ASSERT_OK(back);
  EXPECT_EQ(back.value().AsString(), j.AsString());
}

TEST(JsonTest, ParseUnicodeEscapes) {
  Result<Json> j = Json::Parse(R"("café")");
  ASSERT_OK(j);
  EXPECT_EQ(j.value().AsString(), "caf\xc3\xa9");
  // Surrogate pair: U+1F600.
  Result<Json> emoji = Json::Parse(R"("😀")");
  ASSERT_OK(emoji);
  EXPECT_EQ(emoji.value().AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ControlCharactersEscapedOnDump) {
  Json j(std::string("\x01\x02", 2));
  EXPECT_EQ(j.Dump(), "\"\\u0001\\u0002\"");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(Json::Parse("\"\\ud800\"").ok());  // unpaired surrogate
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
}

TEST(JsonTest, DeepNestingLimited) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
  std::string ok_depth(50, '[');
  ok_depth += std::string(50, ']');
  EXPECT_TRUE(Json::Parse(ok_depth).ok());
}

TEST(JsonTest, NumericEquality) {
  EXPECT_EQ(Json(1), Json(1.0));
  EXPECT_NE(Json(1), Json(2));
  EXPECT_NE(Json(1), Json("1"));
}

TEST(JsonTest, PrettyDumpParsesBack) {
  Json j = Json::MakeObject();
  j["list"] = JsonArray{Json(1), Json(2)};
  j["obj"]["k"] = "v";
  const std::string pretty = j.DumpPretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  Result<Json> back = Json::Parse(pretty);
  ASSERT_OK(back);
  EXPECT_EQ(back.value(), j);
}

TEST(JsonTest, GetDoubleCoercesInt) {
  Json j = Json::MakeObject();
  j["n"] = 5;
  EXPECT_DOUBLE_EQ(j.GetDouble("n"), 5.0);
  j["d"] = 2.5;
  EXPECT_EQ(j.GetInt("d"), 2);
}

}  // namespace
}  // namespace muppet
