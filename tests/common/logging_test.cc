#include "common/logging.h"

#include <string>

#include "engine/engine.h"
#include "gtest/gtest.h"

namespace muppet {
namespace {

// RAII guard so a failing test cannot leave the global sink redirected.
class CaptureGuard {
 public:
  explicit CaptureGuard(std::string* sink) { SetLogCapture(sink); }
  ~CaptureGuard() { SetLogCapture(nullptr); }
};

TEST(LoggingTest, LevelFiltering) {
  std::string captured;
  CaptureGuard guard(&captured);
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  MUPPET_LOG(kDebug) << "quiet-debug";
  MUPPET_LOG(kInfo) << "quiet-info";
  MUPPET_LOG(kWarning) << "loud-warning";
  MUPPET_LOG(kError) << "loud-error";
  SetLogLevel(original);
  EXPECT_EQ(captured.find("quiet-debug"), std::string::npos);
  EXPECT_EQ(captured.find("quiet-info"), std::string::npos);
  EXPECT_NE(captured.find("WARN loud-warning"), std::string::npos);
  EXPECT_NE(captured.find("ERROR loud-error"), std::string::npos);
}

TEST(LoggingTest, OffSilencesEverything) {
  std::string captured;
  CaptureGuard guard(&captured);
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  MUPPET_LOG(kError) << "should-not-appear";
  SetLogLevel(original);
  EXPECT_TRUE(captured.empty());
}

TEST(LoggingTest, StreamFormatting) {
  std::string captured;
  CaptureGuard guard(&captured);
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  MUPPET_LOG(kInfo) << "value=" << 42 << " ratio=" << 1.5;
  SetLogLevel(original);
  EXPECT_NE(captured.find("value=42 ratio=1.5"), std::string::npos);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  MUPPET_CHECK(1 + 1 == 2) << "never evaluated";
  // Reaching here is the assertion.
  SUCCEED();
}

TEST(EngineStatsTest, ToStringMentionsAllSections) {
  EngineStats stats;
  stats.events_published = 10;
  stats.events_processed = 9;
  stats.events_lost_failure = 1;
  stats.slate_cache_hits = 5;
  stats.latency_p99_us = 1234;
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("published=10"), std::string::npos);
  EXPECT_NE(text.find("processed=9"), std::string::npos);
  EXPECT_NE(text.find("lost_failure=1"), std::string::npos);
  EXPECT_NE(text.find("hits=5"), std::string::npos);
  EXPECT_NE(text.find("p99=1234"), std::string::npos);
}

}  // namespace
}  // namespace muppet
