#include "common/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(CounterTest, AddAndGet) {
  Counter c;
  EXPECT_EQ(c.Get(), 0);
  c.Add();
  c.Add(5);
  EXPECT_EQ(c.Get(), 6);
  c.Reset();
  EXPECT_EQ(c.Get(), 0);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Get(), kThreads * kAddsPerThread);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.Get(), 0);
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Get(), 12);
  g.Reset();
  EXPECT_EQ(g.Get(), 0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
}

TEST(HistogramTest, PercentilesApproximateWithinBucketError) {
  Histogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Record(v);
  // Buckets are ~8% wide; allow 15% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 5000.0, 750.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9900.0, 1500.0);
  EXPECT_EQ(h.Percentile(1.0), 10000);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  for (int64_t v : {1, 10, 100, 1000, 10000, 100000}) {
    for (int i = 0; i < 10; ++i) h.Record(v);
  }
  int64_t prev = 0;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const int64_t p = h.Percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(HistogramTest, ClampsNonPositiveToOne) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), 1);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  for (int i = 1; i <= 50; ++i) a.Record(10);
  for (int i = 1; i <= 50; ++i) b.Record(1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 100);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.Mean(), 505.0, 0.5);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsMinMaxCount) {
  Histogram a, b;
  b.Record(7);
  b.Record(7000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 7);
  EXPECT_EQ(a.max(), 7000);
}

TEST(HistogramTest, CumulativeCountIsMonotone) {
  Histogram h;
  for (int64_t v : {50, 500, 5000, 50000, 500000, 5000000}) h.Record(v);
  int64_t prev = 0;
  for (int64_t le : {100, 1000, 10000, 100000, 1000000, 10000000}) {
    const int64_t c = h.CumulativeCount(le);
    EXPECT_GE(c, prev) << "le=" << le;
    prev = c;
  }
  // Every recorded value is <= the largest threshold probed above.
  EXPECT_EQ(prev, h.count());
  // A threshold below every sample counts nothing.
  EXPECT_EQ(h.CumulativeCount(10), 0);
}

TEST(HistogramTest, ConcurrentRecordIsLossless) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kRecordsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        h.Record((t + 1) * 100 + i % 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kRecordsPerThread);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), kThreads * 100 + 6);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  const int64_t hour_us = 3600LL * 1000 * 1000;
  h.Record(hour_us);
  EXPECT_EQ(h.max(), hour_us);
  EXPECT_GT(h.Percentile(0.5), hour_us / 2);
}

TEST(HistogramTest, SummaryMentionsFields) {
  Histogram h;
  h.Record(5);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(MetricsRegistryTest, GetCreatesOnce) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(registry.CounterValues().at("x"), 3);
}

TEST(MetricsRegistryTest, ReportIncludesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Add(7);
  registry.GetHistogram("latency")->Record(100);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("events = 7"), std::string::npos);
  EXPECT_NE(report.find("latency:"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAll) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetHistogram("h")->Record(5);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c")->Get(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->count(), 0);
}

TEST(MetricsRegistryTest, LabeledChildrenAreDistinctCells) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops_total", {{"operator", "a"}});
  Counter* b = registry.GetCounter("ops_total", {{"operator", "b"}});
  EXPECT_NE(a, b);
  a->Add(1);
  b->Add(2);
  const auto values = registry.CounterValues();
  EXPECT_EQ(values.at("ops_total{operator=a}"), 1);
  EXPECT_EQ(values.at("ops_total{operator=b}"), 2);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitCells) {
  MetricsRegistry registry;
  Counter* a =
      registry.GetCounter("x", {{"machine", "0"}, {"operator", "f"}});
  Counter* b =
      registry.GetCounter("x", {{"operator", "f"}, {"machine", "0"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, GaugeFamily) {
  MetricsRegistry registry;
  registry.GetGauge("depth", {{"thread", "0"}})->Set(4);
  bool found = false;
  for (const auto& sample : registry.Snapshot()) {
    if (sample.name == "depth") {
      EXPECT_EQ(sample.type, MetricType::kGauge);
      EXPECT_EQ(sample.value, 4);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistryTest, CallbackSampledAtSnapshot) {
  MetricsRegistry registry;
  int64_t depth = 7;
  registry.RegisterCallback("queue_depth", {{"machine", "1"}},
                            MetricType::kGauge, [&depth] { return depth; });
  auto find = [&registry]() -> int64_t {
    for (const auto& sample : registry.Snapshot()) {
      if (sample.name == "queue_depth") return sample.value;
    }
    return -1;
  };
  EXPECT_EQ(find(), 7);
  depth = 9;
  EXPECT_EQ(find(), 9);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra")->Add(1);
  registry.GetCounter("apple")->Add(1);
  registry.GetGauge("mango")->Set(1);
  const auto snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LE(snapshot[i - 1].name, snapshot[i].name);
  }
}

}  // namespace
}  // namespace muppet
