#include "common/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(CounterTest, AddAndGet) {
  Counter c;
  EXPECT_EQ(c.Get(), 0);
  c.Add();
  c.Add(5);
  EXPECT_EQ(c.Get(), 6);
  c.Reset();
  EXPECT_EQ(c.Get(), 0);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Get(), kThreads * kAddsPerThread);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
}

TEST(HistogramTest, PercentilesApproximateWithinBucketError) {
  Histogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Record(v);
  // Buckets are ~8% wide; allow 15% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 5000.0, 750.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9900.0, 1500.0);
  EXPECT_EQ(h.Percentile(1.0), 10000);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  for (int64_t v : {1, 10, 100, 1000, 10000, 100000}) {
    for (int i = 0; i < 10; ++i) h.Record(v);
  }
  int64_t prev = 0;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const int64_t p = h.Percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(HistogramTest, ClampsNonPositiveToOne) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), 1);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  for (int i = 1; i <= 50; ++i) a.Record(10);
  for (int i = 1; i <= 50; ++i) b.Record(1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 100);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.Mean(), 505.0, 0.5);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  const int64_t hour_us = 3600LL * 1000 * 1000;
  h.Record(hour_us);
  EXPECT_EQ(h.max(), hour_us);
  EXPECT_GT(h.Percentile(0.5), hour_us / 2);
}

TEST(HistogramTest, SummaryMentionsFields) {
  Histogram h;
  h.Record(5);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(MetricsRegistryTest, GetCreatesOnce) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(registry.CounterValues().at("x"), 3);
}

TEST(MetricsRegistryTest, ReportIncludesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Add(7);
  registry.GetHistogram("latency")->Record(100);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("events = 7"), std::string::npos);
  EXPECT_NE(report.find("latency:"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAll) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetHistogram("h")->Record(5);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c")->Get(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->count(), 0);
}

}  // namespace
}  // namespace muppet
