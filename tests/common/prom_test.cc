#include "common/prom.h"

#include <string>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(PromEscapeTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PromEscapeLabelValue("a\nb"), "a\\nb");
}

TEST(PromSanitizeTest, InvalidCharactersBecomeUnderscore) {
  EXPECT_EQ(PromSanitizeName("muppet_events_total"), "muppet_events_total");
  EXPECT_EQ(PromSanitizeName("bad-name.with spaces"), "bad_name_with_spaces");
  // A leading digit is not a valid first character.
  EXPECT_EQ(PromSanitizeName("9lives"), "_lives");
}

TEST(PromTextTest, CounterAndGaugeFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("muppet_events_total")->Add(3);
  registry.GetGauge("muppet_queue_depth", {{"machine", "0"}})->Set(5);
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE muppet_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("muppet_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE muppet_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("muppet_queue_depth{machine=\"0\"} 5"),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(PromTextTest, OneTypeLinePerFamily) {
  MetricsRegistry registry;
  registry.GetCounter("ops_total", {{"operator", "a"}})->Add(1);
  registry.GetCounter("ops_total", {{"operator", "b"}})->Add(2);
  const std::string text = PrometheusText(registry);
  size_t first = text.find("# TYPE ops_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE ops_total counter", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("ops_total{operator=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ops_total{operator=\"b\"} 2"), std::string::npos);
}

TEST(PromTextTest, LabelsEmittedInSortedKeyOrder) {
  MetricsRegistry registry;
  registry.GetCounter("x_total", {{"zeta", "1"}, {"alpha", "2"}})->Add(1);
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("x_total{alpha=\"2\",zeta=\"1\"} 1"),
            std::string::npos);
}

TEST(PromTextTest, LabelValuesEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("x_total", {{"stream", "in\"jec\\t\nion"}})->Add(1);
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("x_total{stream=\"in\\\"jec\\\\t\\nion\"} 1"),
            std::string::npos);
}

TEST(PromTextTest, HistogramLadderIsCumulativeAndEndsAtInf) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("muppet_e2e_latency_us");
  h->Record(50);       // <= 100
  h->Record(5000);     // <= 10000
  h->Record(2000000);  // <= 10000000
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE muppet_e2e_latency_us histogram"),
            std::string::npos);

  // Parse every bucket line and check the ladder is monotone and +Inf
  // equals the sample count.
  int64_t prev = 0;
  size_t pos = 0;
  int buckets = 0;
  while ((pos = text.find("muppet_e2e_latency_us_bucket{le=\"", pos)) !=
         std::string::npos) {
    const size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const int64_t count = std::stoll(text.substr(value_at + 2));
    EXPECT_GE(count, prev);
    prev = count;
    ++buckets;
    pos = value_at;
  }
  EXPECT_GE(buckets, 7);  // 6-step ladder + +Inf
  EXPECT_NE(text.find("muppet_e2e_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("muppet_e2e_latency_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("muppet_e2e_latency_us_sum "), std::string::npos);
}

TEST(PromTextTest, CallbackMetricsAppear) {
  MetricsRegistry registry;
  registry.RegisterCallback("muppet_inflight_events", {}, MetricType::kGauge,
                            [] { return int64_t{42}; });
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE muppet_inflight_events gauge"),
            std::string::npos);
  EXPECT_NE(text.find("muppet_inflight_events 42"), std::string::npos);
}

TEST(PromTextTest, ContentType) {
  EXPECT_EQ(std::string(PrometheusContentType()),
            "text/plain; version=0.0.4");
}

}  // namespace
}  // namespace muppet
