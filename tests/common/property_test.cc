// Parameterized property sweeps for the common primitives:
//   * compression round-trips across entropy levels and sizes;
//   * JSON parse(dump(x)) is the identity and dump is a fixed point,
//     for randomly generated documents;
//   * varint codecs round-trip across the whole width range.
#include <string>
#include <tuple>

#include "common/bytes.h"
#include "common/compress.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

// ---- compression sweep ----------------------------------------------

// (size, entropy) where entropy 0 = constant bytes, 1 = byte-random.
using CompressParams = std::tuple<size_t, double>;

class CompressPropertyTest
    : public ::testing::TestWithParam<CompressParams> {};

TEST_P(CompressPropertyTest, RoundTripIdentity) {
  const auto [size, entropy] = GetParam();
  Rng rng(size * 1315423911ull + static_cast<uint64_t>(entropy * 100));
  Bytes input;
  input.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng.NextDouble() < entropy) {
      input.push_back(static_cast<char>(rng.Next() & 0xFF));
    } else {
      input.push_back(static_cast<char>('a' + (i % 7)));
    }
  }
  const Bytes compressed = Compress(input);
  Result<Bytes> restored = Decompress(compressed);
  ASSERT_OK(restored);
  EXPECT_EQ(restored.value(), input);
  // Low-entropy inputs must actually shrink.
  if (entropy <= 0.1 && size >= 1024) {
    EXPECT_LT(compressed.size(), input.size() / 2);
  }
}

TEST_P(CompressPropertyTest, TruncationsNeverCrashAndNeverLie) {
  const auto [size, entropy] = GetParam();
  if (size > 4096) GTEST_SKIP() << "truncation sweep on small inputs only";
  Rng rng(size + 17);
  Bytes input;
  for (size_t i = 0; i < size; ++i) {
    input.push_back(rng.NextDouble() < entropy
                        ? static_cast<char>(rng.Next() & 0xFF)
                        : 'q');
  }
  const Bytes compressed = Compress(input);
  for (size_t cut = 0; cut < compressed.size();
       cut += 1 + compressed.size() / 64) {
    Result<Bytes> r = Decompress(BytesView(compressed.data(), cut));
    // A truncated stream must either fail or (never) silently return the
    // full input: it can never return OK with wrong-length output.
    if (r.ok()) {
      EXPECT_EQ(r.value(), input)
          << "decompressor returned OK for a lying prefix";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 100, 4096, 100000),
                       ::testing::Values(0.0, 0.3, 1.0)),
    [](const ::testing::TestParamInfo<CompressParams>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_e" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// ---- JSON round-trip sweep -------------------------------------------

Json RandomJson(Rng& rng, int depth) {
  const uint64_t kind = rng.Uniform(depth > 3 ? 5 : 7);
  switch (kind) {
    case 0: return Json();
    case 1: return Json(rng.Chance(0.5));
    case 2: return Json(static_cast<int64_t>(rng.Next()));
    case 3: return Json(rng.NextDouble() * 1e6 - 5e5);
    case 4: {
      Bytes s;
      const uint64_t len = rng.Uniform(20);
      for (uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.Uniform(95) + 32));  // printable
      }
      if (rng.Chance(0.3)) s += "\n\t\"\\";  // escapes
      return Json(std::move(s));
    }
    case 5: {
      Json array = Json::MakeArray();
      const uint64_t n = rng.Uniform(5);
      for (uint64_t i = 0; i < n; ++i) {
        array.Append(RandomJson(rng, depth + 1));
      }
      return array;
    }
    default: {
      Json object = Json::MakeObject();
      const uint64_t n = rng.Uniform(5);
      for (uint64_t i = 0; i < n; ++i) {
        object["field" + std::to_string(rng.Uniform(10))] =
            RandomJson(rng, depth + 1);
      }
      return object;
    }
  }
}

class JsonPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonPropertyTest, DumpParseIdentityAndFixedPoint) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Json original = RandomJson(rng, 0);
    const std::string dumped = original.Dump();
    Result<Json> parsed = Json::Parse(dumped);
    ASSERT_OK(parsed);
    EXPECT_EQ(parsed.value(), original) << dumped;
    EXPECT_EQ(parsed.value().Dump(), dumped) << "dump must be a fixed point";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonPropertyTest,
                         ::testing::Values(1, 42, 12345, 777777));

// ---- varint sweep ------------------------------------------------------

class VarintPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VarintPropertyTest, AllBitWidthsRoundTrip) {
  const int bit = GetParam();
  // Values straddling each bit boundary.
  for (int64_t delta = -2; delta <= 2; ++delta) {
    const uint64_t v =
        (bit == 0 ? 0 : (uint64_t{1} << bit)) + static_cast<uint64_t>(delta);
    Bytes b;
    PutVarint64(&b, v);
    const char* p = b.data();
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&p, b.data() + b.size(), &decoded));
    EXPECT_EQ(decoded, v);
    if (bit < 32) {
      const uint32_t v32 = static_cast<uint32_t>(v);
      Bytes b32;
      PutVarint32(&b32, v32);
      const char* q = b32.data();
      uint32_t decoded32 = 0;
      ASSERT_TRUE(GetVarint32(&q, b32.data() + b32.size(), &decoded32));
      EXPECT_EQ(decoded32, v32);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, VarintPropertyTest,
                         ::testing::Range(0, 64, 7));

}  // namespace
}  // namespace muppet
