#include "common/rng.h"

#include <cmath>
#include <map>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal &= (va == vb);
    any_differs |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) counts[rng.Uniform(kBuckets)]++;
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler zipf(100, 0.0);
  Rng rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Sample(rng)]++;
  // Every key should appear, no key should dominate.
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [k, c] : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfTest, SamplesWithinDomain) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 50u);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfSampler zipf(10000, 1.2);
  Rng rng(11);
  int head = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // With skew 1.2 over 10k keys, the top-10 ranks should draw a large
  // fraction of all samples (uniform would give ~0.1%).
  EXPECT_GT(static_cast<double>(head) / kSamples, 0.3);
}

TEST(ZipfTest, HigherSkewMoreConcentrated) {
  Rng rng1(5), rng2(5);
  ZipfSampler mild(1000, 0.8), hot(1000, 1.4);
  int mild_head = 0, hot_head = 0;
  for (int i = 0; i < 20000; ++i) {
    if (mild.Sample(rng1) == 0) ++mild_head;
    if (hot.Sample(rng2) == 0) ++hot_head;
  }
  EXPECT_GT(hot_head, mild_head);
}

TEST(ZipfTest, RankFrequenciesMonotone) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200000; ++i) counts[zipf.Sample(rng)]++;
  // Aggregate adjacent ranks into buckets to smooth noise; the bucket
  // frequencies must decrease.
  int prev = counts[0] + counts[1] + counts[2] + counts[3];
  for (size_t b = 4; b + 4 <= 20; b += 4) {
    int cur = counts[b] + counts[b + 1] + counts[b + 2] + counts[b + 3];
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ZipfTest, DegenerateDomainOfOne) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
  ZipfSampler zero(0, 1.0);
  EXPECT_EQ(zero.n(), 1u);
}

}  // namespace
}  // namespace muppet
