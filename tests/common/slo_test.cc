#include "common/slo.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace muppet {
namespace {

Span MakeSpan(uint64_t trace_id, uint64_t span_id, SpanKind kind,
              Timestamp start, Timestamp end, const std::string& name = "",
              uint64_t parent = 0, int32_t machine = 0) {
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span = parent;
  span.kind = kind;
  span.machine = machine;
  span.name = name;
  span.start_us = start;
  span.end_us = end;
  return span;
}

// A canonical trace: publish on m0, net hop, queue wait + exec with a
// nested slate fetch on m1.
std::vector<Span> CanonicalTrace(uint64_t trace_id) {
  std::vector<Span> spans;
  spans.push_back(
      MakeSpan(trace_id, 1, SpanKind::kPublish, 0, 100, "clicks", 0, 0));
  spans.push_back(
      MakeSpan(trace_id, 2, SpanKind::kNetHop, 100, 150, "->m1", 1, 0));
  spans.push_back(
      MakeSpan(trace_id, 3, SpanKind::kQueueWait, 150, 400, "count", 2, 1));
  spans.push_back(
      MakeSpan(trace_id, 4, SpanKind::kUpdateExec, 400, 900, "count", 3, 1));
  spans.push_back(MakeSpan(trace_id, 5, SpanKind::kSlateFetch, 450, 650,
                           "count", /*parent=*/4, 1));
  return spans;
}

TEST(CriticalPathTest, EmptySpansYieldZeroPath) {
  const CriticalPath path = ComputeCriticalPath({});
  EXPECT_EQ(path.total_us, 0);
  EXPECT_EQ(path.spans, 0);
  EXPECT_TRUE(path.stream.empty());
}

TEST(CriticalPathTest, AttributesEveryBucketAndSumsToTotal) {
  const CriticalPath path = ComputeCriticalPath(CanonicalTrace(42));
  EXPECT_EQ(path.trace_id, 42u);
  EXPECT_EQ(path.stream, "clicks");
  EXPECT_EQ(path.total_us, 900);
  EXPECT_EQ(path.publish_us, 100);
  EXPECT_EQ(path.net_hop_us, 50);
  EXPECT_EQ(path.queue_wait_us, 250);
  // Exec (500) exclusive of the nested fetch (200).
  EXPECT_EQ(path.exec_us, 300);
  EXPECT_EQ(path.slate_fetch_us, 200);
  EXPECT_EQ(path.unattributed_us, path.total_us - 100 - 50 - 250 - 300 - 200);
  EXPECT_EQ(path.publish_us + path.queue_wait_us + path.exec_us +
                path.slate_fetch_us + path.net_hop_us + path.unattributed_us,
            path.total_us);
  EXPECT_EQ(path.spans, 5);
  EXPECT_EQ(path.machines, 2);
}

TEST(CriticalPathTest, NonNestedFetchIsNotDeductedFromExec) {
  std::vector<Span> spans;
  spans.push_back(MakeSpan(7, 1, SpanKind::kPublish, 0, 10, "s"));
  spans.push_back(MakeSpan(7, 2, SpanKind::kUpdateExec, 10, 110, "u", 1));
  // Fetch parented to the publish span, not the exec span.
  spans.push_back(MakeSpan(7, 3, SpanKind::kSlateFetch, 120, 160, "u", 1));
  const CriticalPath path = ComputeCriticalPath(spans);
  EXPECT_EQ(path.exec_us, 100);
  EXPECT_EQ(path.slate_fetch_us, 40);
}

TEST(CriticalPathTest, UnattributedClampsAtZeroWhenSpansOverlap) {
  // Two fully overlapping exec spans: attributed time exceeds wall time.
  std::vector<Span> spans;
  spans.push_back(MakeSpan(9, 1, SpanKind::kUpdateExec, 0, 100, "a"));
  spans.push_back(MakeSpan(9, 2, SpanKind::kUpdateExec, 0, 100, "b"));
  const CriticalPath path = ComputeCriticalPath(spans);
  EXPECT_EQ(path.total_us, 100);
  EXPECT_EQ(path.exec_us, 200);
  EXPECT_EQ(path.unattributed_us, 0);
}

TEST(CriticalPathTest, MissingPublishLeavesStreamEmpty) {
  std::vector<Span> spans;
  spans.push_back(MakeSpan(11, 1, SpanKind::kUpdateExec, 0, 50, "count"));
  EXPECT_TRUE(ComputeCriticalPath(spans).stream.empty());
}

SloOptions TwoSecondObjective() {
  SloOptions options;
  SloObjective objective;
  objective.stream = "clicks";
  objective.target_p99_us = 2 * kMicrosPerSecond;
  objective.window_micros = kMicrosPerMinute;
  options.objectives.push_back(objective);
  return options;
}

TEST(SloTrackerTest, ObserveRecordsPercentilesAndBreaches) {
  SloTracker tracker(TwoSecondObjective(), nullptr, nullptr);
  // 9 fast traces, 1 slow breach.
  for (uint64_t i = 0; i < 9; ++i) {
    std::vector<Span> spans;
    spans.push_back(
        MakeSpan(i + 1, 1, SpanKind::kPublish, 0, 1000, "clicks"));
    tracker.Observe(i + 1, spans, /*now=*/kMicrosPerSecond);
  }
  std::vector<Span> slow;
  slow.push_back(MakeSpan(100, 1, SpanKind::kPublish, 0,
                          3 * kMicrosPerSecond, "clicks"));
  tracker.Observe(100, slow, /*now=*/kMicrosPerSecond);

  const auto snaps = tracker.Snapshot(kMicrosPerSecond);
  ASSERT_EQ(snaps.size(), 1u);
  const auto& snap = snaps[0];
  EXPECT_EQ(snap.stream, "clicks");
  EXPECT_EQ(snap.events, 10);
  EXPECT_EQ(snap.breaches, 1);
  EXPECT_TRUE(snap.has_objective);
  EXPECT_GE(snap.p999_us, snap.p99_us);
  EXPECT_GE(snap.max_us, 3 * kMicrosPerSecond);
  // p99 lands in the slow trace's bucket: objective missed.
  EXPECT_FALSE(snap.meeting_objective);
  EXPECT_EQ(tracker.traces_observed(), 10);
  EXPECT_EQ(tracker.traces_unattributed(), 0);
}

TEST(SloTrackerTest, BurnRateIsBreachFractionOverBudget) {
  SloTracker tracker(TwoSecondObjective(), nullptr, nullptr);
  const Timestamp now = 10 * kMicrosPerSecond;
  // 100 events, 2 breaches: 2% bad over a 1% budget = burn rate 2.0.
  for (uint64_t i = 0; i < 100; ++i) {
    const Timestamp latency =
        i < 2 ? 3 * kMicrosPerSecond : kMicrosPerMilli;
    std::vector<Span> spans;
    spans.push_back(MakeSpan(i + 1, 1, SpanKind::kPublish, 0, latency,
                             "clicks"));
    tracker.Observe(i + 1, spans, now);
  }
  const auto snaps = tracker.Snapshot(now);
  ASSERT_EQ(snaps.size(), 1u);
  ASSERT_EQ(snaps[0].burn.size(), 2u);  // default 1m + 10m windows
  EXPECT_DOUBLE_EQ(snaps[0].burn[0].rate, 2.0);
  EXPECT_EQ(snaps[0].burn[0].events, 100);
  EXPECT_EQ(snaps[0].burn[0].breaches, 2);
}

TEST(SloTrackerTest, BurnWindowForgetsOldBuckets) {
  SloTracker tracker(TwoSecondObjective(), nullptr, nullptr);
  std::vector<Span> spans;
  spans.push_back(MakeSpan(1, 1, SpanKind::kPublish, 0,
                           3 * kMicrosPerSecond, "clicks"));
  tracker.Observe(1, spans, /*now=*/kMicrosPerSecond);
  // Within the 1-minute window the breach burns budget...
  auto snaps = tracker.Snapshot(2 * kMicrosPerSecond);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_GT(snaps[0].burn[0].rate, 0.0);
  // ...two minutes later the short window has forgotten it.
  snaps = tracker.Snapshot(2 * kMicrosPerMinute + kMicrosPerSecond);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[0].burn[0].rate, 0.0);
}

TEST(SloTrackerTest, WorstPathsAreBoundedAndSorted) {
  SloOptions options = TwoSecondObjective();
  options.worst_paths = 3;
  SloTracker tracker(options, nullptr, nullptr);
  for (uint64_t i = 1; i <= 10; ++i) {
    std::vector<Span> spans;
    spans.push_back(MakeSpan(i, 1, SpanKind::kPublish, 0,
                             static_cast<Timestamp>(i) * 100, "clicks"));
    tracker.Observe(i, spans, kMicrosPerSecond);
  }
  const auto snaps = tracker.Snapshot(kMicrosPerSecond);
  ASSERT_EQ(snaps.size(), 1u);
  ASSERT_EQ(snaps[0].worst.size(), 3u);
  EXPECT_EQ(snaps[0].worst[0].total_us, 1000);
  EXPECT_EQ(snaps[0].worst[1].total_us, 900);
  EXPECT_EQ(snaps[0].worst[2].total_us, 800);
}

TEST(SloTrackerTest, HarvestStitchesSpansAcrossSinks) {
  // One trace scattered over two machines' sinks: the publish span on the
  // accepting machine, the exec span on the owner.
  TraceSink sink0((TraceSink::Options()));
  TraceSink sink1((TraceSink::Options()));
  sink0.Record(MakeSpan(77, 1, SpanKind::kPublish, 0, 100, "clicks", 0, 0));
  sink1.Record(
      MakeSpan(77, 2, SpanKind::kUpdateExec, 100, 500, "count", 1, 1));

  SloTracker tracker(TwoSecondObjective(), nullptr, nullptr);
  tracker.Harvest({&sink0, &sink1}, /*now=*/kMicrosPerSecond);
  EXPECT_EQ(tracker.traces_observed(), 1);
  const auto snaps = tracker.Snapshot(kMicrosPerSecond);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].stream, "clicks");
  ASSERT_EQ(snaps[0].worst.size(), 1u);
  // Stitched: total spans both machines' contributions.
  EXPECT_EQ(snaps[0].worst[0].spans, 2);
  EXPECT_EQ(snaps[0].worst[0].machines, 2);
  EXPECT_EQ(snaps[0].worst[0].total_us, 500);
}

TEST(SloTrackerTest, HarvestIsIdempotent) {
  TraceSink sink((TraceSink::Options()));
  for (const Span& span : CanonicalTrace(5)) sink.Record(span);
  SloTracker tracker(TwoSecondObjective(), nullptr, nullptr);
  tracker.Harvest({&sink}, kMicrosPerSecond);
  tracker.Harvest({&sink}, 2 * kMicrosPerSecond);
  tracker.Harvest({&sink}, 3 * kMicrosPerSecond);
  EXPECT_EQ(tracker.traces_observed(), 1);
}

TEST(SloTrackerTest, HarvestDefersUnsettledTraces) {
  SloOptions options = TwoSecondObjective();
  options.settle_micros = 50 * kMicrosPerMilli;
  TraceSink sink((TraceSink::Options()));
  sink.Record(MakeSpan(3, 1, SpanKind::kPublish, 0, 100, "clicks"));

  SloTracker tracker(options, nullptr, nullptr);
  // Trace ended at t=100us; harvesting inside the settle window must not
  // observe it (a late span could still arrive)...
  tracker.Harvest({&sink}, /*now=*/200);
  EXPECT_EQ(tracker.traces_observed(), 0);
  // ...but once the settle window elapses it is picked up.
  tracker.Harvest({&sink}, 100 + options.settle_micros);
  EXPECT_EQ(tracker.traces_observed(), 1);
}

TEST(SloTrackerTest, DrainedShortCircuitsSettleWindow) {
  TraceSink sink((TraceSink::Options()));
  sink.Record(MakeSpan(4, 1, SpanKind::kPublish, 0, 100, "clicks"));
  SloTracker tracker(TwoSecondObjective(), nullptr, nullptr);
  // now is inside the settle window, but drained means no trace can grow.
  tracker.Harvest({&sink}, /*now=*/150, /*drained=*/true);
  EXPECT_EQ(tracker.traces_observed(), 1);
}

TEST(SloTrackerTest, SeenSetIsBoundedFifo) {
  SloOptions options = TwoSecondObjective();
  options.seen_capacity = 4;
  SloTracker tracker(options, nullptr, nullptr);
  TraceSink sink((TraceSink::Options()));
  for (uint64_t id = 1; id <= 8; ++id) {
    sink.Record(MakeSpan(id, 1, SpanKind::kPublish, 0, 100, "clicks"));
  }
  tracker.Harvest({&sink}, kMicrosPerSecond, /*drained=*/true);
  EXPECT_EQ(tracker.traces_observed(), 8);
  // The FIFO evicted the oldest ids, but a re-harvest of the same sink
  // within the retained window stays idempotent for the ids still held.
  tracker.Harvest({&sink}, kMicrosPerSecond, /*drained=*/true);
  // Evicted ids (at most 8 - 4 = 4) may be re-observed; retained ones not.
  EXPECT_LE(tracker.traces_observed(), 12);
}

TEST(SloTrackerTest, RegistryBackedCellsFeedMetricsFamilies) {
  MetricsRegistry registry;
  SimulatedClock clock(kMicrosPerSecond);
  SloTracker tracker(TwoSecondObjective(), &registry, &clock);
  std::vector<Span> spans;
  spans.push_back(MakeSpan(1, 1, SpanKind::kPublish, 0,
                           3 * kMicrosPerSecond, "clicks"));
  tracker.Observe(1, spans, clock.Now());

  Histogram* h = registry.GetHistogram("muppet_slo_e2e_latency_us",
                                       {{"stream", "clicks"}});
  EXPECT_EQ(h->count(), 1);
  Counter* breach = registry.GetCounter(
      "muppet_slo_events_total", {{"stream", "clicks"}, {"outcome", "breach"}});
  EXPECT_EQ(breach->Get(), 1);
  // Burn-rate callback gauges registered per configured window.
  bool found_burn = false;
  for (const auto& sample : registry.Snapshot()) {
    if (sample.name == "muppet_slo_burn_rate_milli") {
      found_burn = true;
      EXPECT_GT(sample.value, 0);  // 1 breach / 1 event = huge burn
    }
  }
  EXPECT_TRUE(found_burn);
}

TEST(SloTrackerTest, UnattributedTraceCountsAndStillObserves) {
  SloTracker tracker(TwoSecondObjective(), nullptr, nullptr);
  std::vector<Span> spans;
  spans.push_back(MakeSpan(6, 1, SpanKind::kUpdateExec, 0, 50, "count"));
  tracker.Observe(6, spans, kMicrosPerSecond);
  EXPECT_EQ(tracker.traces_observed(), 1);
  EXPECT_EQ(tracker.traces_unattributed(), 1);
}

}  // namespace
}  // namespace muppet
