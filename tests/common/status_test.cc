#include "common/status.h"

#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("the message").message(), "the message");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_FALSE(Status::IOError("").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StatusCodeNamesAreDistinct) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValueWhenOk) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatusWhenError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status Fails() { return Status::IOError("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail, bool* reached_end) {
  MUPPET_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  *reached_end = true;
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  bool reached = false;
  Status s = UseReturnIfError(true, &reached);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(reached);
  s = UseReturnIfError(false, &reached);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(reached);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::NotFound("no value");
  return 9;
}

Status UseAssignOrReturn(bool fail, int* out) {
  MUPPET_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  *out = v;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturnBindsOrPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 9);
  out = 0;
  Status s = UseAssignOrReturn(true, &out);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace muppet
