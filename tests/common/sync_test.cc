#include "common/sync.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/slo.h"
#include "common/trace.h"
#include "core/hash_ring.h"
#include "core/heat.h"
#include "core/keysplit.h"
#include "core/slate_cache.h"
#include "engine/journal.h"
#include "engine/master.h"
#include "engine/muppet2.h"
#include "engine/queue.h"
#include "engine/throttle.h"
#include "engine/watchdog.h"
#include "kvstore/memtable.h"
#include "kvstore/node.h"
#include "kvstore/wal.h"
#include "net/fault.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "service/bulk_slates.h"
#include "service/http_server.h"

namespace muppet {
namespace {

// ---------------------------------------------------------------------------
// Abort-hook plumbing: the handler is a plain function pointer, so captured
// violations land in globals.
// ---------------------------------------------------------------------------
std::atomic<int> g_violations{0};
LockOrderViolation g_last_violation;

void RecordViolation(const LockOrderViolation& v) {
  g_last_violation = v;
  g_violations.fetch_add(1);
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_violations.store(0);
    previous_ = SetLockOrderAbortHandler(&RecordViolation);
  }
  void TearDown() override { SetLockOrderAbortHandler(previous_); }

  LockOrderAbortHandler previous_ = nullptr;
};

// ---------------------------------------------------------------------------
// RAII semantics.
// ---------------------------------------------------------------------------

TEST(SyncWrappersTest, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  ASSERT_TRUE(mu.try_lock());  // released by the destructor
  mu.unlock();
}

TEST(SyncWrappersTest, ContentionProbeReportsUncontended) {
  Mutex mu;
  bool contended = true;
  {
    MutexLock lock(mu, &contended);
    EXPECT_FALSE(contended);
  }
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncWrappersTest, ContentionProbeReportsContended) {
  Mutex mu;
  std::atomic<bool> holder_ready{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    MutexLock lock(mu);
    holder_ready.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!holder_ready.load()) std::this_thread::yield();
  bool contended = false;
  std::thread prober([&] {
    MutexLock lock(mu, &contended);  // blocks until holder releases
  });
  // Give the prober time to fail its try_lock, then let the holder go.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  holder.join();
  prober.join();
  EXPECT_TRUE(contended);
}

TEST(SyncWrappersTest, ReaderLocksAreConcurrentWriterIsExclusive) {
  SharedMutex mu;
  {
    ReaderMutexLock r1(mu);
    ReaderMutexLock r2(mu);  // two concurrent readers: fine
  }
  {
    WriterMutexLock w(mu);
  }
  mu.lock_shared();  // everything released above
  mu.unlock_shared();
}

TEST(SyncWrappersTest, CondVarRoundTrip) {
  Mutex mu;
  CondVar cv;
  bool flag = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    flag = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!flag) cv.Wait(mu);
  }
  waker.join();
}

// ---------------------------------------------------------------------------
// Lock-order checker: accept and abort paths.
// ---------------------------------------------------------------------------

TEST_F(LockOrderTest, AcceptsDescendingHierarchyAcquisitions) {
  ScopedLockOrderEnforcement enforce;
  Mutex outer(LockLevel::kSlateStripe);
  Mutex mid(LockLevel::kQueue);
  Mutex inner(LockLevel::kLogging);
  {
    MutexLock a(outer);
    MutexLock b(mid);
    MutexLock c(inner);
  }
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockOrderTest, AcceptsReacquisitionAfterRelease) {
  ScopedLockOrderEnforcement enforce;
  Mutex outer(LockLevel::kSlateStripe);
  Mutex inner(LockLevel::kQueue);
  for (int i = 0; i < 3; ++i) {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockOrderTest, CatchesInversion) {
  ScopedLockOrderEnforcement enforce;
  // A cache->queue acquisition inverts the documented queue < cache order
  // (the real system only ever takes queue locks before cache locks).
  Mutex cache(LockLevel::kSlateCache);
  Mutex queue(LockLevel::kQueue);
  {
    MutexLock a(cache);
    MutexLock b(queue);  // inversion: kQueue < kSlateCache
  }
  ASSERT_EQ(g_violations.load(), 1);
  EXPECT_EQ(g_last_violation.acquiring_level, LockLevel::kQueue);
  EXPECT_EQ(g_last_violation.held_level, LockLevel::kSlateCache);
  EXPECT_FALSE(g_last_violation.self_deadlock);
}

TEST_F(LockOrderTest, CatchesEqualLevelNesting) {
  ScopedLockOrderEnforcement enforce;
  Mutex a(LockLevel::kQueue);
  Mutex b(LockLevel::kQueue);
  {
    MutexLock la(a);
    MutexLock lb(b);  // same level while held: potential ABBA deadlock
  }
  EXPECT_EQ(g_violations.load(), 1);
}

TEST_F(LockOrderTest, CatchesSelfDeadlock) {
  ScopedLockOrderEnforcement enforce;
  Mutex mu(LockLevel::kQueue);
  mu.lock();
  sync_internal::OnAcquire(&mu, mu.level(), /*shared=*/false);  // simulate
  ASSERT_EQ(g_violations.load(), 1);
  EXPECT_TRUE(g_last_violation.self_deadlock);
  sync_internal::OnRelease(&mu);
  mu.unlock();
}

TEST_F(LockOrderTest, RecordsHeldStackWhenCaptureEnabled) {
  ScopedLockOrderEnforcement enforce;
  SetLockOrderStackCaptureEnabled(true);
  Mutex cache(LockLevel::kSlateCache);
  Mutex queue(LockLevel::kQueue);
  {
    MutexLock a(cache);
    MutexLock b(queue);
  }
  SetLockOrderStackCaptureEnabled(false);
  ASSERT_EQ(g_violations.load(), 1);
  EXPECT_GT(g_last_violation.held_frame_count, 0);
}

TEST_F(LockOrderTest, AllowsRecursiveSharedAcquisition) {
  ScopedLockOrderEnforcement enforce;
  // Publish-from-a-tap re-enters RunTaps, taking the taps SharedMutex
  // shared twice on one thread; the checker must not flag it.
  SharedMutex taps(LockLevel::kTaps);
  taps.lock_shared();
  taps.lock_shared();
  taps.unlock_shared();
  taps.unlock_shared();
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockOrderTest, UnorderedLocksAreExempt) {
  ScopedLockOrderEnforcement enforce;
  Mutex ordered(LockLevel::kSlateCache);
  Mutex scratch;  // kUnordered
  {
    MutexLock a(ordered);
    MutexLock b(scratch);  // no violation either way
  }
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockOrderTest, DisabledCheckerIsSilent) {
  ScopedLockOrderEnforcement enforce(false);
  Mutex cache(LockLevel::kSlateCache);
  Mutex queue(LockLevel::kQueue);
  {
    MutexLock a(cache);
    MutexLock b(queue);  // inversion, but checking is off
  }
  EXPECT_EQ(g_violations.load(), 0);
}

// ---------------------------------------------------------------------------
// Hierarchy regression: the table in DESIGN.md ("Concurrency model") and
// common/sync.h must match the levels each subsystem actually assigns. A
// level change here without a doc/table update is a test failure.
// ---------------------------------------------------------------------------

TEST(LockHierarchyTest, SubsystemsAssignTheDocumentedLevels) {
  EXPECT_EQ(Muppet2Engine::kSlateStripeLockLevel, LockLevel::kSlateStripe);
  EXPECT_EQ(Muppet2Engine::kTapsLockLevel, LockLevel::kTaps);
  EXPECT_EQ(SplitTable::kLockLevel, LockLevel::kSplitTable);
  EXPECT_EQ(Muppet2Engine::kMergeDedupeLockLevel, LockLevel::kMergeDedupe);
  EXPECT_EQ(HashRing::kOverrideLockLevel, LockLevel::kRingOverride);
  EXPECT_EQ(HeatTracker::kLockLevel, LockLevel::kHeat);
  EXPECT_EQ(Muppet2Engine::kFailedSetLockLevel, LockLevel::kFailedSet);
  EXPECT_EQ(Muppet2Engine::kDrainLockLevel, LockLevel::kDrain);
  EXPECT_EQ(InMemoryTransport::kRegistryLockLevel, LockLevel::kTransport);
  EXPECT_EQ(TcpTransport::kStateLockLevel, LockLevel::kTcpState);
  EXPECT_EQ(TcpTransport::kWriteQueueLockLevel, LockLevel::kTcpWriteQueue);
  EXPECT_EQ(InMemoryTransport::kRngLockLevel, LockLevel::kTransportRng);
  EXPECT_EQ(FaultInjector::kLockLevel, LockLevel::kFaultInjector);
  EXPECT_EQ(InMemoryTransport::kHoldLockLevel, LockLevel::kFaultHold);
  EXPECT_EQ(EventQueue::kLockLevel, LockLevel::kQueue);
  EXPECT_EQ(Master::kLockLevel, LockLevel::kMaster);
  EXPECT_EQ(ThrottleGovernor::kLockLevel, LockLevel::kThrottle);
  EXPECT_EQ(SlateCache::kLockLevel, LockLevel::kSlateCache);
  EXPECT_EQ(kv::StorageNode::kCfLockLevel, LockLevel::kStoreNode);
  EXPECT_EQ(kv::Shard::kTablesLockLevel, LockLevel::kStoreTables);
  EXPECT_EQ(kv::MemTable::kLockLevel, LockLevel::kStoreIo);
  EXPECT_EQ(kv::WalWriter::kLockLevel, LockLevel::kStoreIo);
  EXPECT_EQ(EventJournal::kLockLevel, LockLevel::kJournal);
  EXPECT_EQ(SlateLogger::kLockLevel, LockLevel::kJournal);
  EXPECT_EQ(DedupTable::kLockLevel, LockLevel::kDedupTable);
  EXPECT_EQ(SlateChangelog::kLockLevel, LockLevel::kSlateChangelog);
  EXPECT_EQ(HttpServer::kLockLevel, LockLevel::kService);
  EXPECT_EQ(SloTracker::kLockLevel, LockLevel::kSlo);
  EXPECT_EQ(IncidentLog::kLockLevel, LockLevel::kIncidents);
  EXPECT_EQ(MetricsRegistry::kLockLevel, LockLevel::kMetrics);
  EXPECT_EQ(TraceSink::kStripeLockLevel, LockLevel::kTraceStripe);
  EXPECT_EQ(TraceSink::kSlowestLockLevel, LockLevel::kTraceSlowest);
}

TEST(LockHierarchyTest, DocumentedOrderingHolds) {
  // The nesting edges the code actually exercises, outermost first. Each
  // EXPECT_LT is one "outer may acquire inner" edge from DESIGN.md.
  auto lt = [](LockLevel a, LockLevel b) {
    return static_cast<int>(a) < static_cast<int>(b);
  };
  // Updater path: stripe -> taps -> transport/rng -> queue -> master ->
  // failed-set -> drain/throttle -> cache -> store.
  EXPECT_TRUE(lt(LockLevel::kSlateStripe, LockLevel::kTaps));
  // Load-management plane: the dispatch path consults the split table and
  // heat sketch under a stripe; merge sweeps take the dedupe lock after
  // taps; placement overrides are read during routing before the
  // transport is touched.
  EXPECT_TRUE(lt(LockLevel::kSlateStripe, LockLevel::kSplitTable));
  EXPECT_TRUE(lt(LockLevel::kTaps, LockLevel::kMergeDedupe));
  EXPECT_TRUE(lt(LockLevel::kSplitTable, LockLevel::kMergeDedupe));
  EXPECT_TRUE(lt(LockLevel::kMergeDedupe, LockLevel::kRingOverride));
  EXPECT_TRUE(lt(LockLevel::kRingOverride, LockLevel::kTransport));
  EXPECT_TRUE(lt(LockLevel::kFaultHold, LockLevel::kHeat));
  EXPECT_TRUE(lt(LockLevel::kHeat, LockLevel::kQueue));
  EXPECT_TRUE(lt(LockLevel::kTaps, LockLevel::kTransport));
  // TCP transport: epoll-loop state may take a peer's write-queue lock
  // while holding the state lock (DrainPeerWrites), never the reverse.
  EXPECT_TRUE(lt(LockLevel::kTransport, LockLevel::kTcpState));
  EXPECT_TRUE(lt(LockLevel::kTcpState, LockLevel::kTcpWriteQueue));
  EXPECT_TRUE(lt(LockLevel::kTcpWriteQueue, LockLevel::kTransportRng));
  EXPECT_TRUE(lt(LockLevel::kTransport, LockLevel::kTransportRng));
  // Fault path: the injector's decision lock and the reorder holdback lock
  // are leaves between the rng and the receiver's queues; both are
  // released before any handler (and so any queue lock) runs.
  EXPECT_TRUE(lt(LockLevel::kTransportRng, LockLevel::kFaultInjector));
  EXPECT_TRUE(lt(LockLevel::kFaultInjector, LockLevel::kFaultHold));
  EXPECT_TRUE(lt(LockLevel::kFaultHold, LockLevel::kQueue));
  EXPECT_TRUE(lt(LockLevel::kTransportRng, LockLevel::kQueue));
  EXPECT_TRUE(lt(LockLevel::kQueue, LockLevel::kMaster));
  EXPECT_TRUE(lt(LockLevel::kMaster, LockLevel::kFailedSet));
  EXPECT_TRUE(lt(LockLevel::kFailedSet, LockLevel::kDrain));
  EXPECT_TRUE(lt(LockLevel::kDrain, LockLevel::kThrottle));
  EXPECT_TRUE(lt(LockLevel::kThrottle, LockLevel::kSlateCache));
  // Durability plane (DESIGN.md §12): the dedup check runs on the receive
  // path before dispatch touches any queue lock; changelog appends run
  // under the updater's slate stripe / cache locks and may reach the
  // store (checkpoint flush), so the changelog sits above the whole store
  // chain but below the service/metrics/logging leaves.
  EXPECT_TRUE(lt(LockLevel::kRingOverride, LockLevel::kDedupTable));
  EXPECT_TRUE(lt(LockLevel::kDedupTable, LockLevel::kQueue));
  EXPECT_TRUE(lt(LockLevel::kSlateStripe, LockLevel::kSlateChangelog));
  EXPECT_TRUE(lt(LockLevel::kSlateCache, LockLevel::kSlateChangelog));
  EXPECT_TRUE(lt(LockLevel::kStoreIo, LockLevel::kSlateChangelog));
  EXPECT_TRUE(lt(LockLevel::kJournal, LockLevel::kSlateChangelog));
  EXPECT_TRUE(lt(LockLevel::kSlateChangelog, LockLevel::kService));
  // Cache eviction writes back under the cache lock: cache -> store chain.
  EXPECT_TRUE(lt(LockLevel::kSlateCache, LockLevel::kStoreNode));
  EXPECT_TRUE(lt(LockLevel::kStoreNode, LockLevel::kStoreTables));
  EXPECT_TRUE(lt(LockLevel::kStoreTables, LockLevel::kStoreIo));
  // Anything may append to a journal/logger, register a metric, or log.
  EXPECT_TRUE(lt(LockLevel::kStoreIo, LockLevel::kJournal));
  EXPECT_TRUE(lt(LockLevel::kJournal, LockLevel::kService));
  EXPECT_TRUE(lt(LockLevel::kService, LockLevel::kMetrics));
  // Health & SLO plane (DESIGN.md Â§14): the SLO tracker registers burn
  // gauges while holding its own lock, and the admin service reads both
  // the tracker and the incident log under the server lock.
  EXPECT_TRUE(lt(LockLevel::kService, LockLevel::kSlo));
  EXPECT_TRUE(lt(LockLevel::kSlo, LockLevel::kMetrics));
  EXPECT_TRUE(lt(LockLevel::kService, LockLevel::kIncidents));
  EXPECT_TRUE(lt(LockLevel::kIncidents, LockLevel::kMetrics));
  // Spans are recorded under subsystem locks (queue, slate stripes), and
  // a stripe eviction may push into the slowest-N list.
  EXPECT_TRUE(lt(LockLevel::kMetrics, LockLevel::kTraceStripe));
  EXPECT_TRUE(lt(LockLevel::kTraceStripe, LockLevel::kTraceSlowest));
  EXPECT_TRUE(lt(LockLevel::kTraceSlowest, LockLevel::kLogging));
  EXPECT_TRUE(lt(LockLevel::kMetrics, LockLevel::kLogging));
}

// ---------------------------------------------------------------------------
// The real engine respects the hierarchy end to end: run a small pipeline
// with enforcement (and the default abort handler!) enabled — any inversion
// on the publish/dispatch/process/flush path would abort the test binary.
// ---------------------------------------------------------------------------

TEST(LockHierarchyTest, EngineQueueAndCacheHonorHierarchyUnderEnforcement) {
  ScopedLockOrderEnforcement enforce;
  EventQueue queue(8);
  SlateCache cache({.capacity = 2}, [](const SlateCache::DirtySlate&) {
    return Status::OK();
  });
  RoutedEvent re;
  re.function = "f";
  ASSERT_TRUE(queue.TryPush(std::move(re)).ok());
  RoutedEvent out;
  ASSERT_TRUE(queue.Pop(&out));
  for (int i = 0; i < 8; ++i) {
    SlateId id{"u", Bytes(1, static_cast<char>('a' + i))};
    ASSERT_TRUE(cache.Update(id, "v", /*now=*/i, /*write_through=*/false)
                    .ok());  // evictions write back under the cache lock
  }
  queue.Stop();
}

}  // namespace
}  // namespace muppet
