#include "common/trace.h"

#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace {

Span MakeSpan(uint64_t trace_id, Timestamp start, Timestamp end,
              SpanKind kind = SpanKind::kMapExec) {
  Span s;
  s.trace_id = trace_id;
  s.span_id = NextSpanId();
  s.kind = kind;
  s.machine = 0;
  s.start_us = start;
  s.end_us = end;
  return s;
}

TEST(TraceSamplingTest, DeterministicAcrossCalls) {
  for (uint64_t key_hash : {1ULL, 42ULL, 0xDEADBEEFULL, ~0ULL}) {
    for (uint64_t period : {2ULL, 64ULL, 1024ULL}) {
      EXPECT_EQ(TraceSampled(key_hash, period),
                TraceSampled(key_hash, period));
    }
  }
}

TEST(TraceSamplingTest, PeriodOneSamplesEverythingZeroNothing) {
  for (uint64_t key_hash = 0; key_hash < 100; ++key_hash) {
    EXPECT_TRUE(TraceSampled(key_hash, 1));
    EXPECT_FALSE(TraceSampled(key_hash, 0));
  }
}

TEST(TraceSamplingTest, SamplesRoughlyOneInPeriod) {
  const uint64_t period = 16;
  int sampled = 0;
  const int kKeys = 4096;
  for (int i = 0; i < kKeys; ++i) {
    if (TraceSampled(Fnv1a64(std::to_string(i)), period)) ++sampled;
  }
  // Expected 256; allow a generous band — the point is "a fraction", not
  // "all" or "none".
  EXPECT_GT(sampled, kKeys / static_cast<int>(period) / 3);
  EXPECT_LT(sampled, kKeys / static_cast<int>(period) * 3);
}

TEST(TraceIdTest, NeverZeroAndSeqSensitive) {
  std::set<uint64_t> ids;
  for (uint64_t seq = 1; seq <= 100; ++seq) {
    const uint64_t id = MakeTraceId(/*key_hash=*/7, seq);
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  // Same key, different publishes -> distinct traces.
  EXPECT_EQ(ids.size(), 100u);
}

TEST(SpanKindTest, NamesCoverTaxonomy) {
  EXPECT_STREQ(SpanKindName(SpanKind::kPublish), "publish");
  EXPECT_STREQ(SpanKindName(SpanKind::kQueueWait), "queue_wait");
  EXPECT_STREQ(SpanKindName(SpanKind::kMapExec), "map_exec");
  EXPECT_STREQ(SpanKindName(SpanKind::kUpdateExec), "update_exec");
  EXPECT_STREQ(SpanKindName(SpanKind::kSlateFetch), "slate_fetch");
  EXPECT_STREQ(SpanKindName(SpanKind::kNetHop), "net_hop");
}

TEST(TraceSinkTest, GroupsSpansByTraceId) {
  TraceSink sink;
  sink.Record(MakeSpan(10, 0, 5));
  sink.Record(MakeSpan(10, 5, 9));
  sink.Record(MakeSpan(20, 2, 3));
  const auto recent = sink.Recent();
  ASSERT_EQ(recent.size(), 2u);
  for (const auto& record : recent) {
    if (record.trace_id == 10) {
      EXPECT_EQ(record.spans.size(), 2u);
      EXPECT_EQ(record.first_start_us, 0);
      EXPECT_EQ(record.last_end_us, 9);
      EXPECT_EQ(record.duration_us(), 9);
    } else {
      EXPECT_EQ(record.trace_id, 20u);
      EXPECT_EQ(record.spans.size(), 1u);
    }
  }
  EXPECT_EQ(sink.spans_recorded(), 3);
}

TEST(TraceSinkTest, DropsUntracedSpans) {
  TraceSink sink;
  sink.Record(MakeSpan(0, 0, 1));
  EXPECT_TRUE(sink.Recent().empty());
  EXPECT_EQ(sink.spans_dropped(), 1);
}

TEST(TraceSinkTest, RecentIsNewestFirstAndBounded) {
  TraceSink::Options options;
  options.recent_capacity = 16;
  TraceSink sink(options);
  for (uint64_t t = 1; t <= 8; ++t) {
    sink.Record(MakeSpan(t, static_cast<Timestamp>(t),
                         static_cast<Timestamp>(t + 1)));
  }
  const auto recent = sink.Recent(/*max=*/3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_GE(recent[0].last_end_us, recent[1].last_end_us);
  EXPECT_GE(recent[1].last_end_us, recent[2].last_end_us);
}

TEST(TraceSinkTest, EvictionRetainsSlowestTraces) {
  TraceSink::Options options;
  options.recent_capacity = 8;  // 1 per stripe
  options.slowest_capacity = 4;
  TraceSink sink(options);
  // One very slow trace, then a flood sharing its stripe to evict it.
  // Stripe = trace_id % 8, so ids congruent mod 8 collide.
  sink.Record(MakeSpan(8, 0, 1000000));
  for (uint64_t t = 1; t <= 32; ++t) {
    sink.Record(MakeSpan(8 * t + 8, 0, 10));
  }
  EXPECT_GT(sink.traces_evicted(), 0);
  const auto slowest = sink.Slowest();
  ASSERT_FALSE(slowest.empty());
  EXPECT_EQ(slowest.front().trace_id, 8u);
  EXPECT_EQ(slowest.front().duration_us(), 1000000);
}

TEST(TraceSinkTest, PerTraceSpanCapIsEnforced) {
  TraceSink::Options options;
  options.max_spans_per_trace = 4;
  TraceSink sink(options);
  for (int i = 0; i < 10; ++i) sink.Record(MakeSpan(5, i, i + 1));
  const auto recent = sink.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent.front().spans.size(), 4u);
  EXPECT_EQ(sink.spans_dropped(), 6);
}

TEST(TraceSinkTest, ConcurrentRecordIsSafeAndLossless) {
  TraceSink::Options options;
  options.recent_capacity = 1024;
  options.max_spans_per_trace = 100000;
  TraceSink sink(options);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        // 64 distinct traces shared across threads.
        sink.Record(MakeSpan(1 + (i % 64), i, i + 1));
      }
      (void)t;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.spans_recorded(), kThreads * kSpansPerThread);
  size_t total_spans = 0;
  for (const auto& record : sink.Recent()) total_spans += record.spans.size();
  EXPECT_EQ(total_spans,
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST(ScopedSpanTest, RecordsOnDestruction) {
  TraceSink sink;
  SimulatedClock clock(100);
  {
    ScopedSpan span;
    span.Begin(&sink, &clock, TraceContext{77, 3}, SpanKind::kUpdateExec,
               /*machine=*/2, "count");
    EXPECT_NE(span.span_id(), 0u);
    span.set_note("hit");
    clock.Advance(50);
  }
  const auto recent = sink.Recent();
  ASSERT_EQ(recent.size(), 1u);
  const Span& s = recent.front().spans.front();
  EXPECT_EQ(s.trace_id, 77u);
  EXPECT_EQ(s.parent_span, 3u);
  EXPECT_EQ(s.kind, SpanKind::kUpdateExec);
  EXPECT_EQ(s.machine, 2);
  EXPECT_EQ(s.name, "count");
  EXPECT_EQ(s.note, "hit");
  EXPECT_EQ(s.start_us, 100);
  EXPECT_EQ(s.end_us, 150);
}

TEST(ScopedSpanTest, DisarmedWhenUnsampledOrNoSink) {
  TraceSink sink;
  SimulatedClock clock;
  ScopedSpan unsampled;
  unsampled.Begin(&sink, &clock, TraceContext{}, SpanKind::kMapExec, 0, "f");
  EXPECT_EQ(unsampled.span_id(), 0u);
  ScopedSpan no_sink;
  no_sink.Begin(nullptr, &clock, TraceContext{1, 0}, SpanKind::kMapExec, 0,
                "f");
  EXPECT_EQ(no_sink.span_id(), 0u);
  unsampled.End();
  no_sink.End();
  EXPECT_TRUE(sink.Recent().empty());
}

TEST(ScopedSpanTest, ExplicitEndRecordsOnce) {
  TraceSink sink;
  SimulatedClock clock;
  ScopedSpan span;
  span.Begin(&sink, &clock, TraceContext{9, 0}, SpanKind::kNetHop, 0, "->m1");
  span.End();
  span.End();  // no-op
  EXPECT_EQ(sink.spans_recorded(), 1);
}

}  // namespace
}  // namespace muppet
