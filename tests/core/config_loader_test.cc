#include "core/config_loader.h"

#include <string>

#include "core/reference_executor.h"
#include "core/slate.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

OperatorRegistry MakeRegistry() {
  OperatorRegistry registry;
  EXPECT_TRUE(registry
                  .RegisterMapper(
                      "forward",
                      MakeMapperFactory([](PerformerUtilities& out,
                                           const Event& e) {
                        (void)out.Publish("S2", e.key, e.value);
                      }))
                  .ok());
  EXPECT_TRUE(registry
                  .RegisterUpdater(
                      "counter",
                      MakeUpdaterFactory([](PerformerUtilities& out,
                                            const Event&,
                                            const Bytes* slate) {
                        JsonSlate s(slate);
                        s.data()["count"] = s.data().GetInt("count") + 1;
                        (void)out.ReplaceSlate(s.Serialize());
                      }))
                  .ok());
  return registry;
}

constexpr char kDocument[] = R"({
  "slate_column_family": "myapp",
  "input_streams": ["S1"],
  "streams": ["S2"],
  "settings": {"threshold": 4},
  "operators": [
    {"name": "M1", "type": "forward", "kind": "map", "subscribes": ["S1"]},
    {"name": "U1", "type": "counter", "kind": "update",
     "subscribes": ["S2"], "slate_ttl_ms": 5000,
     "flush_policy": "write_through"}
  ]
})";

TEST(ConfigLoaderTest, LoadsCompleteWorkflow) {
  OperatorRegistry registry = MakeRegistry();
  AppConfig config;
  ASSERT_OK(LoadAppConfigFromJson(kDocument, registry, &config));

  EXPECT_EQ(config.slate_column_family(), "myapp");
  EXPECT_EQ(config.settings().GetInt("threshold"), 4);
  EXPECT_TRUE(config.IsInputStream("S1"));
  EXPECT_TRUE(config.HasStream("S2"));
  const OperatorSpec* u1 = config.FindOperator("U1");
  ASSERT_NE(u1, nullptr);
  EXPECT_EQ(u1->kind, OperatorKind::kUpdater);
  EXPECT_EQ(u1->updater_options.slate_ttl_micros, 5000 * kMicrosPerMilli);
  EXPECT_EQ(u1->updater_options.flush_policy,
            SlateFlushPolicy::kWriteThrough);
  const OperatorSpec* m1 = config.FindOperator("M1");
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->kind, OperatorKind::kMapper);
}

TEST(ConfigLoaderTest, LoadedWorkflowActuallyRuns) {
  OperatorRegistry registry = MakeRegistry();
  AppConfig config;
  ASSERT_OK(LoadAppConfigFromJson(kDocument, registry, &config));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  for (int i = 0; i < 5; ++i) ASSERT_OK(exec.Publish("S1", "k", "", i + 1));
  ASSERT_OK(exec.Run());
  JsonSlate s(&exec.slates().at(SlateId{"U1", "k"}));
  EXPECT_EQ(s.data().GetInt("count"), 5);
}

TEST(ConfigLoaderTest, UnknownOperatorTypeRejected) {
  OperatorRegistry registry = MakeRegistry();
  AppConfig config;
  Status s = LoadAppConfigFromJson(R"({
    "input_streams": ["S1"],
    "operators": [
      {"name": "M1", "type": "missing", "kind": "map", "subscribes": ["S1"]}
    ]})",
                                   registry, &config);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

TEST(ConfigLoaderTest, KindTypeMismatchRejected) {
  OperatorRegistry registry = MakeRegistry();
  AppConfig config;
  // "counter" is registered as an updater, not a mapper.
  Status s = LoadAppConfigFromJson(R"({
    "input_streams": ["S1"],
    "operators": [
      {"name": "M1", "type": "counter", "kind": "map", "subscribes": ["S1"]}
    ]})",
                                   registry, &config);
  EXPECT_TRUE(s.IsNotFound());
}

TEST(ConfigLoaderTest, MalformedDocumentsRejected) {
  OperatorRegistry registry = MakeRegistry();
  for (const char* doc : {
           "not json",
           "[]",
           R"({"operators": []})",                      // no input streams
           R"({"input_streams": ["S1"], "operators": [
               {"name": "", "type": "forward", "kind": "map",
                "subscribes": ["S1"]}]})",              // empty name
           R"({"input_streams": ["S1"], "operators": [
               {"name": "M1", "type": "forward", "kind": "shuffle",
                "subscribes": ["S1"]}]})",              // bad kind
           R"({"input_streams": ["S1"], "operators": [
               {"name": "U1", "type": "counter", "kind": "update",
                "subscribes": ["S1"], "flush_policy": "yolo"}]})",
       }) {
    AppConfig config;
    EXPECT_FALSE(LoadAppConfigFromJson(doc, registry, &config).ok()) << doc;
  }
}

TEST(ConfigLoaderTest, ValidationStillApplies) {
  // Subscribing to an undeclared stream must fail via Validate().
  OperatorRegistry registry = MakeRegistry();
  AppConfig config;
  Status s = LoadAppConfigFromJson(R"({
    "input_streams": ["S1"],
    "operators": [
      {"name": "M1", "type": "forward", "kind": "map",
       "subscribes": ["ghost"]}
    ]})",
                                   registry, &config);
  EXPECT_FALSE(s.ok());
}

TEST(ConfigLoaderTest, DuplicateRegistrationRejected) {
  OperatorRegistry registry = MakeRegistry();
  EXPECT_FALSE(registry
                   .RegisterMapper("forward",
                                   MakeMapperFactory(
                                       [](PerformerUtilities&,
                                          const Event&) {}))
                   .ok());
  // A type name is global across kinds.
  EXPECT_FALSE(registry
                   .RegisterUpdater("forward",
                                    MakeUpdaterFactory(
                                        [](PerformerUtilities&, const Event&,
                                           const Bytes*) {}))
                   .ok());
}

TEST(ConfigLoaderTest, RoundTripThroughToJson) {
  OperatorRegistry registry = MakeRegistry();
  AppConfig config;
  ASSERT_OK(LoadAppConfigFromJson(kDocument, registry, &config));
  const std::string dumped = AppConfigToJson(config);
  Result<Json> parsed = Json::Parse(dumped);
  ASSERT_OK(parsed);
  EXPECT_EQ(parsed.value().GetString("slate_column_family"), "myapp");
  EXPECT_EQ(parsed.value()["operators"].size(), 2u);
  EXPECT_EQ(parsed.value()["input_streams"].AsArray()[0].AsString(), "S1");
}

}  // namespace
}  // namespace muppet
