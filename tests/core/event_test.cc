#include "core/event.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(EventTest, EncodeDecodeRoundTrip) {
  Event e;
  e.stream = "S1";
  e.ts = 1234567;
  e.key = "user42";
  e.value = "{\"payload\": true}";
  e.seq = 99;
  e.origin_ts = 1000;

  Bytes wire;
  EncodeEvent(e, &wire);
  Event decoded;
  ASSERT_OK(DecodeEvent(wire, &decoded));
  EXPECT_EQ(decoded.stream, e.stream);
  EXPECT_EQ(decoded.ts, e.ts);
  EXPECT_EQ(decoded.key, e.key);
  EXPECT_EQ(decoded.value, e.value);
  EXPECT_EQ(decoded.seq, e.seq);
  EXPECT_EQ(decoded.origin_ts, e.origin_ts);
}

TEST(EventTest, BinaryKeyAndValue) {
  Event e;
  e.stream = "s";
  e.key = Bytes("\x00\x01\x02", 3);
  e.value = Bytes("\xff\x00\xfe", 3);
  Bytes wire;
  EncodeEvent(e, &wire);
  Event decoded;
  ASSERT_OK(DecodeEvent(wire, &decoded));
  EXPECT_EQ(decoded.key, e.key);
  EXPECT_EQ(decoded.value, e.value);
}

TEST(EventTest, EmptyFields) {
  Event e;
  Bytes wire;
  EncodeEvent(e, &wire);
  Event decoded;
  ASSERT_OK(DecodeEvent(wire, &decoded));
  EXPECT_EQ(decoded.stream, "");
  EXPECT_EQ(decoded.key, "");
}

TEST(EventTest, TruncatedWireRejected) {
  Event e;
  e.stream = "S1";
  e.key = "key";
  e.value = "value";
  Bytes wire;
  EncodeEvent(e, &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Event decoded;
    EXPECT_FALSE(DecodeEvent(BytesView(wire.data(), cut), &decoded).ok());
  }
}

TEST(EventTest, TrailingBytesRejected) {
  Event e;
  e.stream = "S1";
  Bytes wire;
  EncodeEvent(e, &wire);
  wire.push_back('x');
  Event decoded;
  EXPECT_FALSE(DecodeEvent(wire, &decoded).ok());
}

TEST(EventOrderTest, OrdersByTimestampThenSeq) {
  Event a, b, c;
  a.ts = 100;
  a.seq = 5;
  b.ts = 100;
  b.seq = 6;
  c.ts = 99;
  c.seq = 100;
  EXPECT_TRUE(EventOrderLess(a, b));   // same ts, lower seq first
  EXPECT_FALSE(EventOrderLess(b, a));
  EXPECT_TRUE(EventOrderLess(c, a));   // lower ts first regardless of seq
  EXPECT_FALSE(EventOrderLess(a, a));  // irreflexive
}

TEST(EventOrderTest, SortProducesDeterministicStreamOrder) {
  std::vector<Event> events;
  for (int i = 0; i < 100; ++i) {
    Event e;
    e.ts = 100 - (i % 10);
    e.seq = static_cast<uint64_t>(i);
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(), EventOrderLess);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_FALSE(EventOrderLess(events[i], events[i - 1]));
  }
}

}  // namespace
}  // namespace muppet
