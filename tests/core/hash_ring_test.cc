#include "core/hash_ring.h"

#include <map>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

HashRing MakeRing(int machines, int workers_per_machine,
                  const std::string& function) {
  HashRing ring;
  for (int m = 0; m < machines; ++m) {
    for (int s = 0; s < workers_per_machine; ++s) {
      ring.AddWorker(function, WorkerRef{m, s});
    }
  }
  return ring;
}

TEST(HashRingTest, RouteIsDeterministic) {
  HashRing a = MakeRing(4, 2, "U1");
  HashRing b = MakeRing(4, 2, "U1");
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    auto ra = a.Route("U1", key, {});
    auto rb = b.Route("U1", key, {});
    ASSERT_OK(ra);
    ASSERT_OK(rb);
    EXPECT_EQ(ra.value(), rb.value())
        << "all workers must agree on the ring (paper §4.1)";
  }
}

TEST(HashRingTest, SameKeyAlwaysSameWorker) {
  HashRing ring = MakeRing(5, 1, "U1");
  auto first = ring.Route("U1", "user42", {});
  ASSERT_OK(first);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.Route("U1", "user42", {}).value(), first.value());
  }
}

TEST(HashRingTest, UnknownFunctionNotFound) {
  HashRing ring = MakeRing(2, 1, "U1");
  EXPECT_TRUE(ring.Route("nope", "k", {}).status().IsNotFound());
}

TEST(HashRingTest, DistributesAcrossWorkers) {
  HashRing ring = MakeRing(4, 2, "U1");
  std::map<WorkerRef, int> counts;
  for (int i = 0; i < 8000; ++i) {
    auto r = ring.Route("U1", "key" + std::to_string(i), {});
    ASSERT_OK(r);
    counts[r.value()]++;
  }
  EXPECT_EQ(counts.size(), 8u);  // all 8 workers used
  for (const auto& [worker, count] : counts) {
    EXPECT_GT(count, 200) << "machine " << worker.machine << " slot "
                          << worker.slot;
  }
}

TEST(HashRingTest, FunctionsRouteIndependently) {
  HashRing ring;
  for (int m = 0; m < 4; ++m) {
    ring.AddWorker("U1", WorkerRef{m, 0});
    ring.AddWorker("U2", WorkerRef{m, 1});
  }
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto r1 = ring.Route("U1", key, {});
    auto r2 = ring.Route("U2", key, {});
    ASSERT_OK(r1);
    ASSERT_OK(r2);
    EXPECT_EQ(r1.value().slot, 0);
    EXPECT_EQ(r2.value().slot, 1);
    if (r1.value().machine != r2.value().machine) ++differing;
  }
  EXPECT_GT(differing, 10) << "per-function rings should not be aligned";
}

TEST(HashRingTest, FailedMachineSkipped) {
  HashRing ring = MakeRing(4, 1, "U1");
  // Find a key routed to machine 2.
  std::string victim_key;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (ring.Route("U1", key, {}).value().machine == 2) {
      victim_key = key;
      break;
    }
  }
  ASSERT_FALSE(victim_key.empty());
  auto rerouted = ring.Route("U1", victim_key, {2});
  ASSERT_OK(rerouted);
  EXPECT_NE(rerouted.value().machine, 2);
  // Deterministic reroute.
  EXPECT_EQ(ring.Route("U1", victim_key, {2}).value(), rerouted.value());
}

TEST(HashRingTest, FailureOnlyMovesAffectedKeys) {
  HashRing ring = MakeRing(4, 1, "U1");
  int moved = 0, total = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    const WorkerRef before = ring.Route("U1", key, {}).value();
    const WorkerRef after = ring.Route("U1", key, {3}).value();
    ++total;
    if (!(before == after)) {
      ++moved;
      EXPECT_EQ(before.machine, 3)
          << "only keys owned by the failed machine may move";
    }
  }
  EXPECT_GT(moved, 100);       // machine 3 owned ~25%
  EXPECT_LT(moved, total / 2);
}

TEST(HashRingTest, AllMachinesFailedUnavailable) {
  HashRing ring = MakeRing(2, 1, "U1");
  EXPECT_TRUE(ring.Route("U1", "k", {0, 1}).status().IsUnavailable());
}

TEST(HashRingTest, SecondaryDiffersFromPrimary) {
  HashRing ring = MakeRing(4, 1, "U1");
  int distinct = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    auto primary = ring.Route("U1", key, {});
    auto secondary = ring.RouteSecondary("U1", key, {});
    ASSERT_OK(primary);
    ASSERT_OK(secondary);
    if (!(primary.value() == secondary.value())) ++distinct;
  }
  EXPECT_EQ(distinct, 200) << "with 4 workers the secondary must differ";
}

TEST(HashRingTest, SecondaryFallsBackToPrimaryWhenAlone) {
  HashRing ring = MakeRing(1, 1, "U1");
  auto primary = ring.Route("U1", "k", {});
  auto secondary = ring.RouteSecondary("U1", "k", {});
  ASSERT_OK(primary);
  ASSERT_OK(secondary);
  EXPECT_EQ(primary.value(), secondary.value());
}

TEST(HashRingTest, DuplicateAddWorkerIgnored) {
  HashRing ring;
  ring.AddWorker("U1", WorkerRef{0, 0});
  ring.AddWorker("U1", WorkerRef{0, 0});
  EXPECT_EQ(ring.WorkersOf("U1").size(), 1u);
}

TEST(HashRingTest, WorkersOfListsAll) {
  HashRing ring = MakeRing(3, 2, "U1");
  EXPECT_EQ(ring.WorkersOf("U1").size(), 6u);
  EXPECT_TRUE(ring.WorkersOf("unknown").empty());
}

// --- Placement override table -------------------------------------------

TEST(HashRingOverrideTest, RoutingHonorsOverride) {
  HashRing ring = MakeRing(4, 1, "U1");
  const WorkerRef natural = ring.Route("U1", "hot", {}).value();
  const MachineId target = (natural.machine + 1) % 4;
  ASSERT_TRUE(ring.SetOverride("U1", "hot", target));
  EXPECT_EQ(ring.Route("U1", "hot", {}).value().machine, target);
  // Other keys and other functions are unaffected.
  EXPECT_EQ(ring.Route("U1", "cold", {}).value(),
            MakeRing(4, 1, "U1").Route("U1", "cold", {}).value());
  EXPECT_EQ(ring.override_count(), 1u);
}

TEST(HashRingOverrideTest, OverrideToFailedMachineFallsBack) {
  // Advisory only: when the override target is down, the normal clockwise
  // walk takes over so invariant D (reroute around failures) holds.
  HashRing ring = MakeRing(4, 1, "U1");
  const WorkerRef natural = ring.Route("U1", "hot", {}).value();
  const MachineId target = (natural.machine + 1) % 4;
  ASSERT_TRUE(ring.SetOverride("U1", "hot", target));
  const WorkerRef routed = ring.Route("U1", "hot", {target}).value();
  EXPECT_NE(routed.machine, target);
}

TEST(HashRingOverrideTest, ClearRestoresNaturalRoute) {
  HashRing ring = MakeRing(4, 1, "U1");
  const WorkerRef natural = ring.Route("U1", "hot", {}).value();
  ASSERT_TRUE(ring.SetOverride("U1", "hot", (natural.machine + 1) % 4));
  ring.ClearOverride("U1", "hot");
  EXPECT_EQ(ring.Route("U1", "hot", {}).value(), natural);
  EXPECT_EQ(ring.override_count(), 0u);
}

TEST(HashRingOverrideTest, CapacityBoundedAndUpdatesInPlace) {
  HashRing ring = MakeRing(2, 1, "U1");
  const size_t cap = ring.override_capacity();
  for (size_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(ring.SetOverride("U1", "k" + std::to_string(i), 0));
  }
  EXPECT_EQ(ring.override_count(), cap);
  // Full: a new key is refused, re-pointing an existing one is not.
  EXPECT_FALSE(ring.SetOverride("U1", "one-more", 0));
  EXPECT_TRUE(ring.SetOverride("U1", "k0", 1));
  EXPECT_EQ(ring.override_count(), cap);

  ring.ClearAllOverrides();
  EXPECT_EQ(ring.override_count(), 0u);
  EXPECT_TRUE(ring.SetOverride("U1", "one-more", 0));
}

TEST(HashRingOverrideTest, OverridesListsEntries) {
  HashRing ring = MakeRing(2, 1, "U1");
  ASSERT_TRUE(ring.SetOverride("U1", "hot", 1));
  const std::vector<HashRing::OverrideEntry> entries = ring.Overrides();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].function, "U1");
  EXPECT_EQ(entries[0].key, "hot");
  EXPECT_EQ(entries[0].machine, 1);
}

}  // namespace
}  // namespace muppet
