#include "core/heat.h"

#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

HeatTrackerOptions Opts(size_t capacity, uint32_t sample_period = 1) {
  HeatTrackerOptions o;
  o.capacity = capacity;
  o.sample_period = sample_period;
  return o;
}

TEST(HeatTrackerTest, CountsAndRanksArrivals) {
  HeatTracker heat(Opts(8));
  for (int i = 0; i < 30; ++i) heat.Record(1, "hot");
  for (int i = 0; i < 10; ++i) heat.Record(1, "warm");
  heat.Record(1, "cold");

  auto top = heat.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "hot");
  EXPECT_EQ(top[0].count, 30);
  EXPECT_EQ(top[0].error, 0);
  EXPECT_EQ(top[1].key, "warm");
  EXPECT_EQ(top[1].count, 10);
  EXPECT_EQ(heat.sampled_total(), 41);
  EXPECT_EQ(heat.samples_recorded(), 41);
}

TEST(HeatTrackerTest, FunctionsDoNotMerge) {
  HeatTracker heat(Opts(8));
  heat.Record(1, "k");
  heat.Record(2, "k");
  heat.Record(2, "k");
  auto top = heat.TopK(8);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].function_id, 2);
  EXPECT_EQ(top[0].count, 2);
  EXPECT_EQ(top[1].function_id, 1);
  EXPECT_EQ(top[1].count, 1);
}

TEST(HeatTrackerTest, SpaceSavingEvictsMinimumAndInheritsError) {
  HeatTracker heat(Opts(2));
  for (int i = 0; i < 5; ++i) heat.Record(1, "a");
  for (int i = 0; i < 2; ++i) heat.Record(1, "b");
  // Full sketch: "c" evicts the minimum ("b", count 2) and inherits its
  // count as error, entering at count 3 = evicted + 1.
  heat.Record(1, "c");

  auto top = heat.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 5);
  EXPECT_EQ(top[1].key, "c");
  EXPECT_EQ(top[1].count, 3);
  EXPECT_EQ(top[1].error, 2);
  // True count >= count - error for every entry (the space-saving bound).
  for (const HeatEntry& e : top) EXPECT_GE(e.count, e.error);
}

TEST(HeatTrackerTest, HeavyHitterSurvivesManyDistinctKeys) {
  // The guarantee that matters for hotspot detection: a key drawing far
  // more than total/capacity arrivals cannot be evicted by one-off keys.
  HeatTracker heat(Opts(16));
  for (int i = 0; i < 500; ++i) {
    heat.Record(1, "hot");
    heat.Record(1, "one-off-" + std::to_string(i));
  }
  auto top = heat.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "hot");
  EXPECT_GE(top[0].count, 500);
}

TEST(HeatTrackerTest, DecayAgesCountsAndDropsCold) {
  HeatTracker heat(Opts(8));
  for (int i = 0; i < 100; ++i) heat.Record(1, "hot");
  heat.Record(1, "cold");

  heat.Decay(0.5);
  auto top = heat.TopK(8);
  ASSERT_EQ(top.size(), 1u);  // cold decayed below one and fell out
  EXPECT_EQ(top[0].key, "hot");
  EXPECT_EQ(top[0].count, 50);
  EXPECT_EQ(heat.sampled_total(), 50);
  // The monotone metrics counter is unaffected by aging.
  EXPECT_EQ(heat.samples_recorded(), 101);

  heat.Decay(0.0);
  EXPECT_TRUE(heat.TopK(8).empty());
  EXPECT_EQ(heat.sampled_total(), 0);
}

TEST(HeatTrackerTest, SamplingGatePeriod) {
  HeatTracker heat(Opts(8, /*sample_period=*/4));
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    if (heat.ShouldSample()) ++sampled;
  }
  EXPECT_EQ(sampled, 25);

  HeatTracker every(Opts(8, /*sample_period=*/1));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(every.ShouldSample());
}

}  // namespace
}  // namespace muppet
