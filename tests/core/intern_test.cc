#include "core/intern.h"

#include <string>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(NameInternerTest, DenseIdsInFirstInternOrder) {
  NameInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(NameInternerTest, ReinternReturnsExistingId) {
  NameInterner interner;
  const uint32_t id = interner.Intern("alpha");
  EXPECT_EQ(interner.Intern("alpha"), id);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(NameInternerTest, FindAndNameOfRoundTrip) {
  NameInterner interner;
  interner.Intern("in");
  interner.Intern("out");
  EXPECT_EQ(interner.Find("in"), 0);
  EXPECT_EQ(interner.Find("out"), 1);
  EXPECT_EQ(interner.NameOf(0), "in");
  EXPECT_EQ(interner.NameOf(1), "out");
}

TEST(NameInternerTest, FindUnknownReturnsNotFound) {
  NameInterner interner;
  interner.Intern("in");
  EXPECT_EQ(interner.Find("nope"), NameInterner::kNotFound);
  EXPECT_EQ(interner.Find(""), NameInterner::kNotFound);
}

TEST(NameInternerTest, FindAcceptsStringViewWithoutCopy) {
  NameInterner interner;
  interner.Intern("stream-with-long-name");
  const std::string haystack = "xxstream-with-long-namexx";
  std::string_view view(haystack.data() + 2, haystack.size() - 4);
  EXPECT_EQ(interner.Find(view), 0);
}

TEST(NameInternerTest, ManyNamesStayStableAcrossRehash) {
  NameInterner interner;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Intern("name-" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "name-" + std::to_string(i);
    ASSERT_EQ(interner.Find(name), i);
    EXPECT_EQ(interner.NameOf(static_cast<uint32_t>(i)), name);
  }
}

}  // namespace
}  // namespace muppet
