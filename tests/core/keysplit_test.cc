#include "core/keysplit.h"

#include <map>
#include <set>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(KeySplitTest, MakeAndParseRoundTrip) {
  for (const Bytes& base : {Bytes("Best Buy"), Bytes(""), Bytes("a#b"),
                            Bytes("##"), Bytes("key#7"), Bytes("#")}) {
    for (int shard : {0, 1, 7, 12345}) {
      const Bytes split = MakeSplitKey(base, shard);
      Bytes parsed_base;
      int parsed_shard = -1;
      ASSERT_OK(ParseSplitKey(split, &parsed_base, &parsed_shard));
      EXPECT_EQ(parsed_base, base);
      EXPECT_EQ(parsed_shard, shard);
    }
  }
}

TEST(KeySplitTest, PaperExampleKeys) {
  // Example 6: "Best Buy" splits into "Best Buy1" / "Best Buy2"-style
  // subkeys; ours use a '#' separator.
  EXPECT_EQ(MakeSplitKey("Best Buy", 0), "Best Buy#0");
  EXPECT_EQ(MakeSplitKey("Best Buy", 1), "Best Buy#1");
}

TEST(KeySplitTest, ParseRejectsNonSplitKeys) {
  Bytes base;
  int shard;
  EXPECT_FALSE(ParseSplitKey("plainkey", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("key#", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("key#x1", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("key#-1", &base, &shard).ok());
}

TEST(KeySplitTest, DistinctShardsDistinctKeys) {
  std::set<Bytes> keys;
  for (int i = 0; i < 16; ++i) keys.insert(MakeSplitKey("hot", i));
  EXPECT_EQ(keys.size(), 16u);
}

TEST(KeySplitterTest, RoundRobinBalancesExactly) {
  KeySplitter splitter(4);
  std::map<Bytes, int> counts;
  for (int i = 0; i < 400; ++i) counts[splitter.RouteKey("hot")]++;
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [key, count] : counts) EXPECT_EQ(count, 100);
}

TEST(KeySplitterTest, OnlyHotKeysSplit) {
  KeySplitter splitter(4, {{Bytes("Best Buy"), true}});
  EXPECT_TRUE(splitter.IsSplit("Best Buy"));
  EXPECT_FALSE(splitter.IsSplit("JCPenney"));
  EXPECT_EQ(splitter.RouteKey("JCPenney"), "JCPenney");
  const Bytes routed = splitter.RouteKey("Best Buy");
  Bytes base;
  int shard;
  ASSERT_OK(ParseSplitKey(routed, &base, &shard));
  EXPECT_EQ(base, "Best Buy");
  EXPECT_LT(shard, 4);
}

TEST(KeySplitterTest, SingleShardPassThrough) {
  KeySplitter splitter(1);
  EXPECT_FALSE(splitter.IsSplit("anything"));
  EXPECT_EQ(splitter.RouteKey("anything"), "anything");
}

TEST(KeySplitTest, FuzzRoundTrip) {
  // Seeded fuzz over keys dense in the separator and digits — the two
  // character classes the codec treats specially — plus empty keys and
  // shard counts past three digits.
  Rng rng(771);
  const char alphabet[] = "#0123456789ab";
  for (int iter = 0; iter < 5000; ++iter) {
    Bytes base;
    const size_t len = rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      base.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    const int shard = static_cast<int>(rng.Uniform(100000));
    const Bytes split = MakeSplitKey(base, shard);
    Bytes parsed_base;
    int parsed_shard = -1;
    SCOPED_TRACE("split key: " + split);
    ASSERT_OK(ParseSplitKey(split, &parsed_base, &parsed_shard));
    EXPECT_EQ(parsed_base, base);
    EXPECT_EQ(parsed_shard, shard);
  }
}

TEST(KeySplitTest, ManyShardsBeyondThreeDigits) {
  const Bytes split = MakeSplitKey("k", 1000);
  Bytes base;
  int shard = -1;
  ASSERT_OK(ParseSplitKey(split, &base, &shard));
  EXPECT_EQ(base, "k");
  EXPECT_EQ(shard, 1000);
}

TEST(KeySplitTest, NegativeShardClampsToZero) {
  // A negative shard cannot round-trip (ParseSplitKey rejects "key#-1"),
  // so MakeSplitKey clamps instead of emitting an unparseable key.
  EXPECT_EQ(MakeSplitKey("k", -1), MakeSplitKey("k", 0));
  EXPECT_EQ(MakeSplitKey("k", -42), "k#0");
}

TEST(KeySplitterTest, PerKeyCursorsIndependent) {
  KeySplitter splitter(2);
  // Alternating keys each get their own round-robin.
  EXPECT_EQ(splitter.RouteKey("a"), MakeSplitKey("a", 0));
  EXPECT_EQ(splitter.RouteKey("b"), MakeSplitKey("b", 0));
  EXPECT_EQ(splitter.RouteKey("a"), MakeSplitKey("a", 1));
  EXPECT_EQ(splitter.RouteKey("b"), MakeSplitKey("b", 1));
  EXPECT_EQ(splitter.RouteKey("a"), MakeSplitKey("a", 0));
}

TEST(SplitTableTest, LifecycleSplitDrainFinish) {
  SplitTable table;
  EXPECT_FALSE(table.HasSplits());
  SplitTable::State state;
  EXPECT_FALSE(table.Lookup(1, "hot", &state));
  EXPECT_EQ(table.RouteShard(1, "hot", &state), -1);

  ASSERT_TRUE(table.Split(1, "hot", 4));
  EXPECT_TRUE(table.HasSplits());
  ASSERT_TRUE(table.Lookup(1, "hot", &state));
  EXPECT_EQ(state.shards, 4);
  EXPECT_FALSE(state.draining);
  const uint32_t split_epoch = state.epoch;

  // Round-robin covers every shard evenly.
  std::map<int, int> picked;
  for (int i = 0; i < 40; ++i) {
    const int shard = table.RouteShard(1, "hot", &state);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    picked[shard]++;
  }
  EXPECT_EQ(picked.size(), 4u);
  for (const auto& [shard, count] : picked) EXPECT_EQ(count, 10);

  // Draining: entry still visible (FetchSlate aggregation needs it) but
  // new events route unsplit, and the epoch moved.
  ASSERT_TRUE(table.BeginMerge(1, "hot"));
  ASSERT_TRUE(table.Lookup(1, "hot", &state));
  EXPECT_TRUE(state.draining);
  EXPECT_NE(state.epoch, split_epoch);
  EXPECT_EQ(table.RouteShard(1, "hot", &state), -1);

  table.NoteMergeFound(1, "hot", 128);
  table.NoteMergeFound(1, "hot", 64);
  EXPECT_EQ(table.TakeMergeFound(1, "hot"), 192);
  EXPECT_EQ(table.TakeMergeFound(1, "hot"), 0);

  table.Finish(1, "hot");
  EXPECT_FALSE(table.HasSplits());
  EXPECT_FALSE(table.Lookup(1, "hot", &state));
}

TEST(SplitTableTest, WidenBumpsEpochAndNeverShrinks) {
  SplitTable table;
  ASSERT_TRUE(table.Split(1, "hot", 2));
  SplitTable::State state;
  ASSERT_TRUE(table.Lookup(1, "hot", &state));
  const uint32_t e1 = state.epoch;

  ASSERT_TRUE(table.Split(1, "hot", 8));
  ASSERT_TRUE(table.Lookup(1, "hot", &state));
  EXPECT_EQ(state.shards, 8);
  EXPECT_NE(state.epoch, e1);

  // Narrowing is refused: shard slates beyond the narrower width would be
  // stranded with no event ever routed to sweep them.
  EXPECT_FALSE(table.Split(1, "hot", 2));
  ASSERT_TRUE(table.Lookup(1, "hot", &state));
  EXPECT_EQ(state.shards, 8);
}

TEST(SplitTableTest, KeysAndFunctionsIndependent) {
  SplitTable table;
  ASSERT_TRUE(table.Split(1, "a", 2));
  ASSERT_TRUE(table.Split(2, "a", 4));
  SplitTable::State state;
  ASSERT_TRUE(table.Lookup(1, "a", &state));
  EXPECT_EQ(state.shards, 2);
  ASSERT_TRUE(table.Lookup(2, "a", &state));
  EXPECT_EQ(state.shards, 4);
  EXPECT_FALSE(table.Lookup(1, "b", &state));
  EXPECT_EQ(table.size(), 2u);

  table.Finish(1, "a");
  EXPECT_TRUE(table.HasSplits());
  ASSERT_TRUE(table.Lookup(2, "a", &state));
}

TEST(SplitTableTest, CapacityBounded) {
  SplitTable table(/*max_entries=*/2);
  EXPECT_TRUE(table.Split(1, "a", 2));
  EXPECT_TRUE(table.Split(1, "b", 2));
  EXPECT_FALSE(table.Split(1, "c", 2));
  // Widening an existing entry is not a new entry.
  EXPECT_TRUE(table.Split(1, "a", 4));
  table.Finish(1, "a");
  EXPECT_TRUE(table.Split(1, "c", 2));
}

TEST(SplitTableTest, RejectsDegenerateShardCounts) {
  SplitTable table;
  EXPECT_FALSE(table.Split(1, "a", 1));
  EXPECT_FALSE(table.Split(1, "a", 0));
  EXPECT_FALSE(table.Split(1, "a", -3));
  EXPECT_FALSE(table.HasSplits());
}

}  // namespace
}  // namespace muppet
