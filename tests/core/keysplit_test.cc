#include "core/keysplit.h"

#include <map>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(KeySplitTest, MakeAndParseRoundTrip) {
  for (const Bytes& base : {Bytes("Best Buy"), Bytes(""), Bytes("a#b"),
                            Bytes("##"), Bytes("key#7"), Bytes("#")}) {
    for (int shard : {0, 1, 7, 12345}) {
      const Bytes split = MakeSplitKey(base, shard);
      Bytes parsed_base;
      int parsed_shard = -1;
      ASSERT_OK(ParseSplitKey(split, &parsed_base, &parsed_shard));
      EXPECT_EQ(parsed_base, base);
      EXPECT_EQ(parsed_shard, shard);
    }
  }
}

TEST(KeySplitTest, PaperExampleKeys) {
  // Example 6: "Best Buy" splits into "Best Buy1" / "Best Buy2"-style
  // subkeys; ours use a '#' separator.
  EXPECT_EQ(MakeSplitKey("Best Buy", 0), "Best Buy#0");
  EXPECT_EQ(MakeSplitKey("Best Buy", 1), "Best Buy#1");
}

TEST(KeySplitTest, ParseRejectsNonSplitKeys) {
  Bytes base;
  int shard;
  EXPECT_FALSE(ParseSplitKey("plainkey", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("key#", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("key#x1", &base, &shard).ok());
  EXPECT_FALSE(ParseSplitKey("key#-1", &base, &shard).ok());
}

TEST(KeySplitTest, DistinctShardsDistinctKeys) {
  std::set<Bytes> keys;
  for (int i = 0; i < 16; ++i) keys.insert(MakeSplitKey("hot", i));
  EXPECT_EQ(keys.size(), 16u);
}

TEST(KeySplitterTest, RoundRobinBalancesExactly) {
  KeySplitter splitter(4);
  std::map<Bytes, int> counts;
  for (int i = 0; i < 400; ++i) counts[splitter.RouteKey("hot")]++;
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [key, count] : counts) EXPECT_EQ(count, 100);
}

TEST(KeySplitterTest, OnlyHotKeysSplit) {
  KeySplitter splitter(4, {{Bytes("Best Buy"), true}});
  EXPECT_TRUE(splitter.IsSplit("Best Buy"));
  EXPECT_FALSE(splitter.IsSplit("JCPenney"));
  EXPECT_EQ(splitter.RouteKey("JCPenney"), "JCPenney");
  const Bytes routed = splitter.RouteKey("Best Buy");
  Bytes base;
  int shard;
  ASSERT_OK(ParseSplitKey(routed, &base, &shard));
  EXPECT_EQ(base, "Best Buy");
  EXPECT_LT(shard, 4);
}

TEST(KeySplitterTest, SingleShardPassThrough) {
  KeySplitter splitter(1);
  EXPECT_FALSE(splitter.IsSplit("anything"));
  EXPECT_EQ(splitter.RouteKey("anything"), "anything");
}

TEST(KeySplitterTest, PerKeyCursorsIndependent) {
  KeySplitter splitter(2);
  // Alternating keys each get their own round-robin.
  EXPECT_EQ(splitter.RouteKey("a"), MakeSplitKey("a", 0));
  EXPECT_EQ(splitter.RouteKey("b"), MakeSplitKey("b", 0));
  EXPECT_EQ(splitter.RouteKey("a"), MakeSplitKey("a", 1));
  EXPECT_EQ(splitter.RouteKey("b"), MakeSplitKey("b", 1));
  EXPECT_EQ(splitter.RouteKey("a"), MakeSplitKey("a", 0));
}

}  // namespace
}  // namespace muppet
