#include "core/reference_executor.h"

#include <string>

#include "apps/retailer.h"
#include "core/slate.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

// A config with one counting updater fed directly from the input.
AppConfig CountingConfig() {
  AppConfig config;
  EXPECT_TRUE(config.DeclareInputStream("in").ok());
  EXPECT_TRUE(config
                  .AddUpdater("U1",
                              MakeUpdaterFactory([](PerformerUtilities& out,
                                                    const Event&,
                                                    const Bytes* slate) {
                                JsonSlate s(slate);
                                s.data()["count"] =
                                    s.data().GetInt("count") + 1;
                                (void)out.ReplaceSlate(s.Serialize());
                              }),
                              {"in"})
                  .ok());
  return config;
}

TEST(ReferenceExecutorTest, CountsPerKey) {
  AppConfig config = CountingConfig();
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(exec.Publish("in", "a", "", 100 + i));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(exec.Publish("in", "b", "", 200 + i));
  }
  ASSERT_OK(exec.Run());
  const auto& slates = exec.slates();
  ASSERT_EQ(slates.size(), 2u);
  JsonSlate a(&slates.at(SlateId{"U1", "a"}));
  JsonSlate b(&slates.at(SlateId{"U1", "b"}));
  EXPECT_EQ(a.data().GetInt("count"), 10);
  EXPECT_EQ(b.data().GetInt("count"), 5);
  EXPECT_EQ(exec.events_processed(), 15u);
}

TEST(ReferenceExecutorTest, ProcessesInTimestampOrder) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  std::vector<Timestamp> seen;
  ASSERT_OK(config.AddMapper(
      "M1",
      MakeMapperFactory([&seen](PerformerUtilities&, const Event& e) {
        seen.push_back(e.ts);
      }),
      {"in"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  // Publish out of order; execution must be in ts order.
  for (Timestamp ts : {50, 10, 30, 20, 40}) {
    ASSERT_OK(exec.Publish("in", "k", "", ts));
  }
  ASSERT_OK(exec.Run());
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(ReferenceExecutorTest, TieBreakBySeqIsPublishOrder) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  std::vector<std::string> seen;
  ASSERT_OK(config.AddMapper(
      "M1",
      MakeMapperFactory([&seen](PerformerUtilities&, const Event& e) {
        seen.push_back(std::string(e.value));
      }),
      {"in"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  ASSERT_OK(exec.Publish("in", "k", "first", 100));
  ASSERT_OK(exec.Publish("in", "k", "second", 100));
  ASSERT_OK(exec.Publish("in", "k", "third", 100));
  ASSERT_OK(exec.Run());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "first");
  EXPECT_EQ(seen[1], "second");
  EXPECT_EQ(seen[2], "third");
}

TEST(ReferenceExecutorTest, MapperChainsToUpdater) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("mid"));
  ASSERT_OK(config.AddMapper(
      "M1", MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        // Double each event.
        (void)out.Publish("mid", e.key, e.value);
        (void)out.Publish("mid", e.key, e.value);
      }),
      {"in"}));
  ASSERT_OK(config.AddUpdater(
      "U1", MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                  const Bytes* slate) {
        JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
      }),
      {"mid"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  for (int i = 0; i < 7; ++i) ASSERT_OK(exec.Publish("in", "k", "", i + 1));
  ASSERT_OK(exec.Run());
  JsonSlate s(&exec.slates().at(SlateId{"U1", "k"}));
  EXPECT_EQ(s.data().GetInt("count"), 14);
  EXPECT_EQ(exec.StreamLog("mid").size(), 14u);
}

TEST(ReferenceExecutorTest, OutputTimestampsExceedInput) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("mid"));
  ASSERT_OK(config.AddMapper(
      "M1", MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        (void)out.Publish("mid", e.key, "");
      }),
      {"in"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  ASSERT_OK(exec.Publish("in", "k", "", 100));
  ASSERT_OK(exec.Run());
  const auto& mid = exec.StreamLog("mid");
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_GT(mid[0].ts, 100);
}

TEST(ReferenceExecutorTest, PublishValidation) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("mid"));
  Status publish_undeclared, publish_into_input, publish_bad_ts;
  ASSERT_OK(config.AddMapper(
      "M1",
      MakeMapperFactory([&](PerformerUtilities& out, const Event& e) {
        publish_undeclared = out.Publish("ghost", e.key, "");
        publish_into_input = out.Publish("in", e.key, "");
        publish_bad_ts = out.PublishAt("mid", e.key, "", e.ts);
      }),
      {"in"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  ASSERT_OK(exec.Publish("in", "k", "", 1));
  ASSERT_OK(exec.Run());
  EXPECT_FALSE(publish_undeclared.ok());
  EXPECT_FALSE(publish_into_input.ok());
  EXPECT_FALSE(publish_bad_ts.ok());
  // External publish to a non-input stream also fails.
  EXPECT_FALSE(exec.Publish("mid", "k", "", 5).ok());
}

TEST(ReferenceExecutorTest, CyclicWorkflowTerminates) {
  // An updater re-emits into its own stream a bounded number of times;
  // the timestamp rule keeps the loop well-defined.
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("loop"));
  ASSERT_OK(config.AddUpdater(
      "U1", MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                  const Bytes* slate) {
        JsonSlate s(slate);
        const int64_t hops = s.data().GetInt("hops");
        s.data()["hops"] = hops + 1;
        (void)out.ReplaceSlate(s.Serialize());
        if (hops + 1 < 5) {
          (void)out.Publish("loop", e.key, "");
        }
      }),
      {"in", "loop"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  ASSERT_OK(exec.Publish("in", "k", "", 1));
  ASSERT_OK(exec.Run());
  JsonSlate s(&exec.slates().at(SlateId{"U1", "k"}));
  EXPECT_EQ(s.data().GetInt("hops"), 5);
}

TEST(ReferenceExecutorTest, RunawayCycleAborted) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("loop"));
  ASSERT_OK(config.AddUpdater(
      "U1", MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                  const Bytes*) {
        (void)out.Publish("loop", e.key, "");  // forever
      }),
      {"in", "loop"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  ASSERT_OK(exec.Publish("in", "k", "", 1));
  Status s = exec.Run(/*max_events=*/1000);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST(ReferenceExecutorTest, DeleteSlateRemoves) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.AddUpdater(
      "U1", MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                  const Bytes* slate) {
        if (e.value == "delete") {
          (void)out.DeleteSlate();
        } else {
          JsonSlate s(slate);
          s.data()["count"] = s.data().GetInt("count") + 1;
          (void)out.ReplaceSlate(s.Serialize());
        }
      }),
      {"in"}));
  ReferenceExecutor exec(config);
  ASSERT_OK(exec.Start());
  ASSERT_OK(exec.Publish("in", "k", "", 1));
  ASSERT_OK(exec.Publish("in", "k", "delete", 2));
  ASSERT_OK(exec.Run());
  EXPECT_TRUE(exec.slates().empty());
  // Re-touch after delete starts fresh (§3 TTL/delete semantics).
  ASSERT_OK(exec.Publish("in", "k", "", 3));
  ASSERT_OK(exec.Run());
  JsonSlate s(&exec.slates().at(SlateId{"U1", "k"}));
  EXPECT_EQ(s.data().GetInt("count"), 1);
}

TEST(ReferenceExecutorTest, DeterministicAcrossRuns) {
  // Same inputs -> byte-identical slates and stream logs.
  auto run_once = [](std::map<SlateId, Bytes>* slates_out,
                     size_t* mention_count) {
    AppConfig config;
    ASSERT_TRUE(apps::BuildRetailerApp(&config).ok());
    ReferenceExecutor exec(config);
    ASSERT_TRUE(exec.Start().ok());
    for (int i = 0; i < 200; ++i) {
      Json checkin = Json::MakeObject();
      checkin["venue"] =
          (i % 3 == 0) ? "Walmart Supercenter"
                       : (i % 3 == 1 ? "Best Buy #4" : "Joe's Diner");
      ASSERT_TRUE(
          exec.Publish("S1", "u" + std::to_string(i % 10),
                       checkin.Dump(), 1000 + i)
              .ok());
    }
    ASSERT_TRUE(exec.Run().ok());
    *slates_out = exec.slates();
    *mention_count = exec.StreamLog("S2").size();
  };
  std::map<SlateId, Bytes> first, second;
  size_t mentions1 = 0, mentions2 = 0;
  run_once(&first, &mentions1);
  run_once(&second, &mentions2);
  EXPECT_EQ(first, second);
  EXPECT_EQ(mentions1, mentions2);
  EXPECT_GT(mentions1, 0u);
}

}  // namespace
}  // namespace muppet
