// Hash-ring property sweeps across cluster shapes: total coverage,
// determinism, failure monotonicity (only the failed machine's keys move),
// and bounded imbalance.
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "core/hash_ring.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

// (machines, workers per machine, vnodes)
using RingParams = std::tuple<int, int, int>;

class RingPropertyTest : public ::testing::TestWithParam<RingParams> {
 protected:
  HashRing MakeRing() const {
    const auto [machines, workers, vnodes] = GetParam();
    HashRing ring(vnodes);
    for (int m = 0; m < machines; ++m) {
      for (int s = 0; s < workers; ++s) {
        ring.AddWorker("U", WorkerRef{m, s});
      }
    }
    return ring;
  }

  static std::string Key(int i) { return "key" + std::to_string(i); }
};

TEST_P(RingPropertyTest, EveryKeyRoutesToARegisteredWorker) {
  const auto [machines, workers, vnodes] = GetParam();
  HashRing ring = MakeRing();
  std::set<WorkerRef> seen;
  for (int i = 0; i < 5000; ++i) {
    auto r = ring.Route("U", Key(i), {});
    ASSERT_OK(r);
    ASSERT_GE(r.value().machine, 0);
    ASSERT_LT(r.value().machine, machines);
    ASSERT_GE(r.value().slot, 0);
    ASSERT_LT(r.value().slot, workers);
    seen.insert(r.value());
  }
  // With 5000 keys, every worker should own something.
  EXPECT_EQ(seen.size(), static_cast<size_t>(machines * workers));
}

TEST_P(RingPropertyTest, FailureMovesOnlyAffectedKeys) {
  const auto [machines, workers, vnodes] = GetParam();
  if (machines < 2) GTEST_SKIP() << "needs a survivor";
  HashRing ring = MakeRing();
  const MachineId victim = machines - 1;
  for (int i = 0; i < 2000; ++i) {
    const WorkerRef before = ring.Route("U", Key(i), {}).value();
    const WorkerRef after = ring.Route("U", Key(i), {victim}).value();
    if (before.machine != victim) {
      EXPECT_EQ(before, after)
          << "keys on healthy machines must not move (§4.3)";
    } else {
      EXPECT_NE(after.machine, victim);
    }
  }
}

TEST_P(RingPropertyTest, CascadingFailuresAlwaysRoute) {
  const auto [machines, workers, vnodes] = GetParam();
  HashRing ring = MakeRing();
  std::set<MachineId> failed;
  for (MachineId dead = 0; dead < machines - 1; ++dead) {
    failed.insert(dead);
    for (int i = 0; i < 200; ++i) {
      auto r = ring.Route("U", Key(i), failed);
      ASSERT_OK(r);
      EXPECT_EQ(failed.count(r.value().machine), 0u);
    }
  }
}

TEST_P(RingPropertyTest, ImbalanceBounded) {
  const auto [machines, workers, vnodes] = GetParam();
  HashRing ring = MakeRing();
  std::map<WorkerRef, int> counts;
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    counts[ring.Route("U", Key(i), {}).value()]++;
  }
  const double mean =
      static_cast<double>(kKeys) / (machines * workers);
  for (const auto& [worker, count] : counts) {
    // With >=64 vnodes the max/mean ratio stays moderate.
    if (vnodes >= 64) {
      EXPECT_LT(count, mean * 2.2)
          << "machine " << worker.machine << " slot " << worker.slot;
      EXPECT_GT(count, mean * 0.25);
    } else {
      EXPECT_GT(count, 0);
    }
  }
}

TEST_P(RingPropertyTest, SecondaryIsConsistentAndDistinct) {
  const auto [machines, workers, vnodes] = GetParam();
  HashRing ring = MakeRing();
  const int total_workers = machines * workers;
  for (int i = 0; i < 500; ++i) {
    auto primary = ring.Route("U", Key(i), {});
    auto secondary = ring.RouteSecondary("U", Key(i), {});
    ASSERT_OK(primary);
    ASSERT_OK(secondary);
    if (total_workers >= 2) {
      EXPECT_FALSE(primary.value() == secondary.value());
    } else {
      EXPECT_EQ(primary.value(), secondary.value());
    }
    // Stable across repeated calls.
    EXPECT_EQ(ring.RouteSecondary("U", Key(i), {}).value(),
              secondary.value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 16),  // machines
                       ::testing::Values(1, 3),         // workers/machine
                       ::testing::Values(8, 128)),      // vnodes
    [](const ::testing::TestParamInfo<RingParams>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_v" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace muppet
