#include "core/slate_cache.h"

#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

// A write-back sink recording everything flushed.
struct Sink {
  std::map<SlateId, Bytes> store;
  std::vector<SlateId> deletes;
  int writes = 0;
  Status fail_with = Status::OK();

  SlateCache::WriteBack AsWriteBack() {
    return [this](const SlateCache::DirtySlate& dirty) -> Status {
      if (!fail_with.ok()) return fail_with;
      ++writes;
      if (dirty.deleted) {
        deletes.push_back(dirty.id);
        store.erase(dirty.id);
      } else {
        store[dirty.id] = dirty.value;
      }
      return Status::OK();
    };
  }
};

SlateId Id(const std::string& key) { return SlateId{"U1", key}; }

TEST(SlateCacheTest, InsertLookup) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Insert(Id("a"), "value-a"));
  Bytes out;
  ASSERT_OK(cache.Lookup(Id("a"), &out));
  EXPECT_EQ(out, "value-a");
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_TRUE(cache.Lookup(Id("b"), &out).IsNotFound());
  EXPECT_EQ(cache.misses(), 1);
}

TEST(SlateCacheTest, UpdateMarksDirtyAndFlushes) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(Id("a"), "v1", /*now=*/100, /*write_through=*/false));
  EXPECT_EQ(sink.writes, 0) << "interval policy: no immediate write";
  auto flushed = cache.FlushDirty(INT64_MAX);
  ASSERT_OK(flushed);
  EXPECT_EQ(flushed.value(), 1);
  EXPECT_EQ(sink.store.at(Id("a")), "v1");
  // Second flush is a no-op: nothing dirty.
  EXPECT_EQ(cache.FlushDirty(INT64_MAX).value(), 0);
}

TEST(SlateCacheTest, WriteThroughFlushesImmediately) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(Id("a"), "v1", 100, /*write_through=*/true));
  EXPECT_EQ(sink.writes, 1);
  EXPECT_EQ(sink.store.at(Id("a")), "v1");
  EXPECT_EQ(cache.FlushDirty(INT64_MAX).value(), 0);
}

TEST(SlateCacheTest, FlushRespectsDirtyBefore) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(Id("old"), "v", /*now=*/100, false));
  ASSERT_OK(cache.Update(Id("new"), "v", /*now=*/500, false));
  // Flush only entries dirty since before t=300.
  EXPECT_EQ(cache.FlushDirty(300).value(), 1);
  EXPECT_TRUE(sink.store.count(Id("old")) > 0);
  EXPECT_TRUE(sink.store.count(Id("new")) == 0);
}

TEST(SlateCacheTest, FlushDirtyForFiltersUpdater) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(SlateId{"U1", "k"}, "v1", 100, false));
  ASSERT_OK(cache.Update(SlateId{"U2", "k"}, "v2", 100, false));
  EXPECT_EQ(cache.FlushDirtyFor("U1", INT64_MAX).value(), 1);
  EXPECT_EQ(sink.store.count(SlateId{"U1", "k"}), 1u);
  EXPECT_EQ(sink.store.count(SlateId{"U2", "k"}), 0u);
}

TEST(SlateCacheTest, LruEvictionWritesDirtyBack) {
  Sink sink;
  SlateCache cache({.capacity = 3}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(Id("a"), "va", 1, false));
  ASSERT_OK(cache.Update(Id("b"), "vb", 2, false));
  ASSERT_OK(cache.Update(Id("c"), "vc", 3, false));
  ASSERT_OK(cache.Update(Id("d"), "vd", 4, false));  // evicts "a"
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(sink.store.at(Id("a")), "va") << "dirty victim must be flushed";
  Bytes out;
  EXPECT_TRUE(cache.Lookup(Id("a"), &out).IsNotFound());
  ASSERT_OK(cache.Lookup(Id("d"), &out));
}

TEST(SlateCacheTest, LookupRefreshesRecency) {
  Sink sink;
  SlateCache cache({.capacity = 2}, sink.AsWriteBack());
  ASSERT_OK(cache.Insert(Id("a"), "va"));
  ASSERT_OK(cache.Insert(Id("b"), "vb"));
  Bytes out;
  ASSERT_OK(cache.Lookup(Id("a"), &out));  // "a" is now MRU
  ASSERT_OK(cache.Insert(Id("c"), "vc"));  // evicts "b"
  ASSERT_OK(cache.Lookup(Id("a"), &out));
  EXPECT_TRUE(cache.Lookup(Id("b"), &out).IsNotFound());
}

TEST(SlateCacheTest, DeleteWritesThroughAndCachesAbsence) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(Id("a"), "v", 1, false));
  ASSERT_OK(cache.Delete(Id("a")));
  EXPECT_EQ(sink.deletes.size(), 1u);
  Bytes out;
  bool absent = false;
  ASSERT_OK(cache.LookupWithAbsent(Id("a"), &out, &absent));
  EXPECT_TRUE(absent);
  EXPECT_TRUE(cache.Lookup(Id("a"), &out).IsNotFound());
}

TEST(SlateCacheTest, AbsentMarkerNegativeCache) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  cache.InsertAbsent(Id("ghost"));
  Bytes out;
  bool absent = false;
  ASSERT_OK(cache.LookupWithAbsent(Id("ghost"), &out, &absent));
  EXPECT_TRUE(absent);
  // An update overwrites the absent marker.
  ASSERT_OK(cache.Update(Id("ghost"), "now-real", 1, false));
  absent = false;
  ASSERT_OK(cache.LookupWithAbsent(Id("ghost"), &out, &absent));
  EXPECT_FALSE(absent);
  EXPECT_EQ(out, "now-real");
}

TEST(SlateCacheTest, InsertAbsentDoesNotClobberDirty) {
  Sink sink;
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(Id("a"), "dirty-value", 1, false));
  cache.InsertAbsent(Id("a"));  // racing store miss must not clobber
  Bytes out;
  ASSERT_OK(cache.Lookup(Id("a"), &out));
  EXPECT_EQ(out, "dirty-value");
}

TEST(SlateCacheTest, FailedWriteBackSurfacesOnFlush) {
  Sink sink;
  sink.fail_with = Status::Unavailable("store down");
  SlateCache cache({.capacity = 10}, sink.AsWriteBack());
  ASSERT_OK(cache.Update(Id("a"), "v", 1, false));
  auto flushed = cache.FlushDirty(INT64_MAX);
  EXPECT_FALSE(flushed.ok());
}

TEST(SlateCacheTest, CapacityOneWorks) {
  Sink sink;
  SlateCache cache({.capacity = 1}, sink.AsWriteBack());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(cache.Update(Id("k" + std::to_string(i)), "v", i, false));
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 19);
  // All evicted values reached the store.
  EXPECT_EQ(sink.store.size(), 19u);
}

}  // namespace
}  // namespace muppet
