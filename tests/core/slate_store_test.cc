#include "core/slate_store.h"

#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::TempDir;

kv::KvClusterOptions ClusterFor(const std::string& dir,
                                Clock* clock = nullptr) {
  kv::KvClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 2;
  options.node.data_dir = dir;
  options.node.clock = clock;
  return options;
}

TEST(SlateStoreTest, WriteReadRoundTrip) {
  TempDir dir;
  kv::KvCluster cluster(ClusterFor(dir.path()));
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});
  const SlateId id{"U1", "Walmart"};
  ASSERT_OK(store.Write(id, "{\"count\":7}", /*ttl=*/0));
  auto read = store.Read(id);
  ASSERT_OK(read);
  EXPECT_EQ(read.value(), "{\"count\":7}");
}

TEST(SlateStoreTest, CompressionTransparent) {
  TempDir dir;
  kv::KvCluster cluster(ClusterFor(dir.path()));
  ASSERT_OK(cluster.Open());
  SlateStoreOptions options;
  options.compress = true;
  SlateStore store(&cluster, options);
  // A large, repetitive slate: compression must round-trip it.
  Bytes big = "{";
  for (int i = 0; i < 500; ++i) {
    big += "\"field" + std::to_string(i) + "\":\"value value value\",";
  }
  big += "\"end\":true}";
  const SlateId id{"U1", "big"};
  ASSERT_OK(store.Write(id, big, 0));
  auto read = store.Read(id);
  ASSERT_OK(read);
  EXPECT_EQ(read.value(), big);
  // The stored bytes are actually smaller than the slate.
  auto raw = cluster.Get("slates", "big", "U1");
  ASSERT_OK(raw);
  EXPECT_LT(raw.value().value.size(), big.size() / 2);
}

TEST(SlateStoreTest, UncompressedMode) {
  TempDir dir;
  kv::KvCluster cluster(ClusterFor(dir.path()));
  ASSERT_OK(cluster.Open());
  SlateStoreOptions options;
  options.compress = false;
  SlateStore store(&cluster, options);
  const SlateId id{"U1", "k"};
  ASSERT_OK(store.Write(id, "plain", 0));
  auto raw = cluster.Get("slates", "k", "U1");
  ASSERT_OK(raw);
  EXPECT_EQ(raw.value().value, "plain");
  EXPECT_EQ(store.Read(id).value(), "plain");
}

TEST(SlateStoreTest, RowColumnLayoutMatchesPaper) {
  // "Muppet stores slate S(U,k) as a value at row k and column U" (§4.2).
  TempDir dir;
  kv::KvCluster cluster(ClusterFor(dir.path()));
  ASSERT_OK(cluster.Open());
  SlateStoreOptions options;
  options.compress = false;
  options.column_family = "myapp";
  SlateStore store(&cluster, options);
  ASSERT_OK(store.Write(SlateId{"U7", "key9"}, "s", 0));
  auto direct = cluster.Get("myapp", "key9", "U7");
  ASSERT_OK(direct);
  EXPECT_EQ(direct.value().value, "s");
}

TEST(SlateStoreTest, NotFoundForAbsent) {
  TempDir dir;
  kv::KvCluster cluster(ClusterFor(dir.path()));
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});
  EXPECT_TRUE(store.Read(SlateId{"U1", "ghost"}).status().IsNotFound());
}

TEST(SlateStoreTest, DeleteRemoves) {
  TempDir dir;
  kv::KvCluster cluster(ClusterFor(dir.path()));
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});
  const SlateId id{"U1", "k"};
  ASSERT_OK(store.Write(id, "v", 0));
  ASSERT_OK(store.Delete(id));
  EXPECT_TRUE(store.Read(id).status().IsNotFound());
}

TEST(SlateStoreTest, TtlGarbageCollection) {
  // "Slates that have not been updated (written) for longer than the TTL
  // value may be garbage-collected ... resetting to an empty slate" (§4.2).
  TempDir dir;
  SimulatedClock clock(1000000);
  kv::KvCluster cluster(ClusterFor(dir.path(), &clock));
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});
  const SlateId id{"U1", "active-user"};
  ASSERT_OK(store.Write(id, "state", /*ttl=*/1000));
  EXPECT_OK(store.Read(id).status());
  clock.Advance(500);
  // A rewrite renews the TTL.
  ASSERT_OK(store.Write(id, "state2", /*ttl=*/1000));
  clock.Advance(800);
  EXPECT_OK(store.Read(id).status());
  clock.Advance(300);
  EXPECT_TRUE(store.Read(id).status().IsNotFound());
}

TEST(SlateStoreTest, ReadRowReturnsAllUpdatersForKey) {
  TempDir dir;
  kv::KvCluster cluster(ClusterFor(dir.path()));
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});
  ASSERT_OK(store.Write(SlateId{"U1", "user1"}, "slate-u1", 0));
  ASSERT_OK(store.Write(SlateId{"U2", "user1"}, "slate-u2", 0));
  ASSERT_OK(store.Write(SlateId{"U1", "user2"}, "other", 0));
  ASSERT_OK(cluster.FlushAll());
  std::vector<std::pair<std::string, Bytes>> slates;
  ASSERT_OK(store.ReadRow("user1", &slates));
  ASSERT_EQ(slates.size(), 2u);
  EXPECT_EQ(slates[0].first, "U1");
  EXPECT_EQ(slates[0].second, "slate-u1");
  EXPECT_EQ(slates[1].first, "U2");
  EXPECT_EQ(slates[1].second, "slate-u2");
}

}  // namespace
}  // namespace muppet
