#include "core/slate.h"

#include <unordered_map>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(SlateIdTest, EncodeDecodeRoundTrip) {
  const SlateId cases[] = {
      {"U1", "user42"},
      {"", ""},
      {"updater with spaces", Bytes("\x00\x01", 2)},
      {"U", "key/with/slashes"},
  };
  for (const SlateId& id : cases) {
    const Bytes encoded = EncodeSlateId(id);
    SlateId decoded;
    ASSERT_OK(DecodeSlateId(encoded, &decoded));
    EXPECT_EQ(decoded, id);
  }
}

TEST(SlateIdTest, DistinctUpdatersSameKeyDistinctIds) {
  // "each pair <update U, key k> uniquely determines a slate" (§3).
  const SlateId a{"U1", "k"};
  const SlateId b{"U2", "k"};
  EXPECT_FALSE(a == b);
  EXPECT_NE(EncodeSlateId(a), EncodeSlateId(b));
}

TEST(SlateIdTest, NoEncodingCollisions) {
  // (updater="a", key="bc") must not collide with (updater="ab", key="c").
  EXPECT_NE(EncodeSlateId({"a", "bc"}), EncodeSlateId({"ab", "c"}));
}

TEST(SlateIdTest, OrderingAndHash) {
  const SlateId a{"U1", "a"}, b{"U1", "b"}, c{"U2", "a"};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  SlateIdHash hasher;
  EXPECT_EQ(hasher(a), hasher(SlateId{"U1", "a"}));
  std::unordered_map<SlateId, int, SlateIdHash> map;
  map[a] = 1;
  map[c] = 2;
  EXPECT_EQ(map.at(SlateId{"U1", "a"}), 1);
  EXPECT_EQ(map.at(SlateId{"U2", "a"}), 2);
}

TEST(SlateIdTest, MalformedDecodeRejected) {
  SlateId id;
  EXPECT_FALSE(DecodeSlateId("", &id).ok());
}

TEST(JsonSlateTest, NullptrIsFreshObject) {
  JsonSlate s(nullptr);
  EXPECT_TRUE(s.fresh());
  EXPECT_TRUE(s.data().is_object());
  EXPECT_EQ(s.data().GetInt("count"), 0);
}

TEST(JsonSlateTest, EmptyBytesIsFresh) {
  Bytes empty;
  JsonSlate s(&empty);
  EXPECT_TRUE(s.fresh());
}

TEST(JsonSlateTest, ParsesExistingState) {
  Bytes prior = "{\"count\":41,\"name\":\"x\"}";
  JsonSlate s(&prior);
  EXPECT_FALSE(s.fresh());
  EXPECT_EQ(s.data().GetInt("count"), 41);
  s.data()["count"] = s.data().GetInt("count") + 1;
  const Bytes serialized = s.Serialize();
  JsonSlate reparsed(&serialized);
  EXPECT_EQ(reparsed.data().GetInt("count"), 42);
  EXPECT_EQ(reparsed.data().GetString("name"), "x");
}

TEST(JsonSlateTest, CorruptBytesResetToFresh) {
  Bytes garbage = "not json {{{";
  JsonSlate s(&garbage);
  EXPECT_TRUE(s.fresh());
  EXPECT_TRUE(s.data().is_object());
}

TEST(JsonSlateTest, UpdateCycleMatchesPaperCounterExample) {
  // The Appendix A Counter written against JsonSlate: parse, increment,
  // replace — repeated over many events.
  Bytes slate;
  const Bytes* current = nullptr;
  for (int i = 0; i < 100; ++i) {
    JsonSlate s(current);
    s.data()["count"] = s.data().GetInt("count") + 1;
    slate = s.Serialize();
    current = &slate;
  }
  JsonSlate final_state(current);
  EXPECT_EQ(final_state.data().GetInt("count"), 100);
}

}  // namespace
}  // namespace muppet
