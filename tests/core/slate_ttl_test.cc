// Slate TTL garbage collection under a simulated clock (§4.2 "Flushing,
// Quorum, and Time-to-Live Parameters"): expiry lands exactly at the TTL
// boundary, compaction drops expired versions, and GC racing a concurrent
// updater never loses the newest write.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/slate_store.h"
#include "gtest/gtest.h"
#include "kvstore/cluster.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::TempDir;

constexpr Timestamp kTtl = 1000;

struct TtlFixture {
  explicit TtlFixture(int nodes = 1) {
    kv::KvClusterOptions options;
    options.num_nodes = nodes;
    options.replication_factor = nodes;
    options.node.data_dir = dir.path();
    options.node.clock = &clock;
    cluster = std::make_unique<kv::KvCluster>(options);
    EXPECT_OK(cluster->Open());
    store = std::make_unique<SlateStore>(cluster.get(), SlateStoreOptions{});
  }

  TempDir dir;
  SimulatedClock clock{0};
  std::unique_ptr<kv::KvCluster> cluster;
  std::unique_ptr<SlateStore> store;
};

TEST(SlateTtlTest, ExpiresExactlyAtTheTtlBoundary) {
  TtlFixture f;
  const SlateId id{"count", "k1"};
  ASSERT_OK(f.store->Write(id, "v1", kTtl));

  f.clock.Set(kTtl - 1);
  Result<Bytes> r = f.store->Read(id);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "v1");

  // expire_at = write_ts + ttl and expiry is `now >= expire_at`: the slate
  // is gone at exactly t = kTtl, not one microsecond later.
  f.clock.Set(kTtl);
  EXPECT_TRUE(f.store->Read(id).status().IsNotFound());
}

TEST(SlateTtlTest, ZeroTtlLivesForever) {
  TtlFixture f;
  const SlateId id{"count", "k1"};
  ASSERT_OK(f.store->Write(id, "v1", /*ttl_micros=*/0));
  f.clock.Set(kTtl * 1000000);
  Result<Bytes> r = f.store->Read(id);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "v1");
}

TEST(SlateTtlTest, RewriteAfterExpiryStartsAFreshTtlWindow) {
  TtlFixture f;
  const SlateId id{"count", "k1"};
  ASSERT_OK(f.store->Write(id, "v1", kTtl));
  f.clock.Set(kTtl);
  ASSERT_TRUE(f.store->Read(id).status().IsNotFound());

  // The updater re-initializes (sees nullptr) and writes a fresh slate;
  // its window is anchored at the new write time.
  ASSERT_OK(f.store->Write(id, "v2", kTtl));
  f.clock.Set(2 * kTtl - 1);
  Result<Bytes> r = f.store->Read(id);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "v2");
  f.clock.Set(2 * kTtl);
  EXPECT_TRUE(f.store->Read(id).status().IsNotFound());
}

TEST(SlateTtlTest, CompactionDropsExpiredVersionsButKeepsLiveOnes) {
  TtlFixture f;
  ASSERT_OK(f.store->Write({"count", "old"}, "dead", kTtl));
  ASSERT_OK(f.store->Write({"count", "keep"}, "alive", /*ttl_micros=*/0));

  auto shard = f.cluster->node(0)->GetColumnFamily("slates");
  ASSERT_OK(shard);
  ASSERT_OK(shard.value()->Flush());

  f.clock.Set(kTtl);  // "old" is expired, "keep" is not
  ASSERT_OK(shard.value()->CompactAll());

  // GetRaw sees through tombstone/expiry filtering: after compaction the
  // expired version is physically gone, not just hidden.
  EXPECT_TRUE(shard.value()->GetRaw("old", "count").status().IsNotFound());
  Result<Bytes> keep = f.store->Read({"count", "keep"});
  ASSERT_OK(keep);
  EXPECT_EQ(keep.value(), "alive");
}

TEST(SlateTtlTest, GcRacingConcurrentUpdateKeepsNewestWrite) {
  TtlFixture f;
  const SlateId id{"count", "hot"};
  ASSERT_OK(f.store->Write(id, "seed", kTtl));

  auto shard = f.cluster->node(0)->GetColumnFamily("slates");
  ASSERT_OK(shard);

  // Writer thread keeps updating the slate (fresh TTL each time) while the
  // main thread advances the clock and runs flush+compaction GC cycles —
  // the compactor must never resurrect an old version or drop the newest.
  std::atomic<bool> stop{false};
  std::atomic<int> last_written{0};
  std::thread writer([&]() {
    for (int i = 1; i <= 200; ++i) {
      const std::string value = "v" + std::to_string(i);
      if (!f.store->Write(id, value, kTtl).ok()) break;
      last_written.store(i, std::memory_order_release);
    }
    stop.store(true, std::memory_order_release);
  });

  while (!stop.load(std::memory_order_acquire)) {
    f.clock.Advance(1);  // keeps every write inside its TTL window
    (void)shard.value()->Flush();
    (void)shard.value()->CompactAll();
  }
  writer.join();

  const int last = last_written.load(std::memory_order_acquire);
  ASSERT_GT(last, 0);
  Result<Bytes> r = f.store->Read(id);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "v" + std::to_string(last));

  // And once time passes the final write's TTL, GC takes it too.
  f.clock.Set(f.clock.Now() + kTtl);
  (void)shard.value()->Flush();
  ASSERT_OK(shard.value()->CompactAll());
  EXPECT_TRUE(f.store->Read(id).status().IsNotFound());
}

}  // namespace
}  // namespace muppet
