#include "core/topology.h"

#include <memory>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

MapperFactory NoopMapper() {
  return MakeMapperFactory([](PerformerUtilities&, const Event&) {});
}

UpdaterFactory NoopUpdater() {
  return MakeUpdaterFactory(
      [](PerformerUtilities&, const Event&, const Bytes*) {});
}

TEST(TopologyTest, ValidWorkflowValidates) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  ASSERT_OK(config.DeclareStream("S2"));
  ASSERT_OK(config.AddMapper("M1", NoopMapper(), {"S1"}));
  ASSERT_OK(config.AddUpdater("U1", NoopUpdater(), {"S2"}));
  EXPECT_OK(config.Validate());
}

TEST(TopologyTest, DuplicateStreamRejected) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  EXPECT_EQ(config.DeclareStream("S1").code(), StatusCode::kAlreadyExists);
}

TEST(TopologyTest, DuplicateOperatorRejected) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  ASSERT_OK(config.AddMapper("M1", NoopMapper(), {"S1"}));
  EXPECT_EQ(config.AddMapper("M1", NoopMapper(), {"S1"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(config.AddUpdater("M1", NoopUpdater(), {"S1"}).code(),
            StatusCode::kAlreadyExists);
}

TEST(TopologyTest, UndeclaredSubscriptionFailsValidation) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  ASSERT_OK(config.AddMapper("M1", NoopMapper(), {"S1", "missing"}));
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TopologyTest, NoOperatorsFailsValidation) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TopologyTest, NoInputStreamFailsValidation) {
  AppConfig config;
  ASSERT_OK(config.DeclareStream("S2"));
  ASSERT_OK(config.AddMapper("M1", NoopMapper(), {"S2"}));
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TopologyTest, EmptySubscriptionsFailValidation) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  ASSERT_OK(config.AddMapper("M1", NoopMapper(), {}));
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TopologyTest, NullFactoryRejected) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  EXPECT_FALSE(config.AddMapper("M1", nullptr, {"S1"}).ok());
  EXPECT_FALSE(config.AddUpdater("U1", nullptr, {"S1"}).ok());
}

TEST(TopologyTest, SubscribersSortedAndComplete) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  ASSERT_OK(config.AddMapper("Mz", NoopMapper(), {"S1"}));
  ASSERT_OK(config.AddMapper("Ma", NoopMapper(), {"S1"}));
  ASSERT_OK(config.AddUpdater("Um", NoopUpdater(), {"S1"}));
  const auto subs = config.SubscribersOf("S1");
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], "Ma");
  EXPECT_EQ(subs[1], "Mz");
  EXPECT_EQ(subs[2], "Um");
  EXPECT_TRUE(config.SubscribersOf("nope").empty());
}

TEST(TopologyTest, StreamClassification) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("mid"));
  EXPECT_TRUE(config.HasStream("in"));
  EXPECT_TRUE(config.HasStream("mid"));
  EXPECT_FALSE(config.HasStream("out"));
  EXPECT_TRUE(config.IsInputStream("in"));
  EXPECT_FALSE(config.IsInputStream("mid"));
  EXPECT_EQ(config.InputStreams().size(), 1u);
  EXPECT_EQ(config.AllStreams().size(), 2u);
}

TEST(TopologyTest, FindOperatorAndOptions) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  UpdaterOptions options;
  options.slate_ttl_micros = 5000;
  options.flush_policy = SlateFlushPolicy::kWriteThrough;
  ASSERT_OK(config.AddUpdater("U1", NoopUpdater(), {"S1"}, options));
  const OperatorSpec* spec = config.FindOperator("U1");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->kind, OperatorKind::kUpdater);
  EXPECT_EQ(spec->updater_options.slate_ttl_micros, 5000);
  EXPECT_EQ(spec->updater_options.flush_policy,
            SlateFlushPolicy::kWriteThrough);
  EXPECT_EQ(config.FindOperator("nope"), nullptr);
}

TEST(TopologyTest, SettingsAccessibleToFactories) {
  AppConfig config;
  config.settings()["threshold"] = 7;
  ASSERT_OK(config.DeclareInputStream("S1"));
  int64_t seen = 0;
  ASSERT_OK(config.AddMapper(
      "M1",
      [&seen](const AppConfig& cfg, const std::string& name) {
        seen = cfg.settings().GetInt("threshold");
        return std::make_unique<LambdaMapper>(
            name, [](PerformerUtilities&, const Event&) {});
      },
      {"S1"}));
  const OperatorSpec* spec = config.FindOperator("M1");
  auto mapper = spec->mapper_factory(config, "M1");
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(mapper->GetName(), "M1");
}

TEST(TopologyTest, CyclicWorkflowAllowed) {
  // An updater that subscribes to a stream it also publishes into (the
  // reputation app shape) must validate.
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("S1"));
  ASSERT_OK(config.DeclareStream("loop"));
  ASSERT_OK(config.AddUpdater("U1", NoopUpdater(), {"S1", "loop"}));
  EXPECT_OK(config.Validate());
}

TEST(TopologyTest, SlateColumnFamilyConfigurable) {
  AppConfig config;
  EXPECT_EQ(config.slate_column_family(), "slates");
  config.set_slate_column_family("myapp");
  EXPECT_EQ(config.slate_column_family(), "myapp");
}

}  // namespace
}  // namespace muppet
