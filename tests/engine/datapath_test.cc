// Tests for the zero-copy intra-machine datapath: local fast-path
// delivery semantics (same results as the wire path and the reference
// executor) and the two-choice ownership invariant that replaced the
// machine-wide dispatch lock.
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "core/reference_executor.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::BuildFanoutApp;
using ::muppet::testing::CountOf;

EngineOptions Shape(int machines, int threads) {
  EngineOptions options;
  options.num_machines = machines;
  options.threads_per_machine = threads;
  options.queue_capacity = 4096;
  return options;
}

constexpr int kEvents = 400;
constexpr int kKeys = 16;

std::string KeyOf(int i) { return "key" + std::to_string(i % kKeys); }

// Drive the same counting workload through an engine and return the final
// slate bytes per key.
std::map<std::string, Bytes> RunCountingWorkload(Muppet2Engine* engine) {
  std::map<std::string, Bytes> slates;
  EXPECT_OK(engine->Start());
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_OK(engine->Publish("in", KeyOf(i), "v", i + 1));
  }
  EXPECT_OK(engine->Drain());
  for (int k = 0; k < kKeys; ++k) {
    Result<Bytes> slate = engine->FetchSlate("count", KeyOf(k));
    EXPECT_OK(slate.status());
    if (slate.ok()) slates[KeyOf(k)] = slate.value();
  }
  EXPECT_OK(engine->Stop());
  return slates;
}

TEST(DatapathTest, LocalFastPathMatchesWirePathByteForByte) {
  // Single machine: every hop is a same-machine delivery and must take the
  // zero-serialization fast path. Four machines: most hops cross machines
  // and travel as encoded batch frames. Both must produce byte-identical
  // slates.
  AppConfig local_config;
  BuildCountingApp(&local_config);
  Muppet2Engine local(local_config, Shape(1, 4));
  const std::map<std::string, Bytes> local_slates =
      RunCountingWorkload(&local);
  EXPECT_GT(local.local_fast_path_deliveries(), 0)
      << "single-machine deliveries must use the local fast path";
  EXPECT_EQ(local.transport().frames_sent(), 0)
      << "nothing should be serialized within one machine";

  AppConfig wire_config;
  BuildCountingApp(&wire_config);
  Muppet2Engine wire(wire_config, Shape(4, 2));
  const std::map<std::string, Bytes> wire_slates = RunCountingWorkload(&wire);
  EXPECT_GT(wire.transport().frames_sent(), 0)
      << "a 4-machine cluster must exercise the wire path";

  ASSERT_EQ(local_slates.size(), static_cast<size_t>(kKeys));
  EXPECT_EQ(local_slates, wire_slates);
}

TEST(DatapathTest, LocalFastPathMatchesReferenceExecutor) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, Shape(1, 4));
  const std::map<std::string, Bytes> engine_slates =
      RunCountingWorkload(&engine);

  AppConfig ref_config;
  BuildCountingApp(&ref_config);
  ReferenceExecutor reference(ref_config);
  ASSERT_OK(reference.Start());
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_OK(reference.Publish("in", KeyOf(i), "v", i + 1));
  }
  ASSERT_OK(reference.Run());

  ASSERT_EQ(reference.slates().size(), static_cast<size_t>(kKeys));
  for (const auto& [id, slate] : reference.slates()) {
    auto it = engine_slates.find(id.key);
    ASSERT_NE(it, engine_slates.end()) << "missing slate for " << id.key;
    EXPECT_EQ(it->second, slate) << "slate for " << id.key
                                 << " differs from reference semantics";
  }
}

TEST(DatapathTest, FanoutPipelineStaysLocalOnOneMachine) {
  AppConfig config;
  BuildFanoutApp(&config);
  Muppet2Engine engine(config, Shape(1, 4));
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "k"), 200);
  // publish->split (100) plus split->count (200) — all local, none framed.
  EXPECT_EQ(engine.local_fast_path_deliveries(), 300);
  EXPECT_EQ(engine.transport().frames_sent(), 0);
  ASSERT_OK(engine.Stop());
}

TEST(DatapathTest, WorkHashComputedOncePerEvent) {
  // The interned datapath carries the cached work hash with the event, so
  // the per-thread `current` marker a worker publishes while processing
  // must equal the hash dispatch used — covered transitively by the
  // two-choice test below — and cross-machine frames must carry it too:
  // an id-addressed frame round-trip preserves counts exactly.
  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, Shape(3, 2));
  ASSERT_OK(engine.Start());
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_OK(engine.Publish("in", KeyOf(i), "v", i + 1));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(CountOf(engine, "count", KeyOf(k)), kEvents / kKeys);
  }
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.events_processed, kEvents);
  EXPECT_EQ(stats.events_lost_failure, 0);
  ASSERT_OK(engine.Stop());
}

TEST(DatapathTest, TwoChoiceOwnershipInvariantWithoutDispatchLock) {
  // §4.5: for any (function, key), events may land on at most two queues —
  // the primary and secondary hash choices — so at most two distinct
  // threads ever process that work unit. The machine-wide dispatch lock is
  // gone; the invariant must hold purely from deterministic placement.
  AppConfig config;
  Mutex mu{LockLevel::kUnordered};
  std::map<std::string, std::set<std::thread::id>> owners;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.AddUpdater(
      "own",
      MakeUpdaterFactory([&mu, &owners](PerformerUtilities& out,
                                        const Event& e, const Bytes* slate) {
        {
          MutexLock lock(mu);
          owners[Bytes(e.key)].insert(std::this_thread::get_id());
        }
        JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
      }),
      {"in"}));

  EngineOptions options = Shape(1, 8);
  options.enable_two_choice = true;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 4), "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < 4; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(CountOf(engine, "own", key), kN / 4);
    MutexLock lock(mu);
    EXPECT_LE(owners[key].size(), 2u)
        << "work unit " << key << " was processed by more than two threads";
  }
  ASSERT_OK(engine.Stop());
}

TEST(DatapathTest, DrainWakesPromptlyOnSimulatedClock) {
  // Drain() must not busy-spin on the wall clock nor sleep on an injected
  // simulated clock (which would advance logical time, not wait): with a
  // simulated clock installed, a drain over completed work returns with
  // the clock untouched.
  SimulatedClock clock;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options = Shape(1, 2);
  options.clock = &clock;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "k"), 50);
  ASSERT_OK(engine.Stop());
}

}  // namespace
}  // namespace muppet
