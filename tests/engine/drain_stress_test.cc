// Stress tests for the Drain()/DecInflight condvar protocol under the
// annotated lock discipline (ISSUE 2): concurrent publishers race repeated
// drainers, with the lock-order checker enforcing the global hierarchy the
// whole time. A missed wakeup hangs the test (gtest/ctest timeout); an
// inversion anywhere on the publish/dispatch/process/flush path aborts via
// the default lock-order handler.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/clock.h"
#include "common/sync.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::CountOf;

TEST(DrainStressTest, ConcurrentPublishersAndDrainersMuppet2) {
  ScopedLockOrderEnforcement enforce;
  SimulatedClock clock;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 3;
  options.queue_capacity = 256;
  options.clock = &clock;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());

  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 500;
  std::atomic<int> published{0};
  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        const std::string key = "k" + std::to_string((p * 7 + i) % 16);
        if (engine.Publish("in", key, "", i + 1).ok()) {
          published.fetch_add(1);
        }
      }
    });
  }
  // Drain repeatedly while publishers are still pumping: every call must
  // return (drain means "no in-flight events at this instant", and
  // in-flight provably hits zero between publisher batches).
  std::thread drainer([&] {
    for (int i = 0; i < 50; ++i) ASSERT_OK(engine.Drain());
  });
  for (auto& t : publishers) t.join();
  drainer.join();

  // Final drain with no publishers left: every accepted event must be
  // processed or accounted as an overflow drop — none may be stranded in
  // the inflight count (which would hang this Drain() forever).
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(published.load(), kPublishers * kPerPublisher);
  // CountOf returns -1 for a slate that was never created (a key whose
  // events were all dropped by overflow); clamp those to zero.
  int64_t total = 0;
  for (int k = 0; k < 16; ++k) {
    total += std::max<int64_t>(0, CountOf(engine, "count", "k" + std::to_string(k)));
  }
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(total + stats.events_dropped_overflow + stats.events_lost_failure,
            published.load());
  ASSERT_OK(engine.Stop());
}

TEST(DrainStressTest, DrainUnderOverflowBackpressure) {
  // Tiny queues force the overflow path (redirect + DecInflight on drop),
  // the historical home of lost-decrement hangs: if any path forgets its
  // decrement, the final Drain() never returns.
  ScopedLockOrderEnforcement enforce;
  SimulatedClock clock;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.queue_capacity = 4;  // overflow constantly
  options.clock = &clock;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());

  std::atomic<int> accepted{0};
  std::vector<std::thread> publishers;
  for (int p = 0; p < 3; ++p) {
    publishers.emplace_back([&, p] {
      for (int i = 0; i < 300; ++i) {
        if (engine.Publish("in", "k" + std::to_string(p), "", i + 1).ok()) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : publishers) t.join();
  ASSERT_OK(engine.Drain());
  int64_t total = 0;
  for (int p = 0; p < 3; ++p) {
    total += std::max<int64_t>(0, CountOf(engine, "count", "k" + std::to_string(p)));
  }
  const EngineStats stats = engine.Stats();
  // Accepted events either processed or accounted as overflow-dropped /
  // failure-lost; none may be stranded in the inflight count.
  EXPECT_EQ(total + stats.events_dropped_overflow + stats.events_lost_failure,
            accepted.load());
  ASSERT_OK(engine.Stop());
}

TEST(DrainStressTest, ConcurrentPublishersAndDrainersMuppet1) {
  ScopedLockOrderEnforcement enforce;
  SimulatedClock clock;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.queue_capacity = 256;
  options.clock = &clock;
  Muppet1Engine engine(config, options);
  ASSERT_OK(engine.Start());

  constexpr int kPublishers = 3;
  constexpr int kPerPublisher = 300;
  std::atomic<int> published{0};
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        const std::string key = "k" + std::to_string((p + i) % 8);
        if (engine.Publish("in", key, "", i + 1).ok()) {
          published.fetch_add(1);
        }
      }
    });
  }
  std::thread drainer([&] {
    for (int i = 0; i < 30; ++i) ASSERT_OK(engine.Drain());
  });
  for (auto& t : publishers) t.join();
  drainer.join();
  ASSERT_OK(engine.Drain());
  int64_t total = 0;
  for (int k = 0; k < 8; ++k) {
    total += std::max<int64_t>(0, CountOf(engine, "count", "k" + std::to_string(k)));
  }
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(total + stats.events_dropped_overflow + stats.events_lost_failure,
            published.load());
  ASSERT_OK(engine.Stop());
}

}  // namespace
}  // namespace muppet
