// Engine API contract tests shared by both generations: PublishAt
// semantics, sink streams, stats monotonicity, and lifecycle edges.
#include <atomic>
#include <memory>
#include <string>

#include "apps/reputation.h"
#include "common/rng.h"
#include "core/reference_executor.h"
#include "core/slate.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;

enum class EngineKind { kMuppet1, kMuppet2 };

std::unique_ptr<Engine> MakeEngine(EngineKind kind, const AppConfig& config,
                                   const EngineOptions& options) {
  if (kind == EngineKind::kMuppet1) {
    return std::make_unique<Muppet1Engine>(config, options);
  }
  return std::make_unique<Muppet2Engine>(config, options);
}

class EngineApiTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineApiTest, PublishAtValidatesTimestamps) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("out"));
  Status bad_ts, equal_ts, good_ts;
  ASSERT_OK(config.AddMapper(
      "M1",
      MakeMapperFactory([&](PerformerUtilities& out, const Event& e) {
        bad_ts = out.PublishAt("out", e.key, "", e.ts - 1);
        equal_ts = out.PublishAt("out", e.key, "", e.ts);
        good_ts = out.PublishAt("out", e.key, "", e.ts + 500);
      }),
      {"in"}));
  EngineOptions options;
  auto engine = MakeEngine(GetParam(), config, options);
  std::atomic<Timestamp> out_ts{0};
  if (GetParam() == EngineKind::kMuppet1) {
    static_cast<Muppet1Engine*>(engine.get())
        ->TapStream("out",
                    [&out_ts](const Event& e) { out_ts.store(e.ts); });
  } else {
    static_cast<Muppet2Engine*>(engine.get())
        ->TapStream("out",
                    [&out_ts](const Event& e) { out_ts.store(e.ts); });
  }
  ASSERT_OK(engine->Start());
  ASSERT_OK(engine->Publish("in", "k", "", 1000));
  ASSERT_OK(engine->Drain());
  EXPECT_FALSE(bad_ts.ok()) << "ts < input.ts must be rejected";
  EXPECT_FALSE(equal_ts.ok()) << "ts == input.ts must be rejected";
  EXPECT_OK(good_ts);
  EXPECT_EQ(out_ts.load(), 1500) << "explicit timestamps pass through";
  ASSERT_OK(engine->Stop());
}

TEST_P(EngineApiTest, SinkStreamEventsAreObservableAndCounted) {
  // A declared stream with no subscribers is a sink: events reach taps
  // and count as emitted, but no operator runs.
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("sink"));
  ASSERT_OK(config.AddMapper(
      "M1", MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        (void)out.Publish("sink", e.key, e.value);
      }),
      {"in"}));
  EngineOptions options;
  auto engine = MakeEngine(GetParam(), config, options);
  std::atomic<int> sink_events{0};
  if (GetParam() == EngineKind::kMuppet1) {
    static_cast<Muppet1Engine*>(engine.get())
        ->TapStream("sink",
                    [&sink_events](const Event&) { sink_events++; });
  } else {
    static_cast<Muppet2Engine*>(engine.get())
        ->TapStream("sink",
                    [&sink_events](const Event&) { sink_events++; });
  }
  ASSERT_OK(engine->Start());
  for (int i = 0; i < 20; ++i) ASSERT_OK(engine->Publish("in", "k", "", i + 1));
  ASSERT_OK(engine->Drain());
  EXPECT_EQ(sink_events.load(), 20);
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.events_emitted, 20);
  EXPECT_EQ(stats.events_processed, 20) << "only the mapper runs";
  ASSERT_OK(engine->Stop());
}

TEST_P(EngineApiTest, LifecycleEdges) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  auto engine = MakeEngine(GetParam(), config, options);
  // Not started yet.
  EXPECT_FALSE(engine->Publish("in", "k", "", 1).ok());
  EXPECT_FALSE(engine->Drain().ok());
  EXPECT_FALSE(engine->FetchSlate("count", "k").ok());
  ASSERT_OK(engine->Start());
  EXPECT_FALSE(engine->Start().ok()) << "double start";
  ASSERT_OK(engine->Publish("in", "k", "", 1));
  ASSERT_OK(engine->Drain());
  ASSERT_OK(engine->Stop());
  EXPECT_FALSE(engine->Publish("in", "k", "", 2).ok()) << "after stop";
}

TEST_P(EngineApiTest, ReputationLockstepMatchesReferenceScores) {
  // The reputation app is order-sensitive (a mention carries the sender's
  // *current* score); in lockstep the engines must match the reference
  // executor's scores bit-for-bit.
  std::vector<std::pair<Bytes, Bytes>> tweets;
  Rng rng(77);
  for (int i = 0; i < 150; ++i) {
    const Bytes user = "u" + std::to_string(rng.Uniform(8));
    Json t = Json::MakeObject();
    t["user"] = std::string(user);
    if (rng.Chance(0.4)) {
      t["retweet_of"] = "u" + std::to_string(rng.Uniform(8));
    }
    tweets.emplace_back(user, t.Dump());
  }

  AppConfig ref_config;
  ASSERT_OK(apps::BuildReputationApp(&ref_config));
  ReferenceExecutor reference(ref_config);
  ASSERT_OK(reference.Start());
  for (size_t i = 0; i < tweets.size(); ++i) {
    ASSERT_OK(reference.Publish("S1", tweets[i].first, tweets[i].second,
                                static_cast<Timestamp>(10 * (i + 1))));
  }
  ASSERT_OK(reference.Run());

  AppConfig config;
  ASSERT_OK(apps::BuildReputationApp(&config));
  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.threads_per_machine = 2;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  for (size_t i = 0; i < tweets.size(); ++i) {
    ASSERT_OK(engine->Publish("S1", tweets[i].first, tweets[i].second,
                              static_cast<Timestamp>(10 * (i + 1))));
    ASSERT_OK(engine->Drain());  // lockstep
  }
  for (int u = 0; u < 8; ++u) {
    const std::string user = "u" + std::to_string(u);
    const auto it = reference.slates().find(SlateId{"U1", user});
    Result<Bytes> engine_slate = engine->FetchSlate("U1", user);
    if (it == reference.slates().end()) {
      EXPECT_FALSE(engine_slate.ok()) << user;
      continue;
    }
    ASSERT_OK(engine_slate);
    EXPECT_DOUBLE_EQ(apps::ReputationUpdater::ScoreOf(engine_slate.value()),
                     apps::ReputationUpdater::ScoreOf(it->second))
        << user;
  }
  ASSERT_OK(engine->Stop());
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineApiTest,
                         ::testing::Values(EngineKind::kMuppet1,
                                           EngineKind::kMuppet2),
                         [](const auto& info) {
                           return info.param == EngineKind::kMuppet1
                                      ? "Muppet1"
                                      : "Muppet2";
                         });

}  // namespace
}  // namespace muppet
