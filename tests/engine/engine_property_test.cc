// Engine-invariant property sweeps across the cluster-shape grid, for both
// Muppet generations:
//   * accounting: published == processed + dropped + lost (no event
//     silently vanishes or duplicates);
//   * conservation: per-key slate counts sum to the processed total;
//   * routing: all events of one key land in exactly one slate.
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "core/slate.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::BuildFanoutApp;
using ::muppet::testing::CountOf;

// (muppet2?, machines, workers/threads, zipf skew)
using ShapeParams = std::tuple<bool, int, int, double>;

class EngineShapeTest : public ::testing::TestWithParam<ShapeParams> {
 protected:
  std::unique_ptr<Engine> MakeEngine(const AppConfig& config) {
    const auto [muppet2, machines, width, skew] = GetParam();
    EngineOptions options;
    options.num_machines = machines;
    options.workers_per_function = width;
    options.threads_per_machine = width;
    options.queue_capacity = 1 << 15;
    if (muppet2) {
      return std::make_unique<Muppet2Engine>(config, options);
    }
    return std::make_unique<Muppet1Engine>(config, options);
  }
};

TEST_P(EngineShapeTest, CountingConservation) {
  const auto [muppet2, machines, width, skew] = GetParam();
  AppConfig config;
  BuildCountingApp(&config);
  auto engine = MakeEngine(config);
  ASSERT_OK(engine->Start());

  constexpr int kEvents = 4000;
  constexpr int kKeys = 64;
  workload::ZipfKeyGenerator keys(kKeys, skew, "k", 7);
  std::map<Bytes, int64_t> truth;
  for (int i = 0; i < kEvents; ++i) {
    const Bytes key = keys.Next();
    ++truth[key];
    ASSERT_OK(engine->Publish("in", key, "", i + 1));
  }
  ASSERT_OK(engine->Drain());

  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.events_published, kEvents);
  EXPECT_EQ(stats.events_processed + stats.events_dropped_overflow +
                stats.events_lost_failure,
            kEvents)
      << "every event must be processed or accounted as shed";
  EXPECT_EQ(stats.events_lost_failure, 0);
  EXPECT_EQ(stats.events_dropped_overflow, 0);

  int64_t slate_total = 0;
  for (const auto& [key, expected] : truth) {
    const int64_t count = CountOf(*engine, "count", std::string(key));
    EXPECT_EQ(count, expected) << "key " << key;
    slate_total += count;
  }
  EXPECT_EQ(slate_total, kEvents);
  ASSERT_OK(engine->Stop());
}

TEST_P(EngineShapeTest, FanoutConservation) {
  AppConfig config;
  BuildFanoutApp(&config);
  auto engine = MakeEngine(config);
  ASSERT_OK(engine->Start());
  constexpr int kEvents = 1500;
  workload::ZipfKeyGenerator keys(32, std::get<3>(GetParam()), "k", 3);
  std::map<Bytes, int64_t> truth;
  for (int i = 0; i < kEvents; ++i) {
    const Bytes key = keys.Next();
    truth[key] += 2;  // the mapper doubles
    ASSERT_OK(engine->Publish("in", key, "", i + 1));
  }
  ASSERT_OK(engine->Drain());
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.events_emitted, 2 * kEvents);
  // map calls + update calls
  EXPECT_EQ(stats.events_processed, kEvents + 2 * kEvents);
  for (const auto& [key, expected] : truth) {
    EXPECT_EQ(CountOf(*engine, "count", std::string(key)), expected);
  }
  ASSERT_OK(engine->Stop());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineShapeTest,
    ::testing::Combine(::testing::Bool(),          // engine generation
                       ::testing::Values(1, 3),    // machines
                       ::testing::Values(1, 4),    // workers / threads
                       ::testing::Values(0.0, 1.2)),  // key skew
    [](const ::testing::TestParamInfo<ShapeParams>& info) {
      return std::string(std::get<0>(info.param) ? "M2" : "M1") + "_m" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) > 0 ? "_zipf" : "_uniform");
    });

}  // namespace
}  // namespace muppet
