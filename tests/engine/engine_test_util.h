// Shared helpers for engine tests: small deterministic applications and
// slate decoding shortcuts.
#ifndef MUPPET_TESTS_ENGINE_ENGINE_TEST_UTIL_H_
#define MUPPET_TESTS_ENGINE_ENGINE_TEST_UTIL_H_

#include <string>

#include "core/slate.h"
#include "core/topology.h"
#include "engine/engine.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace muppet {
namespace testing {

// input "in" -> updater "count" that counts events per key in a JSON
// slate, optionally forwarding each event to stream "out".
inline void BuildCountingApp(AppConfig* config, bool forward = false,
                             UpdaterOptions options = {}) {
  ASSERT_OK(config->DeclareInputStream("in"));
  if (forward) ASSERT_OK(config->DeclareStream("out"));
  ASSERT_OK(config->AddUpdater(
      "count",
      MakeUpdaterFactory([forward](PerformerUtilities& out, const Event& e,
                                   const Bytes* slate) {
        JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
        if (forward) (void)out.Publish("out", e.key, e.value);
      }),
      {"in"}, options));
}

// input "in" -> mapper "split" (fans each event out to "mid" twice)
// -> updater "count".
inline void BuildFanoutApp(AppConfig* config) {
  ASSERT_OK(config->DeclareInputStream("in"));
  ASSERT_OK(config->DeclareStream("mid"));
  ASSERT_OK(config->AddMapper(
      "split",
      MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        (void)out.Publish("mid", e.key, e.value);
        (void)out.Publish("mid", e.key, e.value);
      }),
      {"in"}));
  ASSERT_OK(config->AddUpdater(
      "count",
      MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                            const Bytes* slate) {
        JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
      }),
      {"mid"}));
}

// Read the "count" field of a counting-updater slate via the engine's
// live fetch path; returns -1 when the slate does not exist.
inline int64_t CountOf(Engine& engine, const std::string& updater,
                       const std::string& key) {
  Result<Bytes> slate = engine.FetchSlate(updater, key);
  if (!slate.ok()) return -1;
  JsonSlate s(&slate.value());
  return s.data().GetInt("count", -1);
}

}  // namespace testing
}  // namespace muppet

#endif  // MUPPET_TESTS_ENGINE_ENGINE_TEST_UTIL_H_
