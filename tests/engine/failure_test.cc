// Machine-crash handling (§4.3): failure detected on send, reported to the
// master, broadcast, rerouted by the shared hash ring; queued events and
// unflushed slates are lost; flushed slates survive in the store.
#include <memory>
#include <string>

#include "core/slate_store.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "kvstore/cluster.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::CountOf;
using ::muppet::testing::TempDir;

enum class EngineKind { kMuppet1, kMuppet2 };

std::unique_ptr<Engine> MakeEngine(EngineKind kind, const AppConfig& config,
                                   const EngineOptions& options) {
  if (kind == EngineKind::kMuppet1) {
    return std::make_unique<Muppet1Engine>(config, options);
  }
  return std::make_unique<Muppet2Engine>(config, options);
}

class FailureTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(FailureTest, ProcessingContinuesAfterCrash) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 3;
  options.workers_per_function = 3;
  options.threads_per_machine = 2;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());

  for (int i = 0; i < 90; ++i) {
    ASSERT_OK(engine->Publish("in", "key" + std::to_string(i % 9), "", i + 1));
  }
  ASSERT_OK(engine->Drain());
  ASSERT_OK(engine->CrashMachine(1));

  // Publishing continues; events owned by machine 1 are lost once (the
  // detecting send), then rerouted via the master broadcast.
  for (int i = 0; i < 90; ++i) {
    ASSERT_OK(
        engine->Publish("in", "key" + std::to_string(i % 9), "", 100 + i));
  }
  ASSERT_OK(engine->Drain());

  const EngineStats stats = engine->Stats();
  EXPECT_GT(stats.failures_detected, 0)
      << "the crash must be detected via a failed send";
  // Post-crash events were processed by survivors: published events minus
  // the (bounded) losses all got counted.
  EXPECT_EQ(stats.events_processed + stats.events_lost_failure,
            stats.events_published);
  EXPECT_LT(stats.events_lost_failure, 90);
  ASSERT_OK(engine->Stop());
}

TEST_P(FailureTest, RejectedCrashArguments) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  EXPECT_FALSE(engine->CrashMachine(-1).ok());
  EXPECT_FALSE(engine->CrashMachine(99).ok());
  ASSERT_OK(engine->CrashMachine(1));
  ASSERT_OK(engine->CrashMachine(1));  // idempotent
  ASSERT_OK(engine->Stop());
}

TEST_P(FailureTest, SameKeyReroutesToSameSurvivor) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 3;
  options.workers_per_function = 3;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  // Crash, then publish many events of one key: they must all reach one
  // surviving worker (the count lands in a single slate).
  ASSERT_OK(engine->CrashMachine(2));
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(engine->Publish("in", "steady", "", i + 1));
  }
  ASSERT_OK(engine->Drain());
  const int64_t count = CountOf(*engine, "count", "steady");
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(count + stats.events_lost_failure, 60);
  EXPECT_LE(stats.events_lost_failure, 1)
      << "at most the failure-detecting event is lost";
  ASSERT_OK(engine->Stop());
}

TEST_P(FailureTest, FlushedSlatesSurviveCrashViaStore) {
  TempDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 1;
  kv_options.replication_factor = 1;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster kv_cluster(kv_options);
  ASSERT_OK(kv_cluster.Open());
  SlateStore store(&kv_cluster, SlateStoreOptions{});

  AppConfig config;
  UpdaterOptions updater_options;
  updater_options.flush_policy = SlateFlushPolicy::kWriteThrough;
  BuildCountingApp(&config, /*forward=*/false, updater_options);

  EngineOptions options;
  options.num_machines = 3;
  options.workers_per_function = 3;
  options.threads_per_machine = 2;
  options.slate_store = &store;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());

  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(engine->Publish("in", "durable-key", "", i + 1));
  }
  ASSERT_OK(engine->Drain());
  EXPECT_EQ(CountOf(*engine, "count", "durable-key"), 50);

  // Crash every machine in turn until the key's owner is certainly gone,
  // then fetch: the surviving path must read the store-backed state.
  ASSERT_OK(engine->CrashMachine(0));
  Result<Bytes> slate = engine->FetchSlate("count", "durable-key");
  ASSERT_OK(slate);
  JsonSlate s(&slate.value());
  EXPECT_EQ(s.data().GetInt("count"), 50)
      << "write-through slates survive machine loss (§4.2/§4.3)";
  ASSERT_OK(engine->Stop());
}

TEST_P(FailureTest, UnflushedSlateUpdatesLostOnCrash) {
  // With a very long flush interval, slate changes live only in the
  // crashed machine's cache: the paper accepts this loss (§4.3).
  TempDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 1;
  kv_options.replication_factor = 1;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster kv_cluster(kv_options);
  ASSERT_OK(kv_cluster.Open());
  SlateStore store(&kv_cluster, SlateStoreOptions{});

  AppConfig config;
  UpdaterOptions updater_options;
  updater_options.flush_policy = SlateFlushPolicy::kInterval;
  updater_options.flush_interval_micros = 3600LL * kMicrosPerSecond;  // never
  BuildCountingApp(&config, /*forward=*/false, updater_options);

  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.slate_store = &store;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(engine->Publish("in", "volatile-key", "", i + 1));
  }
  ASSERT_OK(engine->Drain());

  // Crash both machines: the cached (never flushed) slate is gone, and
  // the store never saw it.
  ASSERT_OK(engine->CrashMachine(0));
  ASSERT_OK(engine->CrashMachine(1));
  EXPECT_TRUE(store.Read(SlateId{"count", "volatile-key"})
                  .status()
                  .IsNotFound());
  ASSERT_OK(engine->Stop());
}

INSTANTIATE_TEST_SUITE_P(Engines, FailureTest,
                         ::testing::Values(EngineKind::kMuppet1,
                                           EngineKind::kMuppet2),
                         [](const auto& info) {
                           return info.param == EngineKind::kMuppet1
                                      ? "Muppet1"
                                      : "Muppet2";
                         });

}  // namespace
}  // namespace muppet
