// Slate flush policies through the whole engine stack (paper §4.2:
// "ranging from 'immediate write-through' to 'only when evicted from
// cache'"), for both engine generations:
//   * write-through writes the store once per update;
//   * interval coalesces (fewer store writes than updates);
//   * on-evict writes only at eviction or shutdown;
//   * regardless of policy, a clean Stop() leaves the store complete.
#include <memory>
#include <string>
#include <tuple>

#include "core/slate.h"
#include "core/slate_store.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "kvstore/cluster.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::TempDir;

using PolicyParams = std::tuple<bool, SlateFlushPolicy>;

class FlushPolicyTest : public ::testing::TestWithParam<PolicyParams> {};

TEST_P(FlushPolicyTest, StoreWriteVolumeMatchesPolicy) {
  const bool muppet2 = std::get<0>(GetParam());
  const SlateFlushPolicy policy = std::get<1>(GetParam());

  TempDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 1;
  kv_options.replication_factor = 1;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster cluster(kv_options);
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});

  AppConfig config;
  UpdaterOptions updater_options;
  updater_options.flush_policy = policy;
  updater_options.flush_interval_micros = 5 * kMicrosPerMilli;
  BuildCountingApp(&config, /*forward=*/false, updater_options);

  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.threads_per_machine = 2;
  options.slate_cache_capacity = 1 << 14;  // never evict in this test
  options.slate_store = &store;
  options.flush_poll_micros = 2 * kMicrosPerMilli;
  std::unique_ptr<Engine> engine;
  if (muppet2) {
    engine = std::make_unique<Muppet2Engine>(config, options);
  } else {
    engine = std::make_unique<Muppet1Engine>(config, options);
  }
  ASSERT_OK(engine->Start());

  constexpr int kEvents = 500;
  constexpr int kKeys = 10;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_OK(engine->Publish("in", "k" + std::to_string(i % kKeys), "",
                              i + 1));
  }
  ASSERT_OK(engine->Drain());
  const int64_t writes_before_stop = engine->Stats().slate_store_writes;

  switch (policy) {
    case SlateFlushPolicy::kWriteThrough:
      EXPECT_EQ(writes_before_stop, kEvents)
          << "write-through writes the store on every update";
      break;
    case SlateFlushPolicy::kInterval:
      // Coalescing: strictly fewer writes than updates (each flush batch
      // writes at most one version per dirty slate).
      EXPECT_LT(writes_before_stop, kEvents);
      break;
    case SlateFlushPolicy::kOnEvict:
      EXPECT_EQ(writes_before_stop, 0)
          << "nothing evicts, so nothing reaches the store before stop";
      break;
  }

  // A clean shutdown flushes everything, whatever the policy: the store
  // afterwards holds the complete, final counts.
  ASSERT_OK(engine->Stop());
  int64_t total = 0;
  for (int k = 0; k < kKeys; ++k) {
    Result<Bytes> slate =
        store.Read(SlateId{"count", "k" + std::to_string(k)});
    ASSERT_OK(slate);
    JsonSlate s(&slate.value());
    total += s.data().GetInt("count");
  }
  EXPECT_EQ(total, kEvents);
}

TEST_P(FlushPolicyTest, EvictionWritesBackUnderTinyCache) {
  const bool muppet2 = std::get<0>(GetParam());
  const SlateFlushPolicy policy = std::get<1>(GetParam());
  if (policy == SlateFlushPolicy::kWriteThrough) {
    GTEST_SKIP() << "write-through never holds dirty state to evict";
  }

  TempDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 1;
  kv_options.replication_factor = 1;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster cluster(kv_options);
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});

  AppConfig config;
  UpdaterOptions updater_options;
  updater_options.flush_policy = policy;
  updater_options.flush_interval_micros = 3600LL * kMicrosPerSecond;
  BuildCountingApp(&config, /*forward=*/false, updater_options);

  EngineOptions options;
  options.num_machines = 1;
  options.workers_per_function = 1;
  options.threads_per_machine = 1;
  options.slate_cache_capacity = 4;  // far below the key count
  options.slate_store = &store;
  std::unique_ptr<Engine> engine;
  if (muppet2) {
    engine = std::make_unique<Muppet2Engine>(config, options);
  } else {
    engine = std::make_unique<Muppet1Engine>(config, options);
  }
  ASSERT_OK(engine->Start());
  // Cyclic sweep over 32 keys with a 4-slot cache: constant eviction.
  for (int i = 0; i < 320; ++i) {
    ASSERT_OK(engine->Publish("in", "k" + std::to_string(i % 32), "",
                              i + 1));
  }
  ASSERT_OK(engine->Drain());
  const EngineStats stats = engine->Stats();
  EXPECT_GT(stats.slate_cache_evictions, 0);
  EXPECT_GT(stats.slate_store_writes, 0)
      << "evicted dirty slates must reach the store";
  // Evicted-then-retouched slates must round-trip through the store: the
  // counts stay exact despite the thrashing cache.
  ASSERT_OK(engine->Stop());
  int64_t total = 0;
  for (int k = 0; k < 32; ++k) {
    Result<Bytes> slate =
        store.Read(SlateId{"count", "k" + std::to_string(k)});
    ASSERT_OK(slate);
    JsonSlate s(&slate.value());
    total += s.data().GetInt("count");
  }
  EXPECT_EQ(total, 320);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FlushPolicyTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(SlateFlushPolicy::kWriteThrough,
                                         SlateFlushPolicy::kInterval,
                                         SlateFlushPolicy::kOnEvict)),
    [](const ::testing::TestParamInfo<PolicyParams>& info) {
      std::string name = std::get<0>(info.param) ? "M2_" : "M1_";
      switch (std::get<1>(info.param)) {
        case SlateFlushPolicy::kWriteThrough: return name + "writethrough";
        case SlateFlushPolicy::kInterval: return name + "interval";
        case SlateFlushPolicy::kOnEvict: return name + "onevict";
      }
      return name + "unknown";
    });

}  // namespace
}  // namespace muppet
