#include "engine/journal.h"

#include <cstdio>
#include <string>

#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::CountOf;
using ::muppet::testing::TempDir;

TEST(EventJournalTest, RecordAndReadBack) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  {
    EventJournal journal;
    ASSERT_OK(journal.Open(path));
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(journal.Record("in", "key" + std::to_string(i),
                               "value" + std::to_string(i), 100 + i));
    }
    EXPECT_EQ(journal.next_index(), 50u);
    ASSERT_OK(journal.Close());
  }
  std::vector<JournaledEvent> events;
  ASSERT_OK(EventJournal::Read(path, 0, &events));
  ASSERT_EQ(events.size(), 50u);
  EXPECT_EQ(events[7].stream, "in");
  EXPECT_EQ(events[7].key, "key7");
  EXPECT_EQ(events[7].value, "value7");
  EXPECT_EQ(events[7].ts, 107);
  EXPECT_EQ(events[7].index, 7u);
}

TEST(EventJournalTest, ReadFromIndexSkipsPrefix) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  EventJournal journal;
  ASSERT_OK(journal.Open(path));
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(journal.Record("in", "k" + std::to_string(i), "", i + 1));
  }
  ASSERT_OK(journal.Close());
  std::vector<JournaledEvent> events;
  ASSERT_OK(EventJournal::Read(path, 15, &events));
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].key, "k15");
  EXPECT_EQ(events[0].index, 15u);
}

TEST(EventJournalTest, ReopenContinuesIndices) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  {
    EventJournal journal;
    ASSERT_OK(journal.Open(path));
    ASSERT_OK(journal.Record("in", "a", "", 1));
    ASSERT_OK(journal.Close());
  }
  EventJournal journal;
  ASSERT_OK(journal.Open(path));
  EXPECT_EQ(journal.next_index(), 1u);
  ASSERT_OK(journal.Record("in", "b", "", 2));
  ASSERT_OK(journal.Close());
  std::vector<JournaledEvent> events;
  ASSERT_OK(EventJournal::Read(path, 0, &events));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].key, "b");
  EXPECT_EQ(events[1].index, 1u);
}

TEST(EventJournalTest, TornTailTolerated) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  {
    EventJournal journal;
    ASSERT_OK(journal.Open(path));
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(journal.Record("in", "k" + std::to_string(i), "", i + 1));
    }
    ASSERT_OK(journal.Close());
  }
  // Truncate mid-record.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size - 3), 0);

  std::vector<JournaledEvent> events;
  ASSERT_OK(EventJournal::Read(path, 0, &events));
  EXPECT_EQ(events.size(), 9u);
}

TEST(EventJournalTest, ReplayRecoversLostEventsAfterCrash) {
  // The paper's §4.3 future work, realized: journal inputs at the source,
  // crash a machine mid-stream, replay the window — the re-derived counts
  // cover everything the crash lost.
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";

  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 3;
  options.threads_per_machine = 2;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());

  EventJournal journal;
  ASSERT_OK(journal.Open(path));
  JournalingPublisher publisher(&engine, &journal);

  // Window 1: all healthy.
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(publisher.Publish("in", "k" + std::to_string(i % 5), "",
                                i + 1));
  }
  ASSERT_OK(engine.Drain());
  const uint64_t checkpoint = publisher.Checkpoint();

  // Window 2: a machine dies mid-window; some events are lost.
  ASSERT_OK(engine.CrashMachine(1));
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(publisher.Publish("in", "k" + std::to_string(i % 5), "",
                                100 + i));
  }
  ASSERT_OK(engine.Drain());
  const EngineStats mid = engine.Stats();

  if (mid.events_lost_failure > 0) {
    // Recovery: rebuild the affected keys from the journal. A counting
    // updater is not idempotent, so recovery resets the affected slates
    // and replays the whole journal — exactly what the §4.3 discussion
    // implies replay would need.
    for (int k = 0; k < 5; ++k) {
      // Reset by publishing nothing — instead verify via a fresh engine.
    }
    AppConfig fresh_config;
    BuildCountingApp(&fresh_config);
    Muppet2Engine fresh(fresh_config, options);
    ASSERT_OK(fresh.Start());
    ASSERT_OK(journal.Flush());  // make every record visible to readers
    Result<int64_t> replayed =
        EventJournal::ReplayInto(path, 0, &fresh);
    ASSERT_OK(replayed);
    EXPECT_EQ(replayed.value(), 100);
    ASSERT_OK(fresh.Drain());
    int64_t total = 0;
    for (int k = 0; k < 5; ++k) {
      total += CountOf(fresh, "count", "k" + std::to_string(k));
    }
    EXPECT_EQ(total, 100) << "replay recovered every journaled event";
    ASSERT_OK(fresh.Stop());
  }
  (void)checkpoint;
  ASSERT_OK(engine.Stop());
}

TEST(EventJournalTest, ReplayFromCheckpointOnly) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.log";
  EventJournal journal;
  ASSERT_OK(journal.Open(path));
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(journal.Record("in", "k", "", i + 1));
  }
  ASSERT_OK(journal.Close());

  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, EngineOptions{});
  ASSERT_OK(engine.Start());
  Result<int64_t> replayed = EventJournal::ReplayInto(path, 20, &engine);
  ASSERT_OK(replayed);
  EXPECT_EQ(replayed.value(), 10);
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "k"), 10);
  ASSERT_OK(engine.Stop());
}

}  // namespace
}  // namespace muppet
