// LoadController policy tests: the controller is a pure object (no
// threads, no engine), so every split/merge/throttle decision is pinned
// here without a cluster.
#include "engine/load_manager.h"

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

LoadManagerOptions BaseOptions() {
  LoadManagerOptions o;
  o.enabled = true;
  o.min_samples = 10;
  o.split_heat_fraction = 0.20;
  o.merge_heat_fraction = 0.05;
  o.merge_cool_ticks = 3;
  o.split_shards = 4;
  o.max_splits = 2;
  o.target_occupancy = 0.5;
  // Exactly representable gain so floor expectations below are exact.
  o.throttle_gain = 0.25;
  o.max_floor_delay_micros = 1000;
  return o;
}

LoadSignals Signals(int64_t total,
                    std::vector<HeatReading> top,
                    std::vector<LoadSignals::ActiveSplit> active = {}) {
  LoadSignals s;
  s.sampled_total = total;
  s.top = std::move(top);
  s.active_splits = std::move(active);
  return s;
}

TEST(LoadControllerTest, SplitsKeysAboveHeatFraction) {
  LoadController c(BaseOptions());
  // hot = 40%, warm = 10%: only hot crosses the 20% split threshold.
  LoadActions a = c.Tick(
      Signals(100, {{1, "hot", 40}, {1, "warm", 10}}));
  ASSERT_EQ(a.splits.size(), 1u);
  EXPECT_EQ(a.splits[0].function_id, 1);
  EXPECT_EQ(a.splits[0].key, "hot");
  EXPECT_EQ(a.splits[0].shards, 4);
  EXPECT_TRUE(a.merges.empty());
}

TEST(LoadControllerTest, MinSamplesGatesEverything) {
  LoadController c(BaseOptions());
  // 9 < min_samples(10): even a 100%-share key is ignored.
  LoadActions a = c.Tick(Signals(9, {{1, "hot", 9}}));
  EXPECT_TRUE(a.splits.empty());
  EXPECT_TRUE(a.merges.empty());
}

TEST(LoadControllerTest, MaxSplitsCapCountsActiveOnes) {
  LoadController c(BaseOptions());  // max_splits = 2
  LoadActions a = c.Tick(Signals(
      100, {{1, "a", 40}, {1, "b", 30}, {1, "c", 25}}));
  EXPECT_EQ(a.splits.size(), 2u);

  // With one split already live, only one slot remains.
  a = c.Tick(Signals(100, {{1, "b", 40}, {1, "c", 30}},
                     {{1, "a", /*draining=*/false}}));
  ASSERT_EQ(a.splits.size(), 1u);
  EXPECT_EQ(a.splits[0].key, "b");
}

TEST(LoadControllerTest, AlreadySplitKeysNotResplit) {
  LoadController c(BaseOptions());
  LoadActions a = c.Tick(Signals(100, {{1, "hot", 40}, {2, "other", 30}},
                                 {{1, "hot", /*draining=*/false}}));
  // "hot" stays split (still warm, no merge) and is not split again;
  // the different-function "other" key gets the remaining slot.
  ASSERT_EQ(a.splits.size(), 1u);
  EXPECT_EQ(a.splits[0].function_id, 2);
  EXPECT_TRUE(a.merges.empty());
}

TEST(LoadControllerTest, MergeRequiresConsecutiveCoolTicks) {
  LoadController c(BaseOptions());  // merge_cool_ticks = 3
  const LoadSignals cold =
      Signals(100, {{1, "other", 40}}, {{1, "hot", false}});
  // Two cold ticks: not yet.
  EXPECT_TRUE(c.Tick(cold).merges.empty());
  EXPECT_TRUE(c.Tick(cold).merges.empty());
  // Third consecutive cold tick triggers the merge.
  LoadActions a = c.Tick(cold);
  ASSERT_EQ(a.merges.size(), 1u);
  EXPECT_EQ(a.merges[0].first, 1);
  EXPECT_EQ(a.merges[0].second, "hot");
}

TEST(LoadControllerTest, WarmTickResetsCoolCounter) {
  LoadController c(BaseOptions());
  const LoadSignals cold =
      Signals(100, {{1, "other", 40}}, {{1, "hot", false}});
  // 10% share is above merge_heat_fraction (5%): still warm.
  const LoadSignals warm =
      Signals(100, {{1, "other", 40}, {1, "hot", 10}}, {{1, "hot", false}});
  EXPECT_TRUE(c.Tick(cold).merges.empty());
  EXPECT_TRUE(c.Tick(cold).merges.empty());
  EXPECT_TRUE(c.Tick(warm).merges.empty());  // counter resets here
  EXPECT_TRUE(c.Tick(cold).merges.empty());
  EXPECT_TRUE(c.Tick(cold).merges.empty());
  EXPECT_EQ(c.Tick(cold).merges.size(), 1u);
}

TEST(LoadControllerTest, DrainingSplitsNeverMergedAgain) {
  LoadController c(BaseOptions());
  const LoadSignals cold = Signals(100, {{1, "other", 40}},
                                   {{1, "hot", /*draining=*/true}});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.Tick(cold).merges.empty());
}

TEST(LoadControllerTest, ThrottleFloorRampsClampsAndBleeds) {
  LoadController c(BaseOptions());  // target 0.5, gain 0.25, max 1000us
  // Occupancy at target: floor stays zero.
  LoadSignals s = Signals(0, {});
  s.max_queue_occupancy = 0.5;
  EXPECT_EQ(c.Tick(s).floor_delay_micros, 0);

  // Full queues: +0.5 error * 0.25 gain * 1000us = +125us per tick,
  // clamped at max after enough ticks.
  s.max_queue_occupancy = 1.0;
  EXPECT_EQ(c.Tick(s).floor_delay_micros, 125);
  EXPECT_EQ(c.Tick(s).floor_delay_micros, 250);
  for (int i = 0; i < 50; ++i) c.Tick(s);
  EXPECT_EQ(c.Tick(s).floor_delay_micros, 1000);
  EXPECT_EQ(c.floor_delay_micros(), 1000);

  // Empty queues bleed it back off, clamped at zero.
  s.max_queue_occupancy = 0.0;
  EXPECT_EQ(c.Tick(s).floor_delay_micros, 875);
  for (int i = 0; i < 50; ++i) c.Tick(s);
  EXPECT_EQ(c.Tick(s).floor_delay_micros, 0);
}

TEST(LoadControllerTest, ThrottleActsEvenBelowMinSamples) {
  // Queue pressure is real regardless of how few heat samples exist.
  LoadController c(BaseOptions());
  LoadSignals s = Signals(0, {{1, "hot", 0}});
  s.max_queue_occupancy = 1.0;
  LoadActions a = c.Tick(s);
  EXPECT_EQ(a.floor_delay_micros, 125);
  EXPECT_TRUE(a.splits.empty());
}

}  // namespace
}  // namespace muppet
