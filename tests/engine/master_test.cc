#include "engine/master.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(MasterTest, FirstReportBroadcasts) {
  Master master;
  std::vector<MachineId> broadcasts;
  master.AddListener([&](MachineId m) { broadcasts.push_back(m); });
  EXPECT_TRUE(master.ReportFailure(3));
  ASSERT_EQ(broadcasts.size(), 1u);
  EXPECT_EQ(broadcasts[0], 3);
  EXPECT_TRUE(master.IsFailed(3));
  EXPECT_EQ(master.failures_reported(), 1);
}

TEST(MasterTest, DuplicateReportsIdempotent) {
  Master master;
  int broadcasts = 0;
  master.AddListener([&](MachineId) { ++broadcasts; });
  EXPECT_TRUE(master.ReportFailure(1));
  EXPECT_FALSE(master.ReportFailure(1));
  EXPECT_FALSE(master.ReportFailure(1));
  EXPECT_EQ(broadcasts, 1);
  EXPECT_EQ(master.failures_reported(), 1);
}

TEST(MasterTest, MultipleListenersAllNotified) {
  Master master;
  int a = 0, b = 0;
  master.AddListener([&](MachineId) { ++a; });
  master.AddListener([&](MachineId) { ++b; });
  master.ReportFailure(7);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(MasterTest, FailedSetAccumulates) {
  Master master;
  master.ReportFailure(1);
  master.ReportFailure(4);
  const auto failed = master.failed();
  EXPECT_EQ(failed.size(), 2u);
  EXPECT_TRUE(failed.count(1) > 0);
  EXPECT_TRUE(failed.count(4) > 0);
  EXPECT_FALSE(master.IsFailed(2));
}

TEST(MasterTest, ClearFailureRestores) {
  Master master;
  master.ReportFailure(1);
  master.ClearFailure(1);
  EXPECT_FALSE(master.IsFailed(1));
  // A new report broadcasts again.
  int broadcasts = 0;
  master.AddListener([&](MachineId) { ++broadcasts; });
  EXPECT_TRUE(master.ReportFailure(1));
  EXPECT_EQ(broadcasts, 1);
}

TEST(MasterTest, ClearFailureBroadcastsToRecoveryListeners) {
  Master master;
  std::vector<MachineId> recoveries;
  master.AddRecoveryListener([&](MachineId m) { recoveries.push_back(m); });
  master.ReportFailure(2);
  EXPECT_TRUE(master.ClearFailure(2));
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(recoveries[0], 2);
  EXPECT_EQ(master.recoveries_reported(), 1);
}

TEST(MasterTest, ClearFailureOfHealthyMachineDoesNotBroadcast) {
  Master master;
  int recoveries = 0;
  master.AddRecoveryListener([&](MachineId) { ++recoveries; });
  // Never reported failed: nothing to clear, nothing to broadcast.
  EXPECT_FALSE(master.ClearFailure(5));
  EXPECT_EQ(recoveries, 0);
  EXPECT_EQ(master.recoveries_reported(), 0);
  // And clearing twice broadcasts only once.
  master.ReportFailure(5);
  EXPECT_TRUE(master.ClearFailure(5));
  EXPECT_FALSE(master.ClearFailure(5));
  EXPECT_EQ(recoveries, 1);
  EXPECT_EQ(master.recoveries_reported(), 1);
}

TEST(MasterTest, MultipleRecoveryListenersAllNotified) {
  Master master;
  int a = 0, b = 0;
  master.AddRecoveryListener([&](MachineId) { ++a; });
  master.AddRecoveryListener([&](MachineId) { ++b; });
  master.ReportFailure(3);
  master.ClearFailure(3);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

// ---- Durable recovery ordering (DESIGN.md §12): a recovering machine
// must stay unroutable (in failed()) until its changelog replay finishes
// and ClearFailure runs. The ClearFailure-before-replay bug this guards
// against let events route to a machine whose slates were still empty.

TEST(MasterTest, BeginRecoveryKeepsMachineUnroutable) {
  Master master;
  int recoveries = 0;
  master.AddRecoveryListener([&](MachineId) { ++recoveries; });
  master.ReportFailure(2);
  EXPECT_TRUE(master.BeginRecovery(2));
  // Still failed for routing, flagged as recovering, and crucially no
  // recovery broadcast yet — peers must keep routing around it.
  EXPECT_TRUE(master.IsFailed(2));
  EXPECT_TRUE(master.IsRecovering(2));
  EXPECT_EQ(recoveries, 0);
  // Replay done: ClearFailure rejoins the machine and ends recovery.
  EXPECT_TRUE(master.ClearFailure(2));
  EXPECT_FALSE(master.IsFailed(2));
  EXPECT_FALSE(master.IsRecovering(2));
  EXPECT_EQ(recoveries, 1);
}

TEST(MasterTest, BeginRecoveryRequiresAFailedMachine) {
  Master master;
  EXPECT_FALSE(master.BeginRecovery(4));  // never failed
  EXPECT_FALSE(master.IsRecovering(4));
  master.ReportFailure(4);
  EXPECT_TRUE(master.BeginRecovery(4));
  EXPECT_FALSE(master.BeginRecovery(4));  // already recovering
}

TEST(MasterTest, ReCrashDuringRecoveryAbortsIt) {
  Master master;
  master.ReportFailure(1);
  EXPECT_TRUE(master.BeginRecovery(1));
  // The machine dies again mid-replay: the recovery is abandoned and the
  // machine is plain-failed, so a later restart must BeginRecovery anew.
  master.ReportFailure(1);
  EXPECT_FALSE(master.IsRecovering(1));
  EXPECT_TRUE(master.IsFailed(1));
  EXPECT_TRUE(master.BeginRecovery(1));
}

TEST(MasterTest, FailClearFailCycleBroadcastsEachTransition) {
  Master master;
  std::vector<std::string> log;
  master.AddListener([&](MachineId m) {
    log.push_back("fail:" + std::to_string(m));
  });
  master.AddRecoveryListener([&](MachineId m) {
    log.push_back("recover:" + std::to_string(m));
  });
  master.ReportFailure(1);
  master.ClearFailure(1);
  master.ReportFailure(1);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "fail:1");
  EXPECT_EQ(log[1], "recover:1");
  EXPECT_EQ(log[2], "fail:1");
  EXPECT_TRUE(master.IsFailed(1));
}

}  // namespace
}  // namespace muppet
