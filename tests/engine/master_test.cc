#include "engine/master.h"

#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace {

TEST(MasterTest, FirstReportBroadcasts) {
  Master master;
  std::vector<MachineId> broadcasts;
  master.AddListener([&](MachineId m) { broadcasts.push_back(m); });
  EXPECT_TRUE(master.ReportFailure(3));
  ASSERT_EQ(broadcasts.size(), 1u);
  EXPECT_EQ(broadcasts[0], 3);
  EXPECT_TRUE(master.IsFailed(3));
  EXPECT_EQ(master.failures_reported(), 1);
}

TEST(MasterTest, DuplicateReportsIdempotent) {
  Master master;
  int broadcasts = 0;
  master.AddListener([&](MachineId) { ++broadcasts; });
  EXPECT_TRUE(master.ReportFailure(1));
  EXPECT_FALSE(master.ReportFailure(1));
  EXPECT_FALSE(master.ReportFailure(1));
  EXPECT_EQ(broadcasts, 1);
  EXPECT_EQ(master.failures_reported(), 1);
}

TEST(MasterTest, MultipleListenersAllNotified) {
  Master master;
  int a = 0, b = 0;
  master.AddListener([&](MachineId) { ++a; });
  master.AddListener([&](MachineId) { ++b; });
  master.ReportFailure(7);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(MasterTest, FailedSetAccumulates) {
  Master master;
  master.ReportFailure(1);
  master.ReportFailure(4);
  const auto failed = master.failed();
  EXPECT_EQ(failed.size(), 2u);
  EXPECT_TRUE(failed.count(1) > 0);
  EXPECT_TRUE(failed.count(4) > 0);
  EXPECT_FALSE(master.IsFailed(2));
}

TEST(MasterTest, ClearFailureRestores) {
  Master master;
  master.ReportFailure(1);
  master.ClearFailure(1);
  EXPECT_FALSE(master.IsFailed(1));
  // A new report broadcasts again.
  int broadcasts = 0;
  master.AddListener([&](MachineId) { ++broadcasts; });
  EXPECT_TRUE(master.ReportFailure(1));
  EXPECT_EQ(broadcasts, 1);
}

}  // namespace
}  // namespace muppet
