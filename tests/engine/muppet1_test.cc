#include "engine/muppet1.h"

#include <atomic>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::BuildFanoutApp;
using ::muppet::testing::CountOf;

EngineOptions SmallOptions(int machines = 2, int workers = 2) {
  EngineOptions options;
  options.num_machines = machines;
  options.workers_per_function = workers;
  options.queue_capacity = 1024;
  return options;
}

TEST(Muppet1Test, CountsEventsPerKey) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet1Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(engine.Publish("in", "key" + std::to_string(i % 5), "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(CountOf(engine, "count", "key" + std::to_string(k)), 20);
  }
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.events_published, 100);
  EXPECT_EQ(stats.events_processed, 100);
  EXPECT_EQ(stats.events_lost_failure, 0);
  EXPECT_EQ(stats.events_dropped_overflow, 0);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, MapperUpdaterPipeline) {
  AppConfig config;
  BuildFanoutApp(&config);
  Muppet1Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  // The fanout mapper doubles each event.
  EXPECT_EQ(CountOf(engine, "count", "k"), 100);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.events_emitted, 100);
  EXPECT_EQ(stats.events_processed, 150);  // 50 map + 100 update calls
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, SingleMachineSingleWorker) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet1Engine engine(config, SmallOptions(1, 1));
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 30; ++i) ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "k"), 30);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, ManyMachinesManyWorkers) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet1Engine engine(config, SmallOptions(4, 4));
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK(
        engine.Publish("in", "key" + std::to_string(i % 20), "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(CountOf(engine, "count", "key" + std::to_string(k)), 20);
  }
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, TapObservesStreamEvents) {
  AppConfig config;
  BuildCountingApp(&config, /*forward=*/true);
  Muppet1Engine engine(config, SmallOptions());
  std::atomic<int> tapped{0};
  engine.TapStream("out", [&tapped](const Event&) { tapped.fetch_add(1); });
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 25; ++i) ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(tapped.load(), 25);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, PublishToUnknownOrInternalStreamRejected) {
  AppConfig config;
  BuildCountingApp(&config, /*forward=*/true);
  Muppet1Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  EXPECT_FALSE(engine.Publish("ghost", "k", "", 1).ok());
  EXPECT_FALSE(engine.Publish("out", "k", "", 1).ok());
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, FetchSlateUnknownUpdater) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet1Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  EXPECT_TRUE(engine.FetchSlate("nope", "k").status().IsNotFound());
  EXPECT_TRUE(engine.FetchSlate("count", "never-seen").status().IsNotFound());
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, EventsRouteConsistentlyByKey) {
  // All events of one key must reach the same worker: the per-key count
  // in a single slate equals the number published, even with many workers.
  AppConfig config;
  BuildCountingApp(&config);
  Muppet1Engine engine(config, SmallOptions(3, 3));
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 90; ++i) {
    ASSERT_OK(engine.Publish("in", "stable-key", "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "stable-key"), 90);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, OperatorInstancesPerWorker) {
  // Muppet 1.0 constructs one operator instance per worker (the §4.5
  // memory-duplication limitation).
  AppConfig config;
  BuildFanoutApp(&config);  // 2 functions
  EngineOptions options = SmallOptions(2, 3);  // 3 workers per function
  Muppet1Engine engine(config, options);
  ASSERT_OK(engine.Start());
  EXPECT_EQ(engine.Stats().operator_instances, 6);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, StopIsIdempotentAndFlushes) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet1Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  ASSERT_OK(engine.Publish("in", "k", "", 1));
  ASSERT_OK(engine.Drain());
  ASSERT_OK(engine.Stop());
  ASSERT_OK(engine.Stop());
  EXPECT_FALSE(engine.Publish("in", "k", "", 2).ok());
}

TEST(Muppet1Test, LatencyRecorded) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet1Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 10; ++i) ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  ASSERT_OK(engine.Drain());
  const EngineStats stats = engine.Stats();
  EXPECT_GT(stats.latency_p50_us, 0);
  EXPECT_GE(stats.latency_p99_us, stats.latency_p50_us);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet1Test, StartValidatesConfig) {
  AppConfig config;  // empty: invalid
  Muppet1Engine engine(config, SmallOptions());
  EXPECT_FALSE(engine.Start().ok());
}

TEST(Muppet1Test, LargeValuesSurviveSerializationChain) {
  AppConfig config;
  BuildCountingApp(&config, /*forward=*/true);
  Muppet1Engine engine(config, SmallOptions());
  std::atomic<size_t> seen_size{0};
  engine.TapStream("out", [&seen_size](const Event& e) {
    seen_size.store(e.value.size());
  });
  ASSERT_OK(engine.Start());
  const Bytes big(100000, 'v');
  ASSERT_OK(engine.Publish("in", "k", big, 1));
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(seen_size.load(), big.size());
  ASSERT_OK(engine.Stop());
}

}  // namespace
}  // namespace muppet
