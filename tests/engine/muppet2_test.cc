#include "engine/muppet2.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::BuildFanoutApp;
using ::muppet::testing::CountOf;

EngineOptions SmallOptions(int machines = 2, int threads = 3) {
  EngineOptions options;
  options.num_machines = machines;
  options.threads_per_machine = threads;
  options.queue_capacity = 2048;
  return options;
}

TEST(Muppet2Test, CountsEventsPerKey) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(engine.Publish("in", "key" + std::to_string(i % 8), "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(CountOf(engine, "count", "key" + std::to_string(k)), 25);
  }
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.events_published, 200);
  EXPECT_EQ(stats.events_processed, 200);
  EXPECT_EQ(stats.events_lost_failure, 0);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, PipelineWithMapper) {
  AppConfig config;
  BuildFanoutApp(&config);
  Muppet2Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 50; ++i) ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "k"), 100);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, SingleThreadSingleMachine) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, SmallOptions(1, 1));
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 40; ++i) ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "k"), 40);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, NoLostUpdatesUnderConcurrency) {
  // The §4.5 design allows two threads to vie for a slate; the striped
  // slate lock must keep read-modify-write updates lossless.
  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, SmallOptions(1, 4));
  ASSERT_OK(engine.Start());
  constexpr int kEvents = 2000;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_OK(engine.Publish("in", "hot", "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "hot"), kEvents)
      << "slate updates must not be lost to contention";
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, OperatorInstancesSharedPerMachine) {
  // Muppet 2.0: "each map and update function is constructed only once
  // [per machine] and shared by all threads" (§4.5).
  AppConfig config;
  BuildFanoutApp(&config);  // 2 functions
  Muppet2Engine engine(config, SmallOptions(3, 8));
  ASSERT_OK(engine.Start());
  EXPECT_EQ(engine.Stats().operator_instances, 6)  // 2 funcs x 3 machines
      << "thread count must not multiply operator instances";
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, SecondaryDispatchEngagesUnderSkew) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options = SmallOptions(1, 4);
  options.secondary_queue_bias = 0;  // any imbalance diverts
  options.queue_capacity = 16384;    // never overflow in this test
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  // One hot key: its primary queue backs up, so two-choice dispatch
  // should route some events to the secondary.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_OK(engine.Publish("in", "hot", "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(CountOf(engine, "count", "hot"), 5000);
  EXPECT_EQ(engine.Stats().events_dropped_overflow, 0);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, TwoChoiceDisabledStillCorrect) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options = SmallOptions(1, 4);
  options.enable_two_choice = false;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(engine.Publish("in", "key" + std::to_string(i % 7), "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < 7; ++k) {
    EXPECT_GE(CountOf(engine, "count", "key" + std::to_string(k)), 71);
  }
  EXPECT_EQ(engine.secondary_dispatches(), 0);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, TapAndStatusIntrospection) {
  AppConfig config;
  BuildCountingApp(&config, /*forward=*/true);
  Muppet2Engine engine(config, SmallOptions());
  std::atomic<int> tapped{0};
  engine.TapStream("out", [&tapped](const Event&) { tapped.fetch_add(1); });
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 30; ++i) ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(tapped.load(), 30);
  // §4.5: status information such as the largest queue depth.
  EXPECT_EQ(engine.LargestQueueDepth(), 0u) << "drained engine, empty queues";
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, FetchSlateFromAnyMachine) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, SmallOptions(4, 2));
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(engine.Publish("in", "key" + std::to_string(i), "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  int found = 0;
  for (int i = 0; i < 64; ++i) {
    if (CountOf(engine, "count", "key" + std::to_string(i)) == 1) ++found;
  }
  EXPECT_EQ(found, 64);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, RejectsBadShape) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options = SmallOptions(0, 0);
  Muppet2Engine engine(config, options);
  EXPECT_FALSE(engine.Start().ok());
}

// Full hot-key lifecycle against the live engine: a skewed stream trips
// the heat sketch, the load manager splits the key, reads re-aggregate
// base + shard slates exactly; when the traffic goes uniform the heat
// decays and the key merges back, still exact.
TEST(Muppet2Test, HotKeySplitAndMergeLifecycle) {
  AppConfig config;
  UpdaterOptions uo;
  uo.associativity = Associativity::kAssociativeCommutative;
  uo.merger = [](const Bytes* base, const Bytes& part) {
    JsonSlate b(base);
    JsonSlate p(&part);
    b.data()["count"] =
        b.data().GetInt("count", 0) + p.data().GetInt("count", 0);
    return b.Serialize();
  };
  BuildCountingApp(&config, /*forward=*/false, uo);

  EngineOptions options = SmallOptions();
  options.load_manager.enabled = true;
  options.load_manager.tick_micros = 1 * kMicrosPerMilli;
  options.load_manager.heat.sample_period = 1;
  options.load_manager.min_samples = 8;
  options.load_manager.split_heat_fraction = 0.5;
  options.load_manager.merge_heat_fraction = 0.2;
  options.load_manager.heat_decay = 0.5;
  options.load_manager.split_shards = 4;
  // Wide hysteresis so the split survives the brief idle gaps between
  // this test's phases; phase 2 still reaches the merge quickly.
  options.load_manager.merge_cool_ticks = 25;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());

  // Phase 1: hammer one key until the load manager splits it.
  int64_t hot_count = 0;
  int64_t seq = 0;
  for (int round = 0; round < 2000 && engine.key_splits() == 0; ++round) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_OK(engine.Publish("in", "hot", "", ++seq));
      ++hot_count;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(engine.key_splits(), 0) << "hot key never split";
  ASSERT_OK(engine.Drain());

  // Mid-split reads aggregate base + shard slates exactly.
  EXPECT_EQ(CountOf(engine, "count", "hot"), hot_count);

  // The split shows on the hot-key panel.
  bool split_row = false;
  for (const HotKeyInfo& hk : engine.HotKeys()) {
    if (hk.function == "count" && hk.key == "hot" && hk.split) {
      split_row = true;
      EXPECT_EQ(hk.shards, 4);
    }
  }
  EXPECT_TRUE(split_row);

  // Phase 2: go uniform; the hot key's heat decays and it merges back.
  for (int round = 0; round < 5000 && engine.key_merges() == 0; ++round) {
    for (int k = 0; k < 8; ++k) {
      ASSERT_OK(engine.Publish("in", "u" + std::to_string(k), "", ++seq));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(engine.key_merges(), 0) << "split never merged back";
  engine.PauseLoadManagement();
  ASSERT_OK(engine.Drain());

  // Counts stay exact through the whole lifecycle.
  EXPECT_EQ(CountOf(engine, "count", "hot"), hot_count);
  for (int k = 0; k < 8; ++k) {
    EXPECT_GT(CountOf(engine, "count", "u" + std::to_string(k)), 0);
  }
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.events_lost_failure, 0);
  EXPECT_EQ(stats.events_dropped_overflow, 0);
  ASSERT_OK(engine.Stop());
}

TEST(Muppet2Test, StopFlushesAndIsIdempotent) {
  AppConfig config;
  BuildCountingApp(&config);
  Muppet2Engine engine(config, SmallOptions());
  ASSERT_OK(engine.Start());
  ASSERT_OK(engine.Publish("in", "k", "", 1));
  ASSERT_OK(engine.Drain());
  ASSERT_OK(engine.Stop());
  ASSERT_OK(engine.Stop());
}

}  // namespace
}  // namespace muppet
