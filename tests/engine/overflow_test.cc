// Queue-overflow policies (§4.3): drop+log, overflow stream (degraded
// service), and source throttling (§5) — including the emit-loop deadlock
// scenario the paper warns about, which the engines detect and avoid.
#include <algorithm>
#include <memory>
#include <string>

#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::CountOf;

enum class EngineKind { kMuppet1, kMuppet2 };

std::unique_ptr<Engine> MakeEngine(EngineKind kind, const AppConfig& config,
                                   const EngineOptions& options) {
  if (kind == EngineKind::kMuppet1) {
    return std::make_unique<Muppet1Engine>(config, options);
  }
  return std::make_unique<Muppet2Engine>(config, options);
}

// Counting updater that takes `work_micros` per event — a deliberately
// slow consumer to back up its queue.
void BuildSlowCounter(AppConfig* config, Timestamp work_micros) {
  ASSERT_OK(config->DeclareInputStream("in"));
  ASSERT_OK(config->AddUpdater(
      "slow",
      MakeUpdaterFactory([work_micros](PerformerUtilities& out, const Event&,
                                       const Bytes* slate) {
        SystemClock::Default()->SleepFor(work_micros);
        JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
      }),
      {"in"}));
}

class OverflowTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(OverflowTest, DropPolicyBoundsQueueAndCountsDrops) {
  AppConfig config;
  BuildSlowCounter(&config, /*work_micros=*/500);
  EngineOptions options;
  options.num_machines = 1;
  options.workers_per_function = 1;
  options.threads_per_machine = 1;
  options.queue_capacity = 4;
  options.overflow.policy = OverflowPolicy::kDrop;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  constexpr int kEvents = 300;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_OK(engine->Publish("in", "k", "", i + 1));
  }
  ASSERT_OK(engine->Drain());
  const EngineStats stats = engine->Stats();
  EXPECT_GT(stats.events_dropped_overflow, 0)
      << "a full queue must shed load under the drop policy";
  EXPECT_EQ(stats.events_processed + stats.events_dropped_overflow, kEvents);
  EXPECT_EQ(CountOf(*engine, "slow", "k"), stats.events_processed);
  ASSERT_OK(engine->Stop());
}

TEST_P(OverflowTest, OverflowStreamProvidesDegradedService) {
  AppConfig config;
  BuildSlowCounter(&config, /*work_micros=*/500);
  // The degraded path: a cheap counter on the overflow stream.
  ASSERT_OK(config.DeclareStream("spill"));
  ASSERT_OK(config.AddUpdater(
      "degraded",
      MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                            const Bytes* slate) {
        JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
      }),
      {"spill"}));

  EngineOptions options;
  options.num_machines = 1;
  options.workers_per_function = 1;
  // Muppet 2.0 runs every function on one shared pool, so give the
  // degraded path enough threads/queues to stay drainable while the slow
  // function's pair of queues backs up. Muppet 1.0 has one worker (and
  // queue) per function, so the degraded worker is naturally separate.
  options.threads_per_machine = 8;
  options.queue_capacity = 4;
  options.overflow.policy = OverflowPolicy::kOverflowStream;
  options.overflow.overflow_stream = "spill";
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_OK(engine->Publish("in", "k", "", i + 1));
  }
  ASSERT_OK(engine->Drain());
  const EngineStats stats = engine->Stats();
  EXPECT_GT(stats.events_redirected_overflow, 0);
  const int64_t full = std::max<int64_t>(0, CountOf(*engine, "slow", "k"));
  const int64_t degraded =
      std::max<int64_t>(0, CountOf(*engine, "degraded", "k"));
  EXPECT_GT(degraded, 0) << "redirected events get degraded processing";
  // Every event received full service, degraded service, or (if even the
  // spill path was full) was dropped.
  EXPECT_EQ(full + degraded + stats.events_dropped_overflow, kEvents);
  ASSERT_OK(engine->Stop());
}

TEST_P(OverflowTest, UndeclaredOverflowStreamRejectedAtStart) {
  AppConfig config;
  BuildSlowCounter(&config, 0);
  EngineOptions options;
  options.overflow.policy = OverflowPolicy::kOverflowStream;
  options.overflow.overflow_stream = "nonexistent";
  auto engine = MakeEngine(GetParam(), config, options);
  EXPECT_FALSE(engine->Start().ok());
}

TEST_P(OverflowTest, SourceThrottlingTradesLatencyForCompleteness) {
  AppConfig config;
  BuildSlowCounter(&config, /*work_micros=*/300);
  EngineOptions options;
  options.num_machines = 1;
  options.workers_per_function = 1;
  options.threads_per_machine = 1;
  options.queue_capacity = 4;
  options.overflow.policy = OverflowPolicy::kThrottle;
  options.throttle.step_micros = 100;
  options.throttle.max_delay_micros = 5000;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  constexpr int kEvents = 150;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_OK(engine->Publish("in", "k", "", i + 1));
  }
  ASSERT_OK(engine->Drain());
  const EngineStats stats = engine->Stats();
  EXPECT_GT(stats.throttle_signals, 0)
      << "backpressure must reach the governor";
  // Throttling keeps losses tiny compared to dropping.
  EXPECT_LT(stats.events_dropped_overflow, kEvents / 10);
  EXPECT_EQ(CountOf(*engine, "slow", "k"),
            kEvents - stats.events_dropped_overflow);
  ASSERT_OK(engine->Stop());
}

TEST_P(OverflowTest, SelfEmitDeadlockDetectedAndAvoided) {
  // The §5 scenario: an updater emits events back into a stream it itself
  // consumes; under throttling with a full queue, waiting would deadlock.
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("loop"));
  ASSERT_OK(config.AddUpdater(
      "looper",
      MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                            const Bytes* slate) {
        JsonSlate s(slate);
        const int64_t hops = s.data().GetInt("hops") + 1;
        s.data()["hops"] = hops;
        (void)out.ReplaceSlate(s.Serialize());
        if (e.stream == "in") {
          // Burst-emit into our own input: the paper's 10,000-event
          // emitter, scaled down.
          for (int i = 0; i < 50; ++i) {
            (void)out.Publish("loop", e.key, "");
          }
        }
      }),
      {"in", "loop"}));

  EngineOptions options;
  options.num_machines = 1;
  options.workers_per_function = 1;
  options.threads_per_machine = 1;
  options.queue_capacity = 8;  // much smaller than the burst
  options.overflow.policy = OverflowPolicy::kThrottle;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  ASSERT_OK(engine->Publish("in", "k", "", 1));
  ASSERT_OK(engine->Drain());  // must terminate: the deadlock is avoided
  const EngineStats stats = engine->Stats();
  EXPECT_GT(stats.deadlocks_avoided, 0)
      << "self-emit into a full own queue must be detected (§5)";
  ASSERT_OK(engine->Stop());
}

INSTANTIATE_TEST_SUITE_P(Engines, OverflowTest,
                         ::testing::Values(EngineKind::kMuppet1,
                                           EngineKind::kMuppet2),
                         [](const auto& info) {
                           return info.param == EngineKind::kMuppet1
                                      ? "Muppet1"
                                      : "Muppet2";
                         });

}  // namespace
}  // namespace muppet
