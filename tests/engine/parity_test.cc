// Parity tests: both distributed engines must agree with the reference
// executor (§3: an implementation "should try to [approximate the
// well-defined output] as closely as possible"; for commutative
// applications a drained engine matches it exactly).
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "apps/hot_topics.h"
#include "apps/retailer.h"
#include "core/reference_executor.h"
#include "core/slate.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"
#include "workload/checkins.h"

namespace muppet {
namespace {

enum class EngineKind { kMuppet1, kMuppet2 };

std::unique_ptr<Engine> MakeEngine(EngineKind kind, const AppConfig& config,
                                   const EngineOptions& options) {
  if (kind == EngineKind::kMuppet1) {
    return std::make_unique<Muppet1Engine>(config, options);
  }
  return std::make_unique<Muppet2Engine>(config, options);
}

class ParityTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ParityTest, RetailerCountsMatchReference) {
  // Generate one deterministic checkin workload.
  workload::CheckinOptions gen_options;
  gen_options.seed = 99;
  gen_options.retailer_fraction = 0.5;
  std::vector<workload::Checkin> checkins;
  {
    workload::CheckinGenerator gen(gen_options, /*start_ts=*/1000);
    for (int i = 0; i < 500; ++i) checkins.push_back(gen.Next());
  }

  // Reference run.
  AppConfig ref_config;
  ASSERT_OK(apps::BuildRetailerApp(&ref_config));
  ReferenceExecutor reference(ref_config);
  ASSERT_OK(reference.Start());
  for (const auto& c : checkins) {
    ASSERT_OK(reference.Publish("S1", c.user, c.json, c.ts));
  }
  ASSERT_OK(reference.Run());
  std::map<std::string, int64_t> expected;
  for (const auto& [id, slate] : reference.slates()) {
    expected[std::string(id.key)] = apps::CountingUpdater::CountOf(slate);
  }
  ASSERT_FALSE(expected.empty());

  // Engine run.
  AppConfig config;
  ASSERT_OK(apps::BuildRetailerApp(&config));
  EngineOptions options;
  options.num_machines = 3;
  options.workers_per_function = 2;
  options.threads_per_machine = 2;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  for (const auto& c : checkins) {
    ASSERT_OK(engine->Publish("S1", c.user, c.json, c.ts));
  }
  ASSERT_OK(engine->Drain());
  for (const auto& [retailer, count] : expected) {
    Result<Bytes> slate = engine->FetchSlate("U1", retailer);
    ASSERT_OK(slate);
    EXPECT_EQ(apps::CountingUpdater::CountOf(slate.value()), count)
        << "retailer " << retailer;
  }
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.events_lost_failure, 0);
  EXPECT_EQ(stats.events_dropped_overflow, 0);
  ASSERT_OK(engine->Stop());
}

TEST_P(ParityTest, FanoutCountsMatchReference) {
  AppConfig ref_config;
  testing::BuildFanoutApp(&ref_config);
  ReferenceExecutor reference(ref_config);
  ASSERT_OK(reference.Start());
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(
        reference.Publish("in", "k" + std::to_string(i % 13), "", 1 + i));
  }
  ASSERT_OK(reference.Run());

  AppConfig config;
  testing::BuildFanoutApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.threads_per_machine = 3;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(engine->Publish("in", "k" + std::to_string(i % 13), "", 1 + i));
  }
  ASSERT_OK(engine->Drain());

  for (const auto& [id, slate] : reference.slates()) {
    Result<Bytes> engine_slate = engine->FetchSlate(id.updater, id.key);
    ASSERT_OK(engine_slate);
    JsonSlate ref_state(&slate);
    JsonSlate eng_state(&engine_slate.value());
    EXPECT_EQ(eng_state.data().GetInt("count"),
              ref_state.data().GetInt("count"))
        << "key " << id.key;
  }
  ASSERT_OK(engine->Stop());
}

TEST_P(ParityTest, SlateDeleteParity) {
  auto build = [](AppConfig* config) {
    ASSERT_OK(config->DeclareInputStream("in"));
    ASSERT_OK(config->AddUpdater(
        "U1", MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                    const Bytes* slate) {
          if (e.value == "reset") {
            (void)out.DeleteSlate();
            return;
          }
          JsonSlate s(slate);
          s.data()["count"] = s.data().GetInt("count") + 1;
          (void)out.ReplaceSlate(s.Serialize());
        }),
        {"in"}));
  };

  AppConfig config;
  build(&config);
  EngineOptions options;
  options.num_machines = 2;
  auto engine = MakeEngine(GetParam(), config, options);
  ASSERT_OK(engine->Start());
  for (int i = 0; i < 10; ++i) ASSERT_OK(engine->Publish("in", "k", "", i + 1));
  ASSERT_OK(engine->Drain());
  ASSERT_OK(engine->Publish("in", "k", "reset", 100));
  ASSERT_OK(engine->Drain());
  EXPECT_TRUE(engine->FetchSlate("U1", "k").status().IsNotFound());
  // Counting restarts from scratch after the delete.
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(engine->Publish("in", "k", "", 200 + i));
  }
  ASSERT_OK(engine->Drain());
  EXPECT_EQ(testing::CountOf(*engine, "U1", "k"), 3);
  ASSERT_OK(engine->Stop());
}

TEST_P(ParityTest, LockstepMatchesReferenceForOrderSensitiveApp) {
  // Drain-per-publish serializes the whole pipeline, so even an
  // order-sensitive application (hot-topics minute rollovers) must match
  // the reference executor exactly — the distributed approximations of §3
  // come only from concurrency, not from the mechanics.
  std::vector<std::tuple<Bytes, Bytes, Timestamp>> tweets;
  for (int64_t day = 0; day < 3; ++day) {
    for (int i = 0; i < 60; ++i) {
      Json t = Json::MakeObject();
      Json topics = Json::MakeArray();
      topics.Append("quake");
      if (i % 3 == 0) topics.Append("weather");
      t["topics"] = std::move(topics);
      // Two minutes per day; day 2 minute 1 carries a 3x burst.
      const int minute = i < 30 ? 0 : 1;
      const Timestamp ts =
          day * kMicrosPerDay + minute * kMicrosPerMinute + (i % 30) + 1;
      const int copies = (day == 2 && minute == 1) ? 3 : 1;
      for (int c = 0; c < copies; ++c) {
        tweets.emplace_back("u" + std::to_string(i % 7), t.Dump(),
                            ts + c * 2);
      }
    }
  }
  {
    // Closing tick: one trailing tweet in the next minute so the burst
    // minute rolls over and gets reported.
    Json t = Json::MakeObject();
    Json topics = Json::MakeArray();
    topics.Append("quake");
    t["topics"] = std::move(topics);
    tweets.emplace_back("u0", t.Dump(),
                        2 * kMicrosPerDay + 2 * kMicrosPerMinute + 1);
  }
  std::sort(tweets.begin(), tweets.end(),
            [](const auto& a, const auto& b) {
              return std::get<2>(a) < std::get<2>(b);
            });

  AppConfig ref_config;
  ASSERT_OK(apps::BuildHotTopicsApp(&ref_config, 2.0, 10, {}));
  ReferenceExecutor reference(ref_config);
  ASSERT_OK(reference.Start());
  for (const auto& [user, json, ts] : tweets) {
    ASSERT_OK(reference.Publish("S1", user, json, ts));
  }
  ASSERT_OK(reference.Run());

  AppConfig config;
  ASSERT_OK(apps::BuildHotTopicsApp(&config, 2.0, 10, {}));
  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.threads_per_machine = 2;
  auto engine = MakeEngine(GetParam(), config, options);
  std::atomic<int> hot{0};
  if (GetParam() == EngineKind::kMuppet1) {
    static_cast<Muppet1Engine*>(engine.get())
        ->TapStream("S4", [&hot](const Event&) { hot.fetch_add(1); });
  } else {
    static_cast<Muppet2Engine*>(engine.get())
        ->TapStream("S4", [&hot](const Event&) { hot.fetch_add(1); });
  }
  ASSERT_OK(engine->Start());
  for (const auto& [user, json, ts] : tweets) {
    ASSERT_OK(engine->Publish("S1", user, json, ts));
    ASSERT_OK(engine->Drain());  // lockstep
  }
  EXPECT_EQ(static_cast<size_t>(hot.load()),
            reference.StreamLog("S4").size());
  EXPECT_GT(hot.load(), 0) << "the planted burst must be detected";
  ASSERT_OK(engine->Stop());
}

INSTANTIATE_TEST_SUITE_P(Engines, ParityTest,
                         ::testing::Values(EngineKind::kMuppet1,
                                           EngineKind::kMuppet2),
                         [](const auto& info) {
                           return info.param == EngineKind::kMuppet1
                                      ? "Muppet1"
                                      : "Muppet2";
                         });

}  // namespace
}  // namespace muppet
