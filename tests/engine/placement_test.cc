#include "engine/placement.h"

#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(PlacementTest, EmptyAdvisorAnalyzesToZero) {
  PlacementAdvisor advisor(4);
  HashRing ring;
  ring.AddWorker("U1", WorkerRef{0, 0});
  const auto analysis = advisor.AnalyzeRing(ring);
  EXPECT_EQ(analysis.total_events, 0);
  EXPECT_EQ(analysis.CrossTrafficFraction(), 0.0);
}

TEST(PlacementTest, RingAnalysisCountsCrossTraffic) {
  PlacementAdvisor advisor(2);
  HashRing ring;
  ring.AddWorker("U1", WorkerRef{0, 0});
  ring.AddWorker("U1", WorkerRef{1, 0});
  // Find a key owned by machine 0 and one owned by machine 1.
  Bytes key_on_0, key_on_1;
  for (int i = 0; i < 1000 && (key_on_0.empty() || key_on_1.empty()); ++i) {
    const Bytes key = "k" + std::to_string(i);
    const MachineId owner = ring.Route("U1", key, {}).value().machine;
    if (owner == 0 && key_on_0.empty()) key_on_0 = key;
    if (owner == 1 && key_on_1.empty()) key_on_1 = key;
  }
  ASSERT_FALSE(key_on_0.empty());
  ASSERT_FALSE(key_on_1.empty());

  // All events for key_on_0 originate on machine 0 (local), all events
  // for key_on_1 also originate on machine 0 (remote).
  advisor.ObserveFlow(0, "U1", key_on_0, 100);
  advisor.ObserveFlow(0, "U1", key_on_1, 300);
  const auto analysis = advisor.AnalyzeRing(ring);
  EXPECT_EQ(analysis.total_events, 400);
  EXPECT_EQ(analysis.cross_machine_events, 300);
  EXPECT_DOUBLE_EQ(analysis.CrossTrafficFraction(), 0.75);
  EXPECT_EQ(analysis.machine_load[0], 100);
  EXPECT_EQ(analysis.machine_load[1], 300);
}

TEST(PlacementTest, ProposalPrefersLocality) {
  PlacementAdvisor advisor(2, /*balance_slack=*/1.0);
  // Two keys, each overwhelmingly sourced from one machine.
  advisor.ObserveFlow(0, "U1", "alpha", 900);
  advisor.ObserveFlow(1, "U1", "alpha", 100);
  advisor.ObserveFlow(1, "U1", "beta", 800);
  advisor.ObserveFlow(0, "U1", "beta", 200);

  PlacementAdvisor::Analysis analysis;
  const auto proposal = advisor.Propose(&analysis);
  ASSERT_EQ(proposal.size(), 2u);
  for (const auto& a : proposal) {
    if (a.key == "alpha") {
      EXPECT_EQ(a.machine, 0);
    }
    if (a.key == "beta") {
      EXPECT_EQ(a.machine, 1);
    }
  }
  EXPECT_EQ(analysis.cross_machine_events, 300);  // the minority flows
  EXPECT_EQ(analysis.total_events, 2000);
}

TEST(PlacementTest, BalanceCapSpillsHotKeys) {
  // With zero slack, one machine cannot hold everything even if locality
  // wants it to.
  PlacementAdvisor advisor(2, /*balance_slack=*/0.0);
  advisor.ObserveFlow(0, "U1", "hot1", 500);
  advisor.ObserveFlow(0, "U1", "hot2", 500);
  PlacementAdvisor::Analysis analysis;
  const auto proposal = advisor.Propose(&analysis);
  ASSERT_EQ(proposal.size(), 2u);
  EXPECT_NE(proposal[0].machine, proposal[1].machine)
      << "the cap must force one key off the preferred machine";
  EXPECT_EQ(analysis.machine_load[0], 500);
  EXPECT_EQ(analysis.machine_load[1], 500);
}

TEST(PlacementTest, ProposalNeverWorseThanAllRemote) {
  PlacementAdvisor advisor(4, 0.5);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    advisor.ObserveFlow(static_cast<MachineId>(rng.Uniform(4)), "U1",
                        "k" + std::to_string(i % 50),
                        static_cast<int64_t>(1 + rng.Uniform(100)));
  }
  PlacementAdvisor::Analysis proposed;
  advisor.Propose(&proposed);
  EXPECT_LT(proposed.cross_machine_events, proposed.total_events);

  // And not worse than the hash ring's oblivious placement.
  HashRing ring;
  for (int m = 0; m < 4; ++m) ring.AddWorker("U1", WorkerRef{m, 0});
  const auto hashed = advisor.AnalyzeRing(ring);
  EXPECT_LE(proposed.cross_machine_events, hashed.cross_machine_events)
      << "locality-aware placement should not increase traffic";
}

}  // namespace
}  // namespace muppet
