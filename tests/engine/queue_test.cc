#include "engine/queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

RoutedEvent Item(const std::string& function, int i) {
  RoutedEvent re;
  re.function = function;
  re.event.key = "k" + std::to_string(i);
  re.event.seq = static_cast<uint64_t>(i);
  return re;
}

TEST(EventQueueTest, FifoOrder) {
  EventQueue queue(10);
  for (int i = 0; i < 5; ++i) ASSERT_OK(queue.TryPush(Item("f", i)));
  RoutedEvent out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out.event.seq, static_cast<uint64_t>(i));
  }
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(EventQueueTest, DeclinesWhenFull) {
  EventQueue queue(3);
  for (int i = 0; i < 3; ++i) ASSERT_OK(queue.TryPush(Item("f", i)));
  Status s = queue.TryPush(Item("f", 3));
  EXPECT_TRUE(s.IsResourceExhausted()) << "full queue must decline (§4.3)";
  // Popping frees a slot.
  RoutedEvent out;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_OK(queue.TryPush(Item("f", 4)));
}

TEST(EventQueueTest, StopRefusesPushesDrainsPops) {
  EventQueue queue(10);
  ASSERT_OK(queue.TryPush(Item("f", 1)));
  queue.Stop();
  EXPECT_EQ(queue.TryPush(Item("f", 2)).code(), StatusCode::kAborted);
  RoutedEvent out;
  EXPECT_TRUE(queue.Pop(&out));   // remaining item drains
  EXPECT_FALSE(queue.Pop(&out));  // then Pop unblocks with false
}

TEST(EventQueueTest, BlockingPopWakesOnPush) {
  EventQueue queue(10);
  std::atomic<bool> got{false};
  std::thread popper([&] {
    RoutedEvent out;
    if (queue.Pop(&out)) got.store(true);
  });
  SystemClock::Default()->SleepFor(10000);
  ASSERT_OK(queue.TryPush(Item("f", 1)));
  popper.join();
  EXPECT_TRUE(got.load());
}

TEST(EventQueueTest, ClearDiscardsAndCounts) {
  EventQueue queue(10);
  for (int i = 0; i < 7; ++i) ASSERT_OK(queue.TryPush(Item("f", i)));
  EXPECT_EQ(queue.Clear(), 7u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, ZeroCapacityClampedToOne) {
  EventQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  ASSERT_OK(queue.TryPush(Item("f", 1)));
  EXPECT_TRUE(queue.TryPush(Item("f", 2)).IsResourceExhausted());
}

TEST(EventQueueTest, MultiProducerMultiConsumer) {
  EventQueue queue(128);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 2000;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      RoutedEvent out;
      while (queue.Pop(&out)) consumed.fetch_add(1);
    });
  }
  std::atomic<int> produced{0};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!queue.TryPush(Item("f", i)).ok()) {
          std::this_thread::yield();
        }
        produced.fetch_add(1);
      }
    });
  }
  // Join producers (the last kProducers threads).
  for (size_t i = kConsumers; i < threads.size(); ++i) threads[i].join();
  while (consumed.load() < produced.load()) std::this_thread::yield();
  queue.Stop();
  for (int c = 0; c < kConsumers; ++c) threads[static_cast<size_t>(c)].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(EventQueueTest, TryPushMoveLeavesItemIntactOnDecline) {
  EventQueue queue(1);
  ASSERT_OK(queue.TryPush(Item("f", 0)));
  RoutedEvent re = Item("g", 7);
  Status s = queue.TryPushMove(&re);
  ASSERT_TRUE(s.IsResourceExhausted());
  // The declined item must still be offerable to another queue.
  EXPECT_EQ(re.function, "g");
  EXPECT_EQ(re.event.key, "k7");
  EventQueue other(1);
  ASSERT_OK(other.TryPushMove(&re));
  RoutedEvent out;
  ASSERT_TRUE(other.TryPop(&out));
  EXPECT_EQ(out.event.key, "k7");
}

TEST(EventQueueTest, PushBatchAllOrNothing) {
  EventQueue queue(4);
  ASSERT_OK(queue.TryPush(Item("f", 0)));
  std::vector<RoutedEvent> batch;
  for (int i = 1; i <= 4; ++i) batch.push_back(Item("f", i));
  // 1 queued + 4 incoming > capacity 4: nothing may be taken.
  Status s = queue.TryPushBatch(&batch);
  ASSERT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(batch.size(), 4u) << "declined batch must be left intact";
  EXPECT_EQ(queue.size(), 1u);
  batch.pop_back();
  ASSERT_OK(queue.TryPushBatch(&batch));
  EXPECT_TRUE(batch.empty()) << "accepted batch is consumed";
  EXPECT_EQ(queue.size(), 4u);
  RoutedEvent out;
  for (int i = 0; i <= 3; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out.event.seq, static_cast<uint64_t>(i)) << "FIFO across batch";
  }
}

TEST(EventQueueTest, PopBatchDrainsUpToMax) {
  EventQueue queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_OK(queue.TryPush(Item("f", i)));
  std::vector<RoutedEvent> out;
  ASSERT_TRUE(queue.PopBatch(&out, 4));
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].event.seq, static_cast<uint64_t>(i));
  }
  out.clear();
  ASSERT_TRUE(queue.PopBatch(&out, 100));
  EXPECT_EQ(out.size(), 6u) << "takes what is there, does not wait for max";
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, PopBatchUnblocksOnStop) {
  EventQueue queue(16);
  std::atomic<bool> returned_false{false};
  std::thread popper([&] {
    std::vector<RoutedEvent> out;
    if (!queue.PopBatch(&out, 8)) returned_false.store(true);
  });
  SystemClock::Default()->SleepFor(10000);
  queue.Stop();
  popper.join();
  EXPECT_TRUE(returned_false.load());
}

TEST(EventQueueTest, SizeIsLockFreeConsistent) {
  EventQueue queue(8);
  EXPECT_EQ(queue.size(), 0u);
  std::vector<RoutedEvent> batch;
  for (int i = 0; i < 3; ++i) batch.push_back(Item("f", i));
  ASSERT_OK(queue.TryPushBatch(&batch));
  EXPECT_EQ(queue.size(), 3u);
  RoutedEvent out;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Clear(), 2u);
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace muppet
