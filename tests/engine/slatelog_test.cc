// Durability plane (engine/slatelog.h; DESIGN.md §12): record/manifest
// codecs, the segmented changelog's sync/crash/torn-tail semantics via a
// fault-injecting LogDevice, checkpoint bookkeeping, the bounded dedup
// table, and engine-level crash/restart + cold-start recovery on both
// engines.
#include "engine/slatelog.h"

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::CountOf;
using ::muppet::testing::TempDir;

SlateLogRecord MakeRecord(uint64_t salt) {
  SlateLogRecord rec;
  rec.kind = static_cast<uint8_t>(salt % 3);
  rec.updater = "count" + std::to_string(salt % 7);
  rec.key = "k" + std::to_string(salt);
  rec.value = "v" + std::string(salt % 50, 'x');
  rec.ts = static_cast<Timestamp>(1000 + salt);
  rec.seq = salt * 13 + 1;
  rec.work = salt * 0x9E3779B97F4A7C15ULL;
  rec.dedup = salt % 4 == 0 ? 0 : salt * 31 + 7;
  return rec;
}

void ExpectRecordsEqual(const SlateLogRecord& a, const SlateLogRecord& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.updater, b.updater);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.ts, b.ts);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.dedup, b.dedup);
}

// ---------------------------------------------------------------------------
// Wire codecs.
// ---------------------------------------------------------------------------

TEST(SlateLogRecordCodec, RoundTrip) {
  SlateLogRecord rec = MakeRecord(5);
  rec.lsn = 42;
  Bytes wire;
  EncodeSlateLogRecord(rec, &wire);
  SlateLogRecord out;
  ASSERT_OK(DecodeSlateLogRecord(wire, &out));
  EXPECT_EQ(out.lsn, 42u);
  ExpectRecordsEqual(rec, out);
}

TEST(SlateLogRecordCodec, EmptyFieldsRoundTrip) {
  SlateLogRecord rec;  // everything defaulted / empty
  Bytes wire;
  EncodeSlateLogRecord(rec, &wire);
  SlateLogRecord out;
  ASSERT_OK(DecodeSlateLogRecord(wire, &out));
  ExpectRecordsEqual(rec, out);
}

// Seeded fuzz: random records round-trip bit-exactly, and every proper
// prefix of a valid encoding fails cleanly (no crash, no partial accept).
TEST(SlateLogRecordCodec, FuzzRoundTripAndTruncation) {
  Rng rng(0x51A7E106ull);
  for (int i = 0; i < 500; ++i) {
    SlateLogRecord rec = MakeRecord(rng.Next() % 1000);
    rec.lsn = rng.Next();
    Bytes wire;
    EncodeSlateLogRecord(rec, &wire);
    SlateLogRecord out;
    ASSERT_OK(DecodeSlateLogRecord(wire, &out));
    EXPECT_EQ(rec.lsn, out.lsn);
    ExpectRecordsEqual(rec, out);

    if (!wire.empty()) {
      const size_t cut = rng.Uniform(wire.size());
      SlateLogRecord trunc;
      EXPECT_FALSE(
          DecodeSlateLogRecord(BytesView(wire.data(), cut), &trunc).ok())
          << "prefix of length " << cut << "/" << wire.size()
          << " decoded successfully";
    }
  }
}

TEST(CheckpointManifestCodec, RoundTripAndTruncation) {
  CheckpointManifest manifest;
  manifest.machine = 3;
  manifest.lsn = 987654321;
  manifest.segment = 17;
  manifest.ts = 123456789;
  Bytes wire;
  EncodeCheckpointManifest(manifest, &wire);
  CheckpointManifest out;
  ASSERT_OK(DecodeCheckpointManifest(wire, &out));
  EXPECT_EQ(out.machine, 3u);
  EXPECT_EQ(out.lsn, 987654321u);
  EXPECT_EQ(out.segment, 17u);
  EXPECT_EQ(out.ts, 123456789);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    CheckpointManifest trunc;
    EXPECT_FALSE(
        DecodeCheckpointManifest(BytesView(wire.data(), cut), &trunc).ok());
  }
}

// ---------------------------------------------------------------------------
// Fault-injecting LogDevice shim: wraps StdioLogDevice but can truncate or
// bit-flip a scripted append on its way to the file, modeling a torn write
// that reached disk partially or corrupted.
// ---------------------------------------------------------------------------

class FaultyLogDevice : public LogDevice {
 public:
  enum class Fault { kNone, kTruncateFrame, kBitFlipFrame };

  // Shared script: fault the `fault_at`-th Write() (0-based) across the
  // device instances a factory hands out.
  struct Script {
    Fault fault = Fault::kNone;
    int fault_at = -1;
    int writes_seen = 0;
  };

  explicit FaultyLogDevice(Script* script) : script_(script) {}

  Status Open(const std::string& path) override { return inner_.Open(path); }

  Status Write(BytesView frame) override {
    const int index = script_->writes_seen++;
    if (index == script_->fault_at) {
      if (script_->fault == Fault::kTruncateFrame) {
        // A torn write: only the first half of the frame reaches the
        // device, then the "machine" dies on the spot.
        (void)inner_.Write(frame.substr(0, frame.size() / 2));
        (void)inner_.Sync();
        return Status::IOError("faulty device: torn write");
      }
      if (script_->fault == Fault::kBitFlipFrame) {
        Bytes mangled(frame);
        mangled[mangled.size() / 2] ^= 0x40;
        Status s = inner_.Write(mangled);
        if (s.ok()) s = inner_.Sync();
        return s;
      }
    }
    return inner_.Write(frame);
  }

  Status Sync() override { return inner_.Sync(); }
  Status Close() override { return inner_.Close(); }
  void CrashClose() override { inner_.CrashClose(); }

 private:
  StdioLogDevice inner_;
  Script* script_;
};

SlateChangelog::Options FaultyOptions(FaultyLogDevice::Script* script,
                                      uint32_t sync_every = 1) {
  SlateChangelog::Options o;
  o.sync_every_records = sync_every;
  o.device_factory = [script] {
    return std::make_unique<FaultyLogDevice>(script);
  };
  return o;
}

std::vector<SlateLogRecord> ReplayAll(const std::string& dir,
                                      uint64_t machine, uint64_t from_lsn,
                                      SlateLogReplayStats* stats) {
  std::vector<SlateLogRecord> out;
  SlateLogReplayStats local;
  if (stats == nullptr) stats = &local;
  EXPECT_OK(SlateChangelog::Replay(
      dir, machine, from_lsn,
      [&out](const SlateLogRecord& rec) { out.push_back(rec); }, stats));
  return out;
}

// ---------------------------------------------------------------------------
// Changelog: append / sync / crash / replay.
// ---------------------------------------------------------------------------

TEST(SlateChangelog, AppendReplayRoundTrip) {
  TempDir dir;
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  std::vector<SlateLogRecord> written;
  for (uint64_t i = 0; i < 20; ++i) {
    SlateLogRecord rec = MakeRecord(i);
    Result<uint64_t> lsn = log.Append(rec);
    ASSERT_OK(lsn);
    EXPECT_EQ(lsn.value(), i + 1);  // lsns are dense from 1
    rec.lsn = lsn.value();
    written.push_back(std::move(rec));
  }
  ASSERT_OK(log.Close());

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 0, &stats);
  ASSERT_EQ(replayed.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replayed[i].lsn, written[i].lsn);
    ExpectRecordsEqual(replayed[i], written[i]);
  }
  EXPECT_EQ(stats.records, 20u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(SlateChangelog, ReplayRespectsFloor) {
  TempDir dir;
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 10; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  ASSERT_OK(log.Close());

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 7, &stats);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed.front().lsn, 8u);
  EXPECT_EQ(stats.skipped, 7u);
}

TEST(SlateChangelog, CrashLosesOnlyTheUnsyncedTail) {
  TempDir dir;
  SlateChangelog::Options o;
  o.sync_every_records = 8;
  SlateChangelog log(dir.path(), 0, o);
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 20; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  // Appends 1..16 crossed two sync boundaries; 17..20 sit in the buffer.
  EXPECT_EQ(log.last_lsn(), 20u);
  EXPECT_EQ(log.synced_lsn(), 16u);
  log.CrashClose();

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 0, &stats);
  EXPECT_EQ(replayed.size(), 16u);
  // The buffered tail never reached the file, so the tail is clean, not
  // torn.
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(SlateChangelog, SyncEveryRecordSurvivesCrashCompletely) {
  TempDir dir;
  SlateChangelog::Options o;
  o.sync_every_records = 1;  // the kExactlyOnce setting
  SlateChangelog log(dir.path(), 0, o);
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 13; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  EXPECT_EQ(log.synced_lsn(), 13u);
  log.CrashClose();

  EXPECT_EQ(ReplayAll(dir.path(), 0, 0, nullptr).size(), 13u);
}

TEST(SlateChangelog, ExplicitSyncMakesBufferedTailDurable) {
  TempDir dir;
  SlateChangelog::Options o;
  o.sync_every_records = 100;
  SlateChangelog log(dir.path(), 0, o);
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 5; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  EXPECT_EQ(log.synced_lsn(), 0u);
  ASSERT_OK(log.Sync());
  EXPECT_EQ(log.synced_lsn(), 5u);
  log.CrashClose();
  EXPECT_EQ(ReplayAll(dir.path(), 0, 0, nullptr).size(), 5u);
}

TEST(SlateChangelog, ReopenContinuesLsnSequence) {
  TempDir dir;
  {
    SlateChangelog log(dir.path(), 0, {});
    ASSERT_OK(log.Open());
    for (uint64_t i = 0; i < 6; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
    ASSERT_OK(log.Close());
  }
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  Result<uint64_t> lsn = log.Append(MakeRecord(99));
  ASSERT_OK(lsn);
  EXPECT_EQ(lsn.value(), 7u);
  ASSERT_OK(log.Close());
  EXPECT_EQ(ReplayAll(dir.path(), 0, 0, nullptr).size(), 7u);
}

TEST(SlateChangelog, MachinesAreIsolatedWithinOneDir) {
  TempDir dir;
  SlateChangelog a(dir.path(), 0, {});
  SlateChangelog b(dir.path(), 1, {});
  ASSERT_OK(a.Open());
  ASSERT_OK(b.Open());
  ASSERT_OK(a.Append(MakeRecord(1)));
  ASSERT_OK(b.Append(MakeRecord(2)));
  ASSERT_OK(b.Append(MakeRecord(3)));
  ASSERT_OK(a.Close());
  ASSERT_OK(b.Close());
  EXPECT_EQ(ReplayAll(dir.path(), 0, 0, nullptr).size(), 1u);
  EXPECT_EQ(ReplayAll(dir.path(), 1, 0, nullptr).size(), 2u);
}

// ---------------------------------------------------------------------------
// Torn-write / truncated-tail recovery.
// ---------------------------------------------------------------------------

TEST(SlateChangelog, TornWriteMidAppendTruncatesCleanly) {
  TempDir dir;
  FaultyLogDevice::Script script;
  script.fault = FaultyLogDevice::Fault::kTruncateFrame;
  script.fault_at = 7;  // the 8th record's frame is torn in half
  SlateChangelog log(dir.path(), 0, FaultyOptions(&script));
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 7; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  EXPECT_FALSE(log.Append(MakeRecord(7)).ok());
  log.CrashClose();

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 0, &stats);
  EXPECT_EQ(replayed.size(), 7u);
  EXPECT_TRUE(stats.truncated_tail);

  // Recovery continues past the torn tail: a fresh changelog reopens the
  // directory (truncating the torn frame) and keeps appending with a
  // continuous lsn sequence.
  SlateChangelog recovered(dir.path(), 0, {});
  ASSERT_OK(recovered.Open());
  Result<uint64_t> lsn = recovered.Append(MakeRecord(8));
  ASSERT_OK(lsn);
  EXPECT_EQ(lsn.value(), 8u);
  ASSERT_OK(recovered.Close());

  // The post-recovery append must be reachable: had the torn frame been
  // left in place, replay would stop at it and lose all later history.
  SlateLogReplayStats after;
  replayed = ReplayAll(dir.path(), 0, 0, &after);
  ASSERT_EQ(replayed.size(), 8u);
  EXPECT_EQ(replayed.back().lsn, 8u);
  EXPECT_FALSE(after.truncated_tail);
}

TEST(SlateChangelog, ReopenTruncatesBitFlippedActiveTail) {
  TempDir dir;
  FaultyLogDevice::Script script;
  script.fault = FaultyLogDevice::Fault::kBitFlipFrame;
  script.fault_at = 4;  // the 5th record's frame is corrupted on disk
  {
    SlateChangelog log(dir.path(), 0, FaultyOptions(&script));
    ASSERT_OK(log.Open());
    for (uint64_t i = 0; i < 8; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
    log.CrashClose();
  }
  // Reopen truncates at the last intact frame (records 5..8 behind the
  // flip were unreachable anyway), so new appends land on a clean tail.
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  Result<uint64_t> lsn = log.Append(MakeRecord(50));
  ASSERT_OK(lsn);
  ASSERT_OK(log.Close());

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 0, &stats);
  ASSERT_EQ(replayed.size(), 5u);
  EXPECT_EQ(replayed.back().lsn, lsn.value());
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(SlateChangelog, BitFlippedFrameStopsReplayAtTheFlip) {
  TempDir dir;
  FaultyLogDevice::Script script;
  script.fault = FaultyLogDevice::Fault::kBitFlipFrame;
  script.fault_at = 5;  // the 6th record's frame is corrupted on disk
  SlateChangelog log(dir.path(), 0, FaultyOptions(&script));
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 9; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  log.CrashClose();

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 0, &stats);
  // The crc catches the flip; replay keeps the intact prefix and refuses
  // to guess past it (records 7..9 are unreachable behind the bad frame).
  EXPECT_EQ(replayed.size(), 5u);
  EXPECT_TRUE(stats.truncated_tail);
}

TEST(SlateChangelog, TruncatedSegmentFileReplaysThePrefix) {
  TempDir dir;
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 10; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  ASSERT_OK(log.Close());

  // Chop a few bytes off the tail, as a crashed kernel write-back would.
  const std::string path =
      SlateChangelog::SegmentPath(dir.path(), 0, log.active_segment());
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(path, size - 3, ec);
  ASSERT_FALSE(ec);

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 0, &stats);
  EXPECT_EQ(replayed.size(), 9u);
  EXPECT_TRUE(stats.truncated_tail);
}

// ---------------------------------------------------------------------------
// Segments + checkpoints.
// ---------------------------------------------------------------------------

TEST(SlateChangelog, RotateAndDropCoveredSegments) {
  TempDir dir;
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 5; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  ASSERT_OK(log.RotateSegment());
  for (uint64_t i = 5; i < 10; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  ASSERT_OK(log.RotateSegment());
  for (uint64_t i = 10; i < 12; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  EXPECT_EQ(log.segment_count(), 3u);

  // lsn 5 covers exactly the first segment; the second (max lsn 10) must
  // survive a cursor at 7.
  Result<int> dropped = log.DropSegmentsCoveredBy(7);
  ASSERT_OK(dropped);
  EXPECT_EQ(dropped.value(), 1);
  EXPECT_EQ(log.segment_count(), 2u);
  ASSERT_OK(log.Close());

  // Replay across the remaining segments from the cursor yields 8..12.
  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 7, &stats);
  ASSERT_EQ(replayed.size(), 5u);
  EXPECT_EQ(replayed.front().lsn, 8u);
  EXPECT_EQ(replayed.back().lsn, 12u);
  EXPECT_EQ(stats.segments, 2u);
}

TEST(SlateChangelog, DropNeverTouchesTheActiveSegment) {
  TempDir dir;
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 4; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  // Cursor far past everything: the active segment must still survive.
  Result<int> dropped = log.DropSegmentsCoveredBy(1000);
  ASSERT_OK(dropped);
  EXPECT_EQ(dropped.value(), 0);
  EXPECT_EQ(log.segment_count(), 1u);
  ASSERT_OK(log.Close());
}

TEST(SlateChangelog, LsnSequenceFlooredByManifestAfterCheckpointDrop) {
  TempDir dir;
  {
    SlateChangelog log(dir.path(), 0, {});
    ASSERT_OK(log.Open());
    for (uint64_t i = 0; i < 10; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
    ASSERT_OK(log.Sync());

    // A full checkpoint cycle: cursor at 10, rotate to a fresh segment,
    // drop everything covered. The active segment is now empty.
    CheckpointManifest manifest;
    manifest.machine = 0;
    manifest.lsn = 10;
    ASSERT_OK(log.RotateSegment());
    manifest.segment = log.active_segment();
    ASSERT_OK(SlateChangelog::WriteManifestFile(dir.path(), manifest));
    Result<int> dropped = log.DropSegmentsCoveredBy(10);
    ASSERT_OK(dropped);
    EXPECT_EQ(dropped.value(), 1);

    // Crash before the first synced append to the fresh segment: the only
    // trace of lsns 1..10 left on disk is the manifest cursor.
    log.CrashClose();
  }

  // Reopen must floor the sequence at the cursor — restarting at lsn 1
  // would make every new durable append invisible to replay (lsn <= 10)
  // and eligible for the next covered-segment drop.
  SlateChangelog log(dir.path(), 0, {});
  ASSERT_OK(log.Open());
  Result<uint64_t> lsn = log.Append(MakeRecord(77));
  ASSERT_OK(lsn);
  EXPECT_EQ(lsn.value(), 11u);
  ASSERT_OK(log.Close());

  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 10, &stats);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed.front().lsn, 11u);
}

TEST(SlateChangelog, CorruptMiddleSegmentDoesNotDiscardLaterSegments) {
  TempDir dir;
  FaultyLogDevice::Script script;
  script.fault = FaultyLogDevice::Fault::kBitFlipFrame;
  script.fault_at = 6;  // lsn 7: the middle segment's 2nd record
  SlateChangelog log(dir.path(), 0, FaultyOptions(&script));
  ASSERT_OK(log.Open());
  for (uint64_t i = 0; i < 5; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  ASSERT_OK(log.RotateSegment());
  for (uint64_t i = 5; i < 10; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  ASSERT_OK(log.RotateSegment());
  for (uint64_t i = 10; i < 15; ++i) ASSERT_OK(log.Append(MakeRecord(i)));
  ASSERT_OK(log.Close());

  // Segment 2 is unreadable past lsn 6 (lsns 8..10 are lost behind the
  // flip), but segment 3 is an independent file: its 5 records must
  // survive a single mid-history bit-flip.
  SlateLogReplayStats stats;
  std::vector<SlateLogRecord> replayed = ReplayAll(dir.path(), 0, 0, &stats);
  ASSERT_EQ(replayed.size(), 11u);
  EXPECT_EQ(replayed[5].lsn, 6u);
  EXPECT_EQ(replayed[6].lsn, 11u);
  EXPECT_EQ(replayed.back().lsn, 15u);
  EXPECT_EQ(stats.corrupt_segments, 1u);
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(SlateChangelog, ManifestFileRoundTripAndMissingIsZero) {
  TempDir dir;
  CheckpointManifest manifest;
  ASSERT_OK(SlateChangelog::ReadManifestFile(dir.path(), 4, &manifest));
  EXPECT_EQ(manifest.lsn, 0u);  // missing manifest -> replay everything

  manifest.machine = 4;
  manifest.lsn = 100;
  manifest.segment = 2;
  manifest.ts = 5555;
  ASSERT_OK(SlateChangelog::WriteManifestFile(dir.path(), manifest));
  manifest.lsn = 250;
  ASSERT_OK(SlateChangelog::WriteManifestFile(dir.path(), manifest));

  CheckpointManifest out;
  ASSERT_OK(SlateChangelog::ReadManifestFile(dir.path(), 4, &out));
  EXPECT_EQ(out.lsn, 250u);  // atomic overwrite: latest cursor wins
  EXPECT_EQ(out.machine, 4u);

  // A torn manifest (partial tmp+rename never happened) must not poison
  // recovery: corrupt the file and expect a clean error, not a crash.
  const std::string path = SlateChangelog::ManifestPath(dir.path(), 4);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("xx", f);
  std::fclose(f);
  EXPECT_FALSE(SlateChangelog::ReadManifestFile(dir.path(), 4, &out).ok());
}

// ---------------------------------------------------------------------------
// DedupTable.
// ---------------------------------------------------------------------------

TEST(DedupTable, DetectsDuplicates) {
  DedupTable table(8);
  EXPECT_TRUE(table.CheckAndInsert(1));
  EXPECT_FALSE(table.CheckAndInsert(1));
  EXPECT_TRUE(table.Contains(1));
  EXPECT_FALSE(table.Contains(2));
}

TEST(DedupTable, EvictsOldestExactlyAtCapacity) {
  constexpr size_t kCapacity = 16;
  DedupTable table(kCapacity);
  for (uint64_t id = 1; id <= kCapacity; ++id) {
    EXPECT_TRUE(table.CheckAndInsert(id));
  }
  EXPECT_EQ(table.size(), kCapacity);
  for (uint64_t id = 1; id <= kCapacity; ++id) EXPECT_TRUE(table.Contains(id));

  // The insert that crosses capacity evicts exactly the oldest identity.
  EXPECT_TRUE(table.CheckAndInsert(kCapacity + 1));
  EXPECT_EQ(table.size(), kCapacity);
  EXPECT_FALSE(table.Contains(1));
  for (uint64_t id = 2; id <= kCapacity + 1; ++id) {
    EXPECT_TRUE(table.Contains(id));
  }

  // A duplicate insert must not evict anything.
  EXPECT_FALSE(table.CheckAndInsert(kCapacity + 1));
  EXPECT_EQ(table.size(), kCapacity);
  EXPECT_TRUE(table.Contains(2));
}

TEST(DedupTable, RemoveUnwindsAReservation) {
  DedupTable table(4);
  EXPECT_TRUE(table.CheckAndInsert(7));
  EXPECT_TRUE(table.CheckAndInsert(8));
  // The delivery guarded by id 7 was declined: unwinding the reservation
  // lets the sender's retry through instead of deduping it.
  table.Remove(7);
  EXPECT_FALSE(table.Contains(7));
  EXPECT_TRUE(table.Contains(8));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.CheckAndInsert(7));

  table.Remove(999);  // absent id: no-op
  EXPECT_EQ(table.size(), 2u);
}

TEST(DedupTable, SeedAndClearBehaveLikeInsert) {
  DedupTable table(4);
  table.Seed(10);
  table.Seed(11);
  EXPECT_TRUE(table.Contains(10));
  EXPECT_EQ(table.size(), 2u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Contains(10));
  EXPECT_TRUE(table.CheckAndInsert(10));  // fresh after Clear
}

TEST(DedupIdentityTest, NeverZeroAndStableAcrossSeqWrap) {
  // 0 is the on-wire sentinel for "no identity"; the mixer must never
  // produce it, including at the all-zero fixpoint.
  EXPECT_NE(DedupIdentity(0, 0, 0), 0u);

  // Sequence numbers near the wrap boundary still yield distinct
  // identities (a wrapped seq must not collide with its neighbors).
  const uint64_t kMax = ~0ull;
  std::vector<uint64_t> ids;
  for (uint64_t seq : {kMax - 1, kMax, uint64_t{0}, uint64_t{1}, uint64_t{2}}) {
    ids.push_back(DedupIdentity(0xABCD, 77, seq));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], 0u);
    for (size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]) << "seq wrap collision at " << i << "," << j;
    }
  }

  // Identity is a pure function of (sid, ts, seq) — same inputs on the
  // sender and a redelivery must map to the same id.
  EXPECT_EQ(DedupIdentity(1, 2, 3), DedupIdentity(1, 2, 3));
  EXPECT_NE(DedupIdentity(1, 2, 3), DedupIdentity(1, 2, 4));
  EXPECT_NE(DedupIdentity(1, 2, 3), DedupIdentity(1, 3, 3));
  EXPECT_NE(DedupIdentity(1, 2, 3), DedupIdentity(2, 2, 3));
}

// ---------------------------------------------------------------------------
// Engine-level recovery (both engines).
// ---------------------------------------------------------------------------

template <typename EngineT>
EngineOptions DurableOptions(const std::string& dir, Consistency knob) {
  EngineOptions eo;
  eo.num_machines = 3;
  eo.durability.consistency = knob;
  eo.durability.dir = dir;
  return eo;
}

TEST(DurableEngine, StartRequiresDirWhenDurable) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions eo;
  eo.num_machines = 2;
  eo.durability.consistency = Consistency::kAtLeastOnce;  // no dir
  Muppet2Engine engine(config, eo);
  EXPECT_FALSE(engine.Start().ok());
}

TEST(DurableEngine, LossyModeWritesNothing) {
  TempDir dir;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions eo = DurableOptions<Muppet2Engine>(dir.path(),
                                                   Consistency::kLossy);
  Muppet2Engine engine(config, eo);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 5), "v", i + 1));
  }
  ASSERT_OK(engine.Drain());
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.slatelog_appends, 0);
  EXPECT_EQ(stats.slatelog_synced_records, 0);
  EXPECT_EQ(stats.checkpoints, 0);
  ASSERT_OK(engine.Stop());
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));
}

template <typename EngineT>
void CrashRestartRestoresCounts(Consistency knob) {
  TempDir dir;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions eo = DurableOptions<EngineT>(dir.path(), knob);
  // Sync cadence of 1 even below kExactlyOnce: this directed test pins
  // lossless replay; the buffered-tail bound has its own coverage above.
  eo.durability.sync_every_records = 1;
  EngineT engine(config, eo);
  ASSERT_OK(engine.Start());

  constexpr int kKeys = 8;
  constexpr int kRounds = 10;
  for (int r = 0; r < kRounds; ++r) {
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_OK(engine.Publish("in", "k" + std::to_string(k), "v",
                               r * kKeys + k + 1));
    }
  }
  ASSERT_OK(engine.Drain());
  std::map<std::string, int64_t> before;
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "k" + std::to_string(k);
    before[key] = CountOf(engine, "count", key);
    EXPECT_EQ(before[key], kRounds) << key;
  }

  // Crash a worker machine: every cached slate it owned is wiped. Replay
  // during restart must restore each one before the machine rejoins.
  ASSERT_OK(engine.CrashMachine(1));
  ASSERT_OK(engine.RestartMachine(1));
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(CountOf(engine, "count", key), before[key])
        << key << " after crash/restart";
  }
  EXPECT_GE(engine.Stats().slatelog_replays, 1);

  // The recovered machine keeps serving: counts advance past the crash.
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(k), "v", 10000 + k));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(CountOf(engine, "count", key), kRounds + 1) << key;
  }
  ASSERT_OK(engine.Stop());
}

TEST(DurableEngine, Muppet2CrashRestartRestoresCounts) {
  CrashRestartRestoresCounts<Muppet2Engine>(Consistency::kExactlyOnce);
}

TEST(DurableEngine, Muppet1CrashRestartRestoresCounts) {
  CrashRestartRestoresCounts<Muppet1Engine>(Consistency::kExactlyOnce);
}

TEST(DurableEngine, Muppet2AtLeastOnceCrashRestartRestoresCounts) {
  CrashRestartRestoresCounts<Muppet2Engine>(Consistency::kAtLeastOnce);
}

template <typename EngineT>
void ColdStartReplaysPriorRun() {
  TempDir dir;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions eo =
      DurableOptions<EngineT>(dir.path(), Consistency::kExactlyOnce);
  {
    EngineT engine(config, eo);
    ASSERT_OK(engine.Start());
    for (int i = 0; i < 40; ++i) {
      ASSERT_OK(
          engine.Publish("in", "k" + std::to_string(i % 4), "v", i + 1));
    }
    ASSERT_OK(engine.Drain());
    ASSERT_OK(engine.Stop());
  }
  // A brand-new engine over the same changelog directory: cold-start
  // replay must rebuild every slate before the first event arrives.
  EngineT engine(config, eo);
  ASSERT_OK(engine.Start());
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(CountOf(engine, "count", "k" + std::to_string(k)), 10)
        << "cold start lost k" << k;
  }
  ASSERT_OK(engine.Stop());
}

TEST(DurableEngine, Muppet2ColdStartReplaysPriorRun) {
  ColdStartReplaysPriorRun<Muppet2Engine>();
}

TEST(DurableEngine, Muppet1ColdStartReplaysPriorRun) {
  ColdStartReplaysPriorRun<Muppet1Engine>();
}

TEST(DurableEngine, RepeatedRecoveryCyclesAreIdempotent) {
  TempDir dir;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions eo =
      DurableOptions<Muppet2Engine>(dir.path(), Consistency::kExactlyOnce);
  Muppet2Engine engine(config, eo);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 3), "v", i + 1));
  }
  ASSERT_OK(engine.Drain());

  // Crash-during-replay model: replay is read-only on the changelog, so
  // a recovery interrupted by another crash is just a fresh recovery.
  // Three consecutive cycles must converge to the same counts each time.
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_OK(engine.CrashMachine(1));
    ASSERT_OK(engine.RestartMachine(1));
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(CountOf(engine, "count", "k" + std::to_string(k)), 10)
          << "cycle " << cycle << " k" << k;
    }
  }
  EXPECT_GE(engine.Stats().slatelog_replays, 3);
  ASSERT_OK(engine.Stop());
}

TEST(DurableEngine, StatusReportsDurabilityPanel) {
  TempDir dir;
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions eo =
      DurableOptions<Muppet2Engine>(dir.path(), Consistency::kExactlyOnce);
  Muppet2Engine engine(config, eo);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 4), "v", i + 1));
  }
  ASSERT_OK(engine.Drain());

  const EngineStats stats = engine.Stats();
  EXPECT_GT(stats.slatelog_appends, 0);
  // Exactly-once: every append is synced before it is acknowledged.
  EXPECT_EQ(stats.slatelog_synced_records, stats.slatelog_appends);

  bool some_lsn = false;
  for (const MachineStatus& ms : engine.MachineStatuses()) {
    EXPECT_EQ(ms.consistency, "exactly-once");
    EXPECT_EQ(ms.slatelog_lsn, ms.slatelog_synced_lsn);
    EXPECT_EQ(ms.dedup_capacity, eo.durability.dedup_capacity);
    if (ms.slatelog_lsn > 0) some_lsn = true;
  }
  EXPECT_TRUE(some_lsn);
  ASSERT_OK(engine.Stop());
}

}  // namespace
}  // namespace muppet
