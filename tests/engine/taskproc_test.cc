// Tests for the Muppet 1.0 conductor <-> task-processor protocol.
#include <string>

#include "core/slate.h"
#include "engine/muppet1.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using engine_internal::TaskProcessor;

TEST(TaskProcessorTest, MapperProducesOutputs) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.DeclareStream("mid"));
  ASSERT_OK(config.AddMapper(
      "M1", MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        (void)out.Publish("mid", e.key, "a");
        (void)out.Publish("mid", e.key, "b");
      }),
      {"in"}));

  TaskProcessor task(config, *config.FindOperator("M1"));
  Event event;
  event.stream = "in";
  event.ts = 100;
  event.key = "k";
  Bytes request, response;
  TaskProcessor::EncodeRequest(event, nullptr, &request);
  ASSERT_OK(task.Process(request, &response));

  TaskProcessor::Response decoded;
  ASSERT_OK(TaskProcessor::DecodeResponse(response, &decoded));
  ASSERT_EQ(decoded.outputs.size(), 2u);
  EXPECT_EQ(decoded.outputs[0].stream, "mid");
  EXPECT_EQ(decoded.outputs[0].value, "a");
  EXPECT_GT(decoded.outputs[0].ts, event.ts);
  EXPECT_EQ(decoded.slate_action, 0);
}

TEST(TaskProcessorTest, UpdaterFirstTouchSeesNullSlate) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  bool saw_null = false;
  ASSERT_OK(config.AddUpdater(
      "U1",
      MakeUpdaterFactory([&saw_null](PerformerUtilities& out, const Event&,
                                     const Bytes* slate) {
        saw_null = (slate == nullptr);
        (void)out.ReplaceSlate("{\"count\":1}");
      }),
      {"in"}));
  TaskProcessor task(config, *config.FindOperator("U1"));
  Event event;
  event.stream = "in";
  event.key = "k";
  Bytes request, response;
  TaskProcessor::EncodeRequest(event, nullptr, &request);
  ASSERT_OK(task.Process(request, &response));
  EXPECT_TRUE(saw_null);
  TaskProcessor::Response decoded;
  ASSERT_OK(TaskProcessor::DecodeResponse(response, &decoded));
  EXPECT_EQ(decoded.slate_action, 1);
  EXPECT_EQ(decoded.slate, "{\"count\":1}");
}

TEST(TaskProcessorTest, UpdaterReceivesSlateBytes) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  Bytes received;
  ASSERT_OK(config.AddUpdater(
      "U1",
      MakeUpdaterFactory([&received](PerformerUtilities& out, const Event&,
                                     const Bytes* slate) {
        if (slate != nullptr) received = *slate;
        (void)out.ReplaceSlate("updated");
      }),
      {"in"}));
  TaskProcessor task(config, *config.FindOperator("U1"));
  Event event;
  event.key = "k";
  const Bytes prior = "{\"count\":41}";
  Bytes request, response;
  TaskProcessor::EncodeRequest(event, &prior, &request);
  ASSERT_OK(task.Process(request, &response));
  EXPECT_EQ(received, prior);
}

TEST(TaskProcessorTest, DeleteSlateAction) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.AddUpdater(
      "U1", MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                  const Bytes*) {
        (void)out.DeleteSlate();
      }),
      {"in"}));
  TaskProcessor task(config, *config.FindOperator("U1"));
  Event event;
  event.key = "k";
  Bytes request, response;
  TaskProcessor::EncodeRequest(event, nullptr, &request);
  ASSERT_OK(task.Process(request, &response));
  TaskProcessor::Response decoded;
  ASSERT_OK(TaskProcessor::DecodeResponse(response, &decoded));
  EXPECT_EQ(decoded.slate_action, 2);
}

TEST(TaskProcessorTest, MapperCannotTouchSlates) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  Status replace_status, delete_status;
  ASSERT_OK(config.AddMapper(
      "M1",
      MakeMapperFactory([&](PerformerUtilities& out, const Event&) {
        replace_status = out.ReplaceSlate("x");
        delete_status = out.DeleteSlate();
      }),
      {"in"}));
  TaskProcessor task(config, *config.FindOperator("M1"));
  Event event;
  Bytes request, response;
  TaskProcessor::EncodeRequest(event, nullptr, &request);
  ASSERT_OK(task.Process(request, &response));
  EXPECT_EQ(replace_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(delete_status.code(), StatusCode::kFailedPrecondition);
}

TEST(TaskProcessorTest, MalformedRequestRejected) {
  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.AddMapper(
      "M1", MakeMapperFactory([](PerformerUtilities&, const Event&) {}),
      {"in"}));
  TaskProcessor task(config, *config.FindOperator("M1"));
  Bytes response;
  EXPECT_FALSE(task.Process("", &response).ok());
  EXPECT_FALSE(task.Process("\x05" "abc", &response).ok());
}

TEST(TaskProcessorTest, ResponseDecodingRejectsGarbage) {
  TaskProcessor::Response decoded;
  EXPECT_FALSE(TaskProcessor::DecodeResponse("", &decoded).ok());
  EXPECT_FALSE(TaskProcessor::DecodeResponse("\x01", &decoded).ok());
}

}  // namespace
}  // namespace muppet
