#include "engine/throttle.h"

#include "gtest/gtest.h"

namespace muppet {
namespace {

ThrottleOptions TestOptions() {
  ThrottleOptions options;
  options.step_micros = 100;
  options.max_delay_micros = 1000;
  options.halflife_micros = 1000;
  return options;
}

TEST(ThrottleTest, NoDelayWithoutSignals) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
}

TEST(ThrottleTest, SignalsAccumulateDelay) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  governor.NoteOverflow();
  governor.NoteOverflow();
  governor.NoteOverflow();
  EXPECT_EQ(governor.CurrentDelayMicros(), 300);
  EXPECT_EQ(governor.overflow_signals(), 3);
}

TEST(ThrottleTest, DelayCappedAtMax) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  for (int i = 0; i < 100; ++i) governor.NoteOverflow();
  EXPECT_EQ(governor.CurrentDelayMicros(), 1000);
}

TEST(ThrottleTest, DelayDecaysWithHalflife) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  for (int i = 0; i < 8; ++i) governor.NoteOverflow();  // 800us
  EXPECT_EQ(governor.CurrentDelayMicros(), 800);
  clock.Advance(1000);  // one halflife
  const Timestamp decayed = governor.CurrentDelayMicros();
  EXPECT_NEAR(static_cast<double>(decayed), 400.0, 40.0);
  clock.Advance(10000);  // many halflives
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
}

TEST(ThrottleTest, PaceSourceAdvancesClockByDelay) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  governor.PaceSource();
  EXPECT_EQ(clock.Now(), 0) << "no pressure, no pacing";
  for (int i = 0; i < 5; ++i) governor.NoteOverflow();
  const Timestamp before = clock.Now();
  governor.PaceSource();
  EXPECT_GT(clock.Now(), before);
}

TEST(ThrottleTest, PressureReturnsAfterNewSignals) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  governor.NoteOverflow();
  clock.Advance(100000);
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
  governor.NoteOverflow();
  EXPECT_GT(governor.CurrentDelayMicros(), 0);
}

TEST(ThrottleTest, ZeroElapsedReadsAreStable) {
  // Two reads at the same instant must agree: decay applies only to
  // elapsed time, and repeated polling (the /metrics gauge calls
  // CurrentDelayMicros too) must not itself erode the delay.
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  for (int i = 0; i < 4; ++i) governor.NoteOverflow();
  const Timestamp first = governor.CurrentDelayMicros();
  EXPECT_EQ(first, 400);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(governor.CurrentDelayMicros(), first);
  }
}

TEST(ThrottleTest, HugeForwardClockJumpDecaysCleanlyToZero) {
  // An NTP step or a VM pause can make hours pass between reads. The
  // exponent gets enormous; the result must be a clean zero, not a NaN,
  // negative, or wrapped delay.
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  for (int i = 0; i < 10; ++i) governor.NoteOverflow();
  clock.Advance(3600LL * 1000 * 1000);  // one hour: ~3.6M halflives
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
  // Pressure still accumulates normally afterwards.
  governor.NoteOverflow();
  EXPECT_EQ(governor.CurrentDelayMicros(), 100);
}

TEST(ThrottleTest, BackwardClockJumpNeverInflatesDelay) {
  // now < last_decay (clock stepped back): no decay happens, but the
  // delay must not grow either — pow(0.5, negative) would double it.
  SimulatedClock clock;
  clock.Advance(10000);
  ThrottleGovernor governor(TestOptions(), &clock);
  for (int i = 0; i < 4; ++i) governor.NoteOverflow();
  clock.Set(5000);
  EXPECT_EQ(governor.CurrentDelayMicros(), 400);
  // Once the clock moves forward again, decay resumes from the rewound
  // reference point.
  clock.Advance(1000);  // one halflife past the rewound instant
  EXPECT_NEAR(static_cast<double>(governor.CurrentDelayMicros()), 200.0, 20.0);
}

TEST(ThrottleTest, FloorClampsCurrentDelayFromBelow) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  governor.SetFloorDelayMicros(250);
  // No overflow pressure at all: the floor alone paces the source.
  EXPECT_EQ(governor.CurrentDelayMicros(), 250);
  EXPECT_EQ(governor.floor_delay_micros(), 250);

  // Overflow pressure above the floor wins...
  for (int i = 0; i < 4; ++i) governor.NoteOverflow();
  EXPECT_EQ(governor.CurrentDelayMicros(), 400);
  // ...and once it decays below the floor, the floor takes over again.
  clock.Advance(10000);
  EXPECT_EQ(governor.CurrentDelayMicros(), 250);

  // The floor does not decay: only the controller moves it.
  clock.Advance(100000);
  EXPECT_EQ(governor.CurrentDelayMicros(), 250);
  governor.SetFloorDelayMicros(0);
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
}

TEST(ThrottleTest, FloorClampedToMaxAndNonNegative) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);  // max_delay 1000
  governor.SetFloorDelayMicros(999999);
  EXPECT_EQ(governor.floor_delay_micros(), 1000);
  governor.SetFloorDelayMicros(-7);
  EXPECT_EQ(governor.floor_delay_micros(), 0);
}

}  // namespace
}  // namespace muppet
