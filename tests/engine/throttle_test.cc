#include "engine/throttle.h"

#include "gtest/gtest.h"

namespace muppet {
namespace {

ThrottleOptions TestOptions() {
  ThrottleOptions options;
  options.step_micros = 100;
  options.max_delay_micros = 1000;
  options.halflife_micros = 1000;
  return options;
}

TEST(ThrottleTest, NoDelayWithoutSignals) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
}

TEST(ThrottleTest, SignalsAccumulateDelay) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  governor.NoteOverflow();
  governor.NoteOverflow();
  governor.NoteOverflow();
  EXPECT_EQ(governor.CurrentDelayMicros(), 300);
  EXPECT_EQ(governor.overflow_signals(), 3);
}

TEST(ThrottleTest, DelayCappedAtMax) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  for (int i = 0; i < 100; ++i) governor.NoteOverflow();
  EXPECT_EQ(governor.CurrentDelayMicros(), 1000);
}

TEST(ThrottleTest, DelayDecaysWithHalflife) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  for (int i = 0; i < 8; ++i) governor.NoteOverflow();  // 800us
  EXPECT_EQ(governor.CurrentDelayMicros(), 800);
  clock.Advance(1000);  // one halflife
  const Timestamp decayed = governor.CurrentDelayMicros();
  EXPECT_NEAR(static_cast<double>(decayed), 400.0, 40.0);
  clock.Advance(10000);  // many halflives
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
}

TEST(ThrottleTest, PaceSourceAdvancesClockByDelay) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  governor.PaceSource();
  EXPECT_EQ(clock.Now(), 0) << "no pressure, no pacing";
  for (int i = 0; i < 5; ++i) governor.NoteOverflow();
  const Timestamp before = clock.Now();
  governor.PaceSource();
  EXPECT_GT(clock.Now(), before);
}

TEST(ThrottleTest, PressureReturnsAfterNewSignals) {
  SimulatedClock clock;
  ThrottleGovernor governor(TestOptions(), &clock);
  governor.NoteOverflow();
  clock.Advance(100000);
  EXPECT_EQ(governor.CurrentDelayMicros(), 0);
  governor.NoteOverflow();
  EXPECT_GT(governor.CurrentDelayMicros(), 0);
}

}  // namespace
}  // namespace muppet
