// End-to-end checks of the tracing tentpole: trace context survives both
// wire codecs, and a sampled event's full path — publish, queue wait,
// operator exec, slate fetch, cross-machine hop, downstream operator —
// can be reconstructed from the per-machine trace sinks.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/trace.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "engine/wire.h"
#include "gtest/gtest.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::BuildFanoutApp;

TEST(TraceWireTest, SingleEventCodecRoundTripsTraceContext) {
  RoutedEvent re;
  re.function = "count";
  re.event.stream = "in";
  re.event.key.assign("k");
  re.event.value.assign("v");
  re.event.ts = 7;
  re.event.trace.trace_id = 0xABCDEF0123456789ULL;
  re.event.trace.parent_span = 42;

  Bytes wire;
  EncodeRoutedEvent(re, &wire);
  RoutedEvent decoded;
  ASSERT_OK(DecodeRoutedEvent(wire, &decoded));
  EXPECT_EQ(decoded.function, "count");
  EXPECT_TRUE(decoded.event.trace == re.event.trace);
}

TEST(TraceWireTest, UntracedEventsRoundTripWithZeroContext) {
  RoutedEvent re;
  re.function = "f";
  re.event.stream = "in";
  Bytes wire;
  EncodeRoutedEvent(re, &wire);
  RoutedEvent decoded;
  decoded.event.trace.trace_id = 999;  // must be overwritten
  ASSERT_OK(DecodeRoutedEvent(wire, &decoded));
  EXPECT_FALSE(decoded.event.trace.sampled());
  EXPECT_EQ(decoded.event.trace.parent_span, 0u);
}

TEST(TraceWireTest, BatchFrameRoundTripsTraceContextPerEvent) {
  std::vector<RoutedEvent> batch(3);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].function_id = static_cast<int32_t>(i);
    batch[i].work = 100 + i;
    batch[i].event.stream = "in";
    batch[i].event.key.assign("k" + std::to_string(i));
  }
  batch[1].event.trace.trace_id = 77;  // only the middle event is traced
  batch[1].event.trace.parent_span = 5;

  Bytes frame;
  EncodeRoutedEventFrame(batch, &frame);
  RoutedEventFrameReader reader(frame);
  RoutedEvent out;
  ASSERT_TRUE(reader.Next(&out));
  EXPECT_FALSE(out.event.trace.sampled());
  ASSERT_TRUE(reader.Next(&out));
  EXPECT_EQ(out.event.trace.trace_id, 77u);
  EXPECT_EQ(out.event.trace.parent_span, 5u);
  ASSERT_TRUE(reader.Next(&out));
  EXPECT_FALSE(out.event.trace.sampled());
  EXPECT_FALSE(reader.Next(&out));
  EXPECT_FALSE(reader.corrupt());
}

// The fault signature must not see the trace context: whether an event is
// sampled can never change which faults it draws (chaos determinism).
TEST(TraceWireTest, FaultSignatureIgnoresTraceContext) {
  RoutedEvent a;
  a.function = "f";
  a.event.stream = "in";
  a.event.key.assign("k");
  RoutedEvent b = a;
  b.event.trace.trace_id = 123;
  b.event.trace.parent_span = 456;
  EXPECT_EQ(EventFaultSignature(a), EventFaultSignature(b));
}

// Gather every machine's spans, grouped by trace id.
std::map<uint64_t, std::vector<Span>> CollectSpans(Engine& engine,
                                                   int num_machines) {
  std::map<uint64_t, std::vector<Span>> by_trace;
  for (MachineId m = 0; m < num_machines; ++m) {
    TraceSink* sink = engine.trace_sink(m);
    if (sink == nullptr) continue;
    for (const auto& record : sink->Recent()) {
      for (const Span& span : record.spans) {
        by_trace[span.trace_id].push_back(span);
      }
    }
  }
  return by_trace;
}

bool HasKind(const std::vector<Span>& spans, SpanKind kind) {
  for (const Span& s : spans) {
    if (s.kind == kind) return true;
  }
  return false;
}

TEST(TraceIntegrationTest, Muppet2FullPathReconstruction) {
  AppConfig config;
  BuildFanoutApp(&config);  // in -> split (mapper, x2) -> count (updater)
  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.trace.sample_period = 1;  // trace everything
  options.trace.recent_traces = 1024;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  constexpr int kKeys = 16;
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(
        engine.Publish("in", "key" + std::to_string(i % kKeys), "", i + 1));
  }
  ASSERT_OK(engine.Drain());

  const auto by_trace = CollectSpans(engine, 2);
  EXPECT_EQ(by_trace.size(), 64u);  // every publish became a trace

  bool saw_cross_machine_path = false;
  for (const auto& [trace_id, spans] : by_trace) {
    // Exactly one root: the external publish, machine 0, no parent.
    int roots = 0;
    uint64_t root_id = 0;
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kPublish) {
        ++roots;
        root_id = s.span_id;
        EXPECT_EQ(s.parent_span, 0u);
        EXPECT_EQ(s.machine, 0);
        EXPECT_EQ(s.name, "in");
      }
    }
    ASSERT_EQ(roots, 1) << "trace " << trace_id;

    // The pipeline ran: queue waits, a mapper exec parented to the root,
    // updater execs parented to the mapper exec, slate fetches parented
    // to an updater exec.
    EXPECT_TRUE(HasKind(spans, SpanKind::kQueueWait));
    std::set<uint64_t> map_execs;
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kMapExec) {
        EXPECT_EQ(s.parent_span, root_id);
        EXPECT_EQ(s.name, "split");
        map_execs.insert(s.span_id);
      }
    }
    EXPECT_FALSE(map_execs.empty());
    std::set<uint64_t> update_execs;
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kUpdateExec) {
        EXPECT_TRUE(map_execs.count(s.parent_span) == 1)
            << "updater exec must parent to the mapper exec that emitted "
               "its event";
        EXPECT_EQ(s.name, "count");
        update_execs.insert(s.span_id);
      }
    }
    EXPECT_FALSE(update_execs.empty());
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kSlateFetch) {
        EXPECT_TRUE(update_execs.count(s.parent_span) == 1);
        EXPECT_FALSE(s.note.empty());
      }
    }

    // A trace with a net hop must show activity on the hop's destination
    // machine: the reconstructed path crosses >= 2 machines.
    for (const Span& hop : spans) {
      if (hop.kind != SpanKind::kNetHop) continue;
      ASSERT_EQ(hop.name.substr(0, 3), "->m");
      const int dest = std::stoi(hop.name.substr(3));
      EXPECT_NE(dest, hop.machine);
      for (const Span& s : spans) {
        if (s.machine == dest && (s.kind == SpanKind::kQueueWait ||
                                  s.kind == SpanKind::kMapExec ||
                                  s.kind == SpanKind::kUpdateExec)) {
          saw_cross_machine_path = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_cross_machine_path)
      << "expected at least one trace whose path crosses two machines";
  ASSERT_OK(engine.Stop());
}

TEST(TraceIntegrationTest, Muppet1RecordsAllSpanKinds) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.trace.sample_period = 1;
  options.trace.recent_traces = 1024;
  Muppet1Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 32; ++i) {
    ASSERT_OK(engine.Publish("in", "key" + std::to_string(i % 8), "", i + 1));
  }
  ASSERT_OK(engine.Drain());

  const auto by_trace = CollectSpans(engine, 2);
  EXPECT_EQ(by_trace.size(), 32u);
  bool saw_net_hop = false;
  for (const auto& [trace_id, spans] : by_trace) {
    EXPECT_TRUE(HasKind(spans, SpanKind::kPublish)) << trace_id;
    EXPECT_TRUE(HasKind(spans, SpanKind::kQueueWait)) << trace_id;
    EXPECT_TRUE(HasKind(spans, SpanKind::kUpdateExec)) << trace_id;
    EXPECT_TRUE(HasKind(spans, SpanKind::kSlateFetch)) << trace_id;
    if (HasKind(spans, SpanKind::kNetHop)) saw_net_hop = true;
    // Slate fetches hang off the updater exec.
    std::set<uint64_t> update_execs;
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kUpdateExec) update_execs.insert(s.span_id);
    }
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kSlateFetch) {
        EXPECT_TRUE(update_execs.count(s.parent_span) == 1);
      }
    }
  }
  EXPECT_TRUE(saw_net_hop)
      << "with 2 machines some events must hop off the publisher machine";
  ASSERT_OK(engine.Stop());
}

TEST(TraceIntegrationTest, SamplingIsContentBasedAndDeterministic) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 1;
  options.threads_per_machine = 2;
  options.trace.sample_period = 4;
  options.trace.recent_traces = 1024;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  constexpr int kKeys = 64;
  int expected = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (TraceSampled(Fnv1a64(key), 4)) ++expected;
    ASSERT_OK(engine.Publish("in", key, "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  ASSERT_GT(expected, 0);
  ASSERT_LT(expected, kKeys);
  const auto by_trace = CollectSpans(engine, 1);
  // Exactly the content-sampled keys were traced — the same set a chaos
  // replay of this workload would trace.
  EXPECT_EQ(by_trace.size(), static_cast<size_t>(expected));
  ASSERT_OK(engine.Stop());
}

TEST(TraceIntegrationTest, TracingDisabledRecordsNothing) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 1;
  options.threads_per_machine = 1;
  options.trace.sample_period = 0;  // disabled
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 16; ++i) {
    ASSERT_OK(engine.Publish("in", "k", "", i + 1));
  }
  ASSERT_OK(engine.Drain());
  EXPECT_EQ(engine.trace_sink(0), nullptr);
  ASSERT_OK(engine.Stop());
}

}  // namespace
}  // namespace muppet
