#include "engine/watchdog.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/sync.h"
#include "gtest/gtest.h"
#include "engine/muppet2.h"
#include "service/admin_service.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::TempDir;

// ---------------------------------------------------------------------------
// Pure decision core, driven deterministically: a fixed signal sequence
// yields a fixed incident sequence — no threads, no clock, no sleeps.
// ---------------------------------------------------------------------------

WatchdogOptions FastOptions() {
  WatchdogOptions options;
  options.stall_ticks = 3;
  options.clear_ticks = 2;
  options.drain_stall_ticks = 3;
  options.changelog_stall_ticks = 3;
  options.recovery_stuck_ticks = 5;
  return options;
}

// One machine, one queue at `depth`/`capacity` with cumulative `pops`.
WatchdogSignals QueueSignals(Timestamp now, size_t depth, size_t capacity,
                             int64_t pops, bool crashed = false) {
  WatchdogSignals signals;
  signals.now = now;
  WatchdogSignals::Queue q;
  q.machine = 0;
  q.queue_index = 0;
  q.depth = depth;
  q.capacity = capacity;
  q.pops = pops;
  signals.queues.push_back(q);
  WatchdogSignals::Machine m;
  m.machine = 0;
  m.crashed = crashed;
  signals.machines.push_back(m);
  return signals;
}

TEST(WatchdogTest, QueueStallOpensAfterHysteresis) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  // Tick 1 only establishes the pops baseline — never bad.
  EXPECT_EQ(watchdog.Tick(QueueSignals(1, 8, 8, 100)), 0);
  // Three consecutive full-and-frozen observations open the incident.
  EXPECT_EQ(watchdog.Tick(QueueSignals(2, 8, 8, 100)), 0);
  EXPECT_EQ(watchdog.Tick(QueueSignals(3, 8, 8, 100)), 0);
  EXPECT_EQ(watchdog.Tick(QueueSignals(4, 8, 8, 100)), 1);
  ASSERT_EQ(log.Incidents().size(), 1u);
  const Incident incident = log.Incidents()[0];
  EXPECT_EQ(incident.kind, IncidentKind::kQueueStall);
  EXPECT_EQ(incident.machine, 0);
  EXPECT_EQ(incident.queue_index, 0);
  EXPECT_EQ(incident.opened_us, 4);
  EXPECT_TRUE(incident.open());
  EXPECT_EQ(log.opened(IncidentKind::kQueueStall), 1);
  EXPECT_EQ(log.open_count(), 1);
}

TEST(WatchdogTest, DequeueProgressResetsTheCounter) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  watchdog.Tick(QueueSignals(1, 8, 8, 100));
  watchdog.Tick(QueueSignals(2, 8, 8, 100));
  watchdog.Tick(QueueSignals(3, 8, 8, 101));  // one pop: progress
  watchdog.Tick(QueueSignals(4, 8, 8, 101));
  watchdog.Tick(QueueSignals(5, 8, 8, 101));
  // Only two bad ticks since the reset — nothing opens.
  EXPECT_EQ(log.opened_total(), 0);
  EXPECT_EQ(watchdog.Tick(QueueSignals(6, 8, 8, 101)), 1);
}

TEST(WatchdogTest, LowOccupancyIsNeverAStall) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  // Frozen pops but a near-empty queue: an idle engine, not a wedge.
  for (Timestamp t = 1; t <= 10; ++t) {
    EXPECT_EQ(watchdog.Tick(QueueSignals(t, 1, 8, 100)), 0);
  }
  EXPECT_EQ(log.opened_total(), 0);
}

TEST(WatchdogTest, CrashedMachineQueuesAreSkipped) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  for (Timestamp t = 1; t <= 10; ++t) {
    watchdog.Tick(QueueSignals(t, 8, 8, 100, /*crashed=*/true));
  }
  EXPECT_EQ(log.opened_total(), 0) << "a chaos crash is not a stall";
}

TEST(WatchdogTest, IncidentClearsAfterGoodTicksWithHysteresis) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  for (Timestamp t = 1; t <= 4; ++t) {
    watchdog.Tick(QueueSignals(t, 8, 8, 100));
  }
  ASSERT_EQ(log.open_count(), 1);
  // One good tick is not enough (clear_ticks = 2)...
  watchdog.Tick(QueueSignals(5, 8, 8, 150));
  EXPECT_EQ(log.open_count(), 1);
  // ...the second clears, stamping cleared_us.
  watchdog.Tick(QueueSignals(6, 0, 8, 200));
  EXPECT_EQ(log.open_count(), 0);
  ASSERT_EQ(log.Incidents().size(), 1u);
  EXPECT_FALSE(log.Incidents()[0].open());
  EXPECT_EQ(log.Incidents()[0].cleared_us, 6);
}

TEST(WatchdogTest, DrainStallRequiresFrozenInflight) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  auto drain_signals = [](Timestamp now, bool draining, int64_t inflight) {
    WatchdogSignals signals;
    signals.now = now;
    signals.draining = draining;
    signals.inflight = inflight;
    return signals;
  };
  // Draining with decreasing inflight: healthy, never opens.
  for (Timestamp t = 1; t <= 6; ++t) {
    watchdog.Tick(drain_signals(t, true, 100 - static_cast<int64_t>(t)));
  }
  EXPECT_EQ(log.opened_total(), 0);
  // Draining with inflight frozen at 7: opens after drain_stall_ticks.
  int opened = 0;
  for (Timestamp t = 10; t <= 20 && opened == 0; ++t) {
    opened = watchdog.Tick(drain_signals(t, true, 7));
  }
  EXPECT_EQ(opened, 1);
  EXPECT_EQ(log.opened(IncidentKind::kDrainStall), 1);
  EXPECT_EQ(log.Incidents()[0].machine, kInvalidMachine);
}

TEST(WatchdogTest, DrainBaselineResetsWhenNotDraining) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  WatchdogSignals idle;
  idle.inflight = 7;
  idle.draining = false;
  // A stable inflight with no Drain() waiter is not a stall, however long
  // it persists (e.g. a paused workload with queued events).
  for (Timestamp t = 1; t <= 10; ++t) {
    idle.now = t;
    watchdog.Tick(idle);
  }
  EXPECT_EQ(log.opened_total(), 0);
}

TEST(WatchdogTest, ChangelogStallDetectsFrozenSyncCursor) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  auto signals = [](Timestamp now, uint64_t lsn, uint64_t synced) {
    WatchdogSignals s;
    s.now = now;
    WatchdogSignals::Machine m;
    m.machine = 2;
    m.changelog_lsn = lsn;
    m.changelog_synced_lsn = synced;
    s.machines.push_back(m);
    return s;
  };
  // Synced cursor advancing: healthy.
  for (Timestamp t = 1; t <= 6; ++t) {
    watchdog.Tick(signals(t, 100 + static_cast<uint64_t>(t), 90 + t));
  }
  EXPECT_EQ(log.opened_total(), 0);
  // lsn ahead, synced frozen: opens.
  int opened = 0;
  for (Timestamp t = 10; t <= 20 && opened == 0; ++t) {
    opened = watchdog.Tick(signals(t, 200, 150));
  }
  EXPECT_EQ(opened, 1);
  EXPECT_EQ(log.opened(IncidentKind::kChangelogStall), 1);
  EXPECT_EQ(log.Incidents()[0].machine, 2);
}

TEST(WatchdogTest, RecoveryStuckOpensAfterBudget) {
  IncidentLog log;
  Watchdog watchdog(FastOptions(), &log);
  auto signals = [](Timestamp now, bool recovering) {
    WatchdogSignals s;
    s.now = now;
    WatchdogSignals::Machine m;
    m.machine = 1;
    m.recovering = recovering;
    s.machines.push_back(m);
    return s;
  };
  // recovery_stuck_ticks = 5 in FastOptions.
  for (Timestamp t = 1; t <= 4; ++t) {
    EXPECT_EQ(watchdog.Tick(signals(t, true)), 0);
  }
  EXPECT_EQ(watchdog.Tick(signals(5, true)), 1);
  EXPECT_EQ(log.opened(IncidentKind::kRecoveryStuck), 1);
  // ClearFailure ends the condition; the incident clears.
  watchdog.Tick(signals(6, false));
  watchdog.Tick(signals(7, false));
  EXPECT_EQ(log.open_count(), 0);
}

TEST(WatchdogTest, DeterministicAcrossRuns) {
  // The acceptance bar: identical signal sequences produce identical
  // incident sequences. Run the same script twice and compare.
  auto run = [] {
    IncidentLog log;
    Watchdog watchdog(FastOptions(), &log);
    for (Timestamp t = 1; t <= 30; ++t) {
      const int64_t pops = t < 10 ? 100 : 100 + static_cast<int64_t>(t) / 7;
      watchdog.Tick(QueueSignals(t, 8, 8, pops));
    }
    std::ostringstream os;
    for (const Incident& incident : log.Incidents()) {
      os << IncidentToJson(incident).Dump() << "\n";
    }
    return os.str();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

// ---------------------------------------------------------------------------
// IncidentLog
// ---------------------------------------------------------------------------

TEST(IncidentLogTest, RingIsBoundedNewestFirst) {
  IncidentLog log(/*capacity=*/3);
  for (int64_t i = 1; i <= 5; ++i) {
    Incident incident;
    incident.id = i;
    incident.opened_us = i * 10;
    log.Open(incident);
  }
  const std::vector<Incident> incidents = log.Incidents();
  ASSERT_EQ(incidents.size(), 3u);
  EXPECT_EQ(incidents[0].id, 5);
  EXPECT_EQ(incidents[2].id, 3);
  EXPECT_EQ(log.opened_total(), 5);
}

TEST(IncidentLogTest, ClearOnEvictedIncidentIsANoop) {
  IncidentLog log(/*capacity=*/1);
  Incident a;
  a.id = 1;
  log.Open(a);
  Incident b;
  b.id = 2;
  log.Open(b);  // evicts 1
  log.Clear(1, 99);
  ASSERT_EQ(log.Incidents().size(), 1u);
  EXPECT_EQ(log.Incidents()[0].id, 2);
  EXPECT_TRUE(log.Incidents()[0].open());
}

TEST(IncidentLogTest, DumpHookRunsOutsideTheLogLock) {
  IncidentLog log;
  std::atomic<int> fired{0};
  log.SetDumpHook([&log, &fired](const Incident& incident) {
    // Reading the log from inside the hook must not self-deadlock —
    // the contract is that Open() invokes the hook lock-free.
    EXPECT_GE(log.Incidents().size(), 1u);
    EXPECT_EQ(incident.id, 7);
    fired.fetch_add(1);
  });
  Incident incident;
  incident.id = 7;
  log.Open(incident);
  EXPECT_EQ(fired.load(), 1);
}

TEST(WatchdogTest, DumpArtifactsWritesIncidentAndMetrics) {
  TempDir dir;
  ASSERT_EQ(setenv("MUPPET_CHAOS_ARTIFACT_DIR", dir.path().c_str(), 1), 0);
  TraceSink sink((TraceSink::Options()));
  Span span;
  span.trace_id = 1;
  span.span_id = 1;
  span.kind = SpanKind::kPublish;
  span.name = "in";
  span.start_us = 0;
  span.end_us = 50;
  sink.Record(span);
  MetricsRegistry registry;
  registry.GetCounter("muppet_events_published_total")->Add(5);

  Incident incident;
  incident.id = 3;
  incident.kind = IncidentKind::kQueueStall;
  incident.machine = 0;
  incident.queue_index = 1;
  incident.detail = "test wedge";
  const std::string path =
      DumpWatchdogArtifacts("muppet2", incident, {&sink, nullptr}, &registry);
  unsetenv("MUPPET_CHAOS_ARTIFACT_DIR");

  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Json::Parse(buffer.str());
  ASSERT_OK(parsed.status());
  const Json& doc = parsed.value();
  EXPECT_EQ(doc["incident"]["id"].AsInt(), 3);
  EXPECT_EQ(doc["incident"]["kind"].AsString(), "queue-stall");
  EXPECT_EQ(doc["machines"].size(), 2u);
  EXPECT_TRUE(
      std::filesystem::exists(dir.path() + "/watchdog-muppet2-incident-3-metrics.prom"));
}

TEST(WatchdogTest, DumpArtifactsNoopWithoutArtifactDir) {
  unsetenv("MUPPET_CHAOS_ARTIFACT_DIR");
  Incident incident;
  incident.id = 1;
  EXPECT_EQ(DumpWatchdogArtifacts("muppet2", incident, {}, nullptr), "");
}

// ---------------------------------------------------------------------------
// Integration: a deliberately wedged queue in a real engine must open an
// incident, bump the counter family, surface on /statusz and /healthz,
// and leave a flight-recorder artifact. Bounded polling only — the test
// waits on conditions, never on fixed sleeps.
// ---------------------------------------------------------------------------

template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(WatchdogIntegrationTest, WedgedQueueOpensIncidentAndDumpsArtifacts) {
  TempDir artifacts;
  ASSERT_EQ(
      setenv("MUPPET_CHAOS_ARTIFACT_DIR", artifacts.path().c_str(), 1), 0);

  // An updater that blocks until released: the worker thread wedges mid
  // event, the queue behind it fills and freezes.
  Mutex gate_mutex{LockLevel::kUnordered};
  CondVar gate_cv;
  bool released = false;
  std::atomic<bool> blocked{false};

  AppConfig config;
  ASSERT_OK(config.DeclareInputStream("in"));
  ASSERT_OK(config.AddUpdater(
      "stuck",
      MakeUpdaterFactory([&](PerformerUtilities&, const Event&,
                             const Bytes*) {
        blocked.store(true);
        MutexLock lock(gate_mutex);
        while (!released) gate_cv.Wait(gate_mutex);
      }),
      {"in"}));

  EngineOptions options;
  options.num_machines = 1;
  options.threads_per_machine = 1;
  options.queue_capacity = 8;
  options.watchdog.tick_micros = 2 * kMicrosPerMilli;
  options.watchdog.stall_ticks = 3;
  options.watchdog.clear_ticks = 2;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());

  // Safety net: release the wedge on every exit path (including failed
  // ASSERTs) so the engine destructor can never hang on the stuck worker.
  // Declared after the engine so it runs first during unwind.
  struct GateRelease {
    Mutex& mu;
    CondVar& cv;
    bool& released;
    ~GateRelease() {
      {
        MutexLock lock(mu);
        released = true;
      }
      cv.NotifyAll();
    }
  } gate_release{gate_mutex, gate_cv, released};

  // First event wedges the worker. Only then fill the queue: the worker
  // batch-pops up to kWorkerPopBatch events into a private buffer before
  // executing, so events published *before* the wedge may all be drained
  // out of the queue in one batch — leaving depth 0 and nothing for the
  // occupancy detector to see. Events published *after* the worker is
  // wedged are guaranteed to sit in the queue (the overflow policy may
  // drop some — irrelevant, the queue stays full).
  (void)engine.Publish("in", "k", "", 1);
  ASSERT_TRUE(WaitFor([&] { return blocked.load(); }));
  const int refill = static_cast<int>(2 * options.queue_capacity);
  for (int i = 0; i < refill; ++i) {
    (void)engine.Publish("in", "k", "", i + 2);
  }

  const IncidentLog* log = engine.incidents();
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(WaitFor([&] {
    return log->opened(IncidentKind::kQueueStall) > 0;
  })) << "watchdog never flagged the wedged queue";

  // Counter family.
  bool found_counter = false;
  for (const auto& sample : engine.metrics()->Snapshot()) {
    if (sample.name == "muppet_watchdog_incidents_total") {
      for (const auto& [k, v] : sample.labels) {
        if (k == "kind" && v == "queue-stall") {
          found_counter = sample.value > 0;
        }
      }
    }
  }
  EXPECT_TRUE(found_counter);

  // /statusz incident panel.
  const Json statusz = StatuszDocument(&engine, 0);
  ASSERT_GE(statusz["incidents"].size(), 1u);
  bool panel_has_stall = false;
  for (const Json& entry : statusz["incidents"].AsArray()) {
    if (entry.GetString("kind") == "queue-stall") panel_has_stall = true;
  }
  EXPECT_TRUE(panel_has_stall);
  EXPECT_GE(statusz.GetInt("open_incidents"), 1);

  // /healthz: the queues check fails while the stall is open.
  const Json healthz = HealthzDocument(&engine, 0);
  EXPECT_FALSE(healthz.GetBool("ready"));

  // Flight-recorder artifact on the chaos path.
  bool artifact_found = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(artifacts.path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("watchdog-muppet2-incident-", 0) == 0 &&
        name.find(".json") != std::string::npos) {
      artifact_found = true;
    }
  }
  EXPECT_TRUE(artifact_found);

  // Release the wedge; the engine drains and the incident clears.
  {
    MutexLock lock(gate_mutex);
    released = true;
  }
  gate_cv.NotifyAll();
  ASSERT_TRUE(WaitFor([&] { return log->open_count() == 0; }))
      << "incident never cleared after the wedge was released";
  ASSERT_OK(engine.Drain());
  ASSERT_OK(engine.Stop());
  unsetenv("MUPPET_CHAOS_ARTIFACT_DIR");
}

}  // namespace
}  // namespace muppet
