// Randomized chaos sweep (ctest label: chaos). Runs many seeded scenarios
// per engine, each with a RandomFaultPlan derived from the seed, and
// checks every invariant. Knobs (environment):
//
//   MUPPET_CHAOS_SEEDS        seeds per engine (default 200)
//   MUPPET_CHAOS_BASE_SEED    first seed (default 1; CI passes a fresh one)
//   MUPPET_CHAOS_REPLAY_SEED  run exactly this one seed (failure replay)
//   MUPPET_CHAOS_ARTIFACT_DIR write seed + fault timeline here on failure
//
// A failing seed prints its full report (seeds, timeline, violations) and
// is reproducible with:
//   MUPPET_CHAOS_REPLAY_SEED=<seed> ctest -R chaos_property [...]
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "testing/scenario.h"
#include "tests/test_util.h"

namespace muppet {
namespace chaos {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

void WriteArtifact(EngineKind engine, uint64_t seed,
                   const std::string& suffix, const std::string& report) {
  const char* dir = std::getenv("MUPPET_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/chaos-" +
      (engine == EngineKind::kMuppet1 ? "muppet1" : "muppet2") + suffix +
      "-seed-" + std::to_string(seed) + ".txt";
  std::ofstream out(path);
  out << report;
}

ScenarioOptions SweepOptions(EngineKind engine, uint64_t seed,
                             bool hot_split = false) {
  ScenarioOptions o;
  o.engine = engine;
  // Smaller than the tier-1 scripted scenarios: the sweep's power comes
  // from seed count, not per-run volume.
  o.num_machines = 3;
  o.steps = 3;
  o.events_per_step = 30;
  o.num_keys = 8;
  // hot_split runs the load manager over a skewed-then-uniform workload,
  // so split-epoch changes (install, widen, drain) race whatever the
  // seeded fault plan throws at the cluster. A bit longer so the uniform
  // phase can begin merges mid-faults.
  o.hot_split = hot_split;
  if (hot_split) o.steps = 4;
  o.workload_seed = seed;
  o.plan = RandomFaultPlan(seed, o);
  return o;
}

void RunSweep(EngineKind engine, bool hot_split = false) {
  const uint64_t base = EnvU64("MUPPET_CHAOS_BASE_SEED", 1);
  const uint64_t replay = EnvU64("MUPPET_CHAOS_REPLAY_SEED", 0);
  const uint64_t count = EnvU64("MUPPET_CHAOS_SEEDS", 200);

  std::vector<uint64_t> seeds;
  if (replay != 0) {
    seeds.push_back(replay);
  } else {
    for (uint64_t i = 0; i < count; ++i) seeds.push_back(base + i);
  }

  int failures = 0;
  for (uint64_t seed : seeds) {
    const ScenarioOptions o = SweepOptions(engine, seed, hot_split);
    const ScenarioResult r = ScenarioRunner(o).Run();
    if (!r.ok()) {
      ++failures;
      const std::string report = r.Describe(o);
      WriteArtifact(engine, seed, hot_split ? "-hotsplit" : "", report);
      ADD_FAILURE() << "chaos seed " << seed << " violated invariants\n"
                    << report;
      if (failures >= 3) break;  // enough to diagnose; don't spam
    }
  }
}

TEST(ChaosPropertyTest, Muppet1RandomizedSweep) {
  RunSweep(EngineKind::kMuppet1);
}

TEST(ChaosPropertyTest, Muppet2RandomizedSweep) {
  RunSweep(EngineKind::kMuppet2);
}

// Hot-split sweep: the load manager splits/merges the hot key while the
// seeded fault plan crashes, partitions, drops, and reorders around it.
// Split-epoch changes racing machine failures is exactly the surface this
// covers; the oracle stays strict whenever no fault destroys state.
TEST(ChaosPropertyTest, Muppet2SplitEpochSweep) {
  RunSweep(EngineKind::kMuppet2, /*hot_split=*/true);
}

// ---- Crash-recovery matrix (DESIGN.md §12): {consistency knob} x
// {crash shape} per engine. Every cell scripts crash/restart pairs at
// drain boundaries (RecoveryFaultPlan), so the scenario's oracle applies
// its durability contract: strict reference equality in kExactlyOnce,
// bounded unsynced-tail loss in kAtLeastOnce, live <= reference always.

constexpr Consistency kKnobs[] = {
    Consistency::kLossy,
    Consistency::kAtLeastOnce,
    Consistency::kExactlyOnce,
};
constexpr CrashShape kShapes[] = {
    CrashShape::kCrashRestart,
    CrashShape::kCrashDuringCheckpoint,
    CrashShape::kCrashDuringReplay,
};

ScenarioOptions RecoveryOptions(EngineKind engine, Consistency knob,
                                CrashShape shape, uint64_t seed,
                                const std::string& durability_dir) {
  ScenarioOptions o;
  o.engine = engine;
  o.num_machines = 3;
  o.steps = 4;
  o.events_per_step = 30;
  o.num_keys = 8;
  o.workload_seed = seed;
  o.consistency = knob;
  if (knob != Consistency::kLossy) o.durability_dir = durability_dir;
  if (shape == CrashShape::kCrashDuringCheckpoint) {
    // Near-continuous checkpointing so the crash races an in-flight
    // manifest write / segment rotation instead of landing between them.
    o.checkpoint_every_records = 4;
  }
  o.plan = RecoveryFaultPlan(seed, shape, o);
  return o;
}

void RunRecoveryMatrix(EngineKind engine) {
  const uint64_t base = EnvU64("MUPPET_CHAOS_BASE_SEED", 1);
  const uint64_t replay = EnvU64("MUPPET_CHAOS_REPLAY_SEED", 0);
  // Default sizing matches the sweeps: >= MUPPET_CHAOS_SEEDS scenarios
  // per engine, spread evenly over the 9 matrix cells (rounded up).
  const uint64_t count = EnvU64("MUPPET_CHAOS_SEEDS", 200);
  const uint64_t per_cell = (count + 8) / 9;

  int failures = 0;
  for (Consistency knob : kKnobs) {
    for (CrashShape shape : kShapes) {
      std::vector<uint64_t> seeds;
      if (replay != 0) {
        seeds.push_back(replay);
      } else {
        for (uint64_t i = 0; i < per_cell; ++i) seeds.push_back(base + i);
      }
      for (uint64_t seed : seeds) {
        // Fresh changelog dir per run: a leftover changelog would replay
        // into the next scenario's cold start and corrupt its oracle.
        muppet::testing::TempDir dir;
        const ScenarioOptions o =
            RecoveryOptions(engine, knob, shape, seed, dir.path());
        const ScenarioResult r = ScenarioRunner(o).Run();
        if (!r.ok()) {
          ++failures;
          const std::string report = r.Describe(o);
          WriteArtifact(engine, seed,
                        std::string("-recovery-") + ConsistencyName(knob) +
                            "-" + CrashShapeName(shape),
                        report);
          ADD_FAILURE() << "recovery cell (" << ConsistencyName(knob) << ", "
                        << CrashShapeName(shape) << ") seed " << seed
                        << " violated invariants\n"
                        << report;
          if (failures >= 3) return;
        }
      }
    }
  }
}

TEST(ChaosPropertyTest, Muppet1RecoveryMatrix) {
  RunRecoveryMatrix(EngineKind::kMuppet1);
}

TEST(ChaosPropertyTest, Muppet2RecoveryMatrix) {
  RunRecoveryMatrix(EngineKind::kMuppet2);
}

// Exactly-once recovery must also be bit-reproducible: every append is
// synced before it is acknowledged, so a crash discards nothing and two
// runs of the same seed recover byte-identical state.
TEST(ChaosPropertyTest, ExactlyOnceRecoveryIsBitReproducible) {
  const uint64_t base = EnvU64("MUPPET_CHAOS_BASE_SEED", 1);
  for (uint64_t seed = base; seed < base + 3; ++seed) {
    muppet::testing::TempDir dir_a;
    muppet::testing::TempDir dir_b;
    const ScenarioOptions o1 =
        RecoveryOptions(EngineKind::kMuppet2, Consistency::kExactlyOnce,
                        CrashShape::kCrashRestart, seed, dir_a.path());
    const ScenarioOptions o2 =
        RecoveryOptions(EngineKind::kMuppet2, Consistency::kExactlyOnce,
                        CrashShape::kCrashRestart, seed, dir_b.path());
    const ScenarioResult a = ScenarioRunner(o1).Run();
    const ScenarioResult b = ScenarioRunner(o2).Run();
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed << " not reproducible\n"
                                << a.Describe(o1);
    EXPECT_EQ(a.counts, b.counts) << "seed " << seed;
  }
}

// A handful of sweep seeds re-run twice each: same seed, same plan must
// give a byte-identical processed-event trace and final counts.
TEST(ChaosPropertyTest, SweepSeedsAreBitReproducible) {
  const uint64_t base = EnvU64("MUPPET_CHAOS_BASE_SEED", 1);
  for (uint64_t seed = base; seed < base + 5; ++seed) {
    const ScenarioOptions o1 = SweepOptions(EngineKind::kMuppet2, seed);
    const ScenarioOptions o2 = SweepOptions(EngineKind::kMuppet2, seed);
    const ScenarioResult a = ScenarioRunner(o1).Run();
    const ScenarioResult b = ScenarioRunner(o2).Run();
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed << " not reproducible\n"
                                << a.Describe(o1);
    EXPECT_EQ(a.counts, b.counts) << "seed " << seed;
  }
}

}  // namespace
}  // namespace chaos
}  // namespace muppet
