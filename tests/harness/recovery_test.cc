// Blocking crash-recovery suite (ctest label: recovery). A small, fully
// deterministic slice of the chaos recovery matrix — every {consistency,
// crash shape} cell on both engines with fixed seeds — fast enough to
// gate every PR in Release and TSan builds, while the seed-heavy sweep
// stays behind the `chaos` label.
#include <cstdlib>
#include <filesystem>
#include <string>
#include <tuple>

#include "gtest/gtest.h"
#include "testing/scenario.h"
#include "tests/test_util.h"

namespace muppet {
namespace chaos {
namespace {

ScenarioOptions RecoveryOptions(EngineKind engine, Consistency knob,
                                CrashShape shape, uint64_t seed,
                                const std::string& durability_dir) {
  ScenarioOptions o;
  o.engine = engine;
  o.num_machines = 3;
  o.steps = 4;
  o.events_per_step = 30;
  o.num_keys = 8;
  o.workload_seed = seed;
  o.consistency = knob;
  if (knob != Consistency::kLossy) o.durability_dir = durability_dir;
  if (shape == CrashShape::kCrashDuringCheckpoint) {
    o.checkpoint_every_records = 4;
  }
  o.plan = RecoveryFaultPlan(seed, shape, o);
  return o;
}

class RecoveryMatrixTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, Consistency>> {};

TEST_P(RecoveryMatrixTest, AllCrashShapesHoldTheirContract) {
  const auto [engine, knob] = GetParam();
  for (CrashShape shape :
       {CrashShape::kCrashRestart, CrashShape::kCrashDuringCheckpoint,
        CrashShape::kCrashDuringReplay}) {
    for (uint64_t seed : {11u, 42u}) {
      muppet::testing::TempDir dir;
      const ScenarioOptions o =
          RecoveryOptions(engine, knob, shape, seed, dir.path());
      const ScenarioResult r = ScenarioRunner(o).Run();
      EXPECT_TRUE(r.ok()) << "shape=" << CrashShapeName(shape) << " seed="
                          << seed << "\n"
                          << r.Describe(o);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, RecoveryMatrixTest,
    ::testing::Combine(::testing::Values(EngineKind::kMuppet1,
                                         EngineKind::kMuppet2),
                       ::testing::Values(Consistency::kLossy,
                                         Consistency::kAtLeastOnce,
                                         Consistency::kExactlyOnce)),
    [](const ::testing::TestParamInfo<RecoveryMatrixTest::ParamType>& info) {
      const EngineKind engine = std::get<0>(info.param);
      const Consistency knob = std::get<1>(info.param);
      std::string name =
          engine == EngineKind::kMuppet1 ? "Muppet1" : "Muppet2";
      const std::string knob_name = ConsistencyName(knob);
      for (char c : knob_name) {
        if (c != '-') name += c;
      }
      return name;
    });

// Exactly-once earns its name under redelivery: the fault plan duplicates
// a third of the cross-machine messages AND crash/restarts a machine, yet
// the dedup table suppresses every redelivered copy and replay restores
// the crashed state, so the strict oracle still holds. (Duplicate rules
// are not "ownership-disrupting" in the scenario's contract — only drops,
// partitions, and unrecovered crashes are.)
TEST(ExactlyOnceTest, DuplicatesAndCrashStillMatchTheOracleExactly) {
  for (EngineKind engine : {EngineKind::kMuppet1, EngineKind::kMuppet2}) {
    muppet::testing::TempDir dir;
    ScenarioOptions o = RecoveryOptions(
        engine, Consistency::kExactlyOnce, CrashShape::kCrashRestart,
        /*seed=*/7, dir.path());
    o.plan.Duplicate(kAnyMachine, kAnyMachine, /*p=*/0.33);
    const ScenarioResult r = ScenarioRunner(o).Run();
    EXPECT_TRUE(r.ok()) << r.Describe(o);
    // The duplicate rule must actually have fired for this to mean
    // anything; suppressed copies settle as `deduped`.
    EXPECT_GT(r.messages_duplicated, 0) << r.Describe(o);
    EXPECT_GT(r.stats.events_deduped, 0) << r.Describe(o);
  }
}

// In at-least-once mode the same duplicated deliveries are processed
// twice — the ledger records both copies, so the oracle (which replays
// the ledger) still matches and conservation still balances; only the
// dedup counter stays at zero. This pins the knob boundary: dedup is an
// exactly-once feature, not a side effect of the changelog.
TEST(AtLeastOnceTest, DuplicatesAreProcessedNotSuppressed) {
  muppet::testing::TempDir dir;
  ScenarioOptions o = RecoveryOptions(
      EngineKind::kMuppet2, Consistency::kAtLeastOnce,
      CrashShape::kCrashRestart, /*seed=*/7, dir.path());
  o.plan.Duplicate(kAnyMachine, kAnyMachine, /*p=*/0.33);
  const ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  EXPECT_GT(r.messages_duplicated, 0);
  EXPECT_EQ(r.stats.events_deduped, 0);
}

// The flight recorder preserves the changelog + manifest next to the
// trace/metrics dumps when a durable run violates an invariant, so CI
// uploads carry everything needed to re-derive the recovered state.
TEST(RecoveryFlightRecorderTest, ViolationCapturesSlatelogArtifacts) {
  muppet::testing::TempDir artifact_dir;
  muppet::testing::TempDir changelog_dir;
  const char* prev = std::getenv("MUPPET_CHAOS_ARTIFACT_DIR");
  const std::string saved = prev != nullptr ? prev : "";
  ::setenv("MUPPET_CHAOS_ARTIFACT_DIR", artifact_dir.path().c_str(), 1);
  ScenarioOptions o = RecoveryOptions(
      EngineKind::kMuppet2, Consistency::kExactlyOnce,
      CrashShape::kCrashRestart, /*seed=*/3, changelog_dir.path());
  o.inject_violation_for_test = true;
  const ScenarioResult r = ScenarioRunner(o).Run();
  if (prev != nullptr) {
    ::setenv("MUPPET_CHAOS_ARTIFACT_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("MUPPET_CHAOS_ARTIFACT_DIR");
  }
  ASSERT_FALSE(r.ok());

  bool found_slatelog_copy = false;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(artifact_dir.path())) {
    if (entry.is_regular_file() &&
        entry.path().string().find("-slatelog") != std::string::npos) {
      found_slatelog_copy = true;
    }
  }
  EXPECT_TRUE(found_slatelog_copy)
      << "no changelog/manifest files copied into the artifact dir";
}

}  // namespace
}  // namespace chaos
}  // namespace muppet
