// Tier-1 chaos scenarios: scripted fault plans against both engines, with
// the invariant checks (conservation, reference oracle, failed-set
// convergence, no-send-to-dead) and the bit-reproducibility guarantee.
#include "testing/scenario.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace muppet {
namespace chaos {
namespace {

using ::muppet::testing::TempDir;

ScenarioOptions BaseOptions(EngineKind engine) {
  ScenarioOptions o;
  o.engine = engine;
  o.num_machines = 3;
  o.steps = 4;
  o.events_per_step = 50;
  o.num_keys = 16;
  return o;
}

int64_t TotalCount(const ScenarioResult& r) {
  int64_t total = 0;
  for (const auto& [key, count] : r.counts) total += count;
  return total;
}

class ScenarioTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ScenarioTest, FaultFreeRunMatchesReferenceExactly) {
  ScenarioOptions o = BaseOptions(GetParam());
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  // Nothing was lost or manufactured: every published event processed.
  EXPECT_EQ(r.trace.size(), 4u * 50u);
  EXPECT_EQ(TotalCount(r), 200);
  EXPECT_EQ(r.stats.events_lost_failure, 0);
  EXPECT_EQ(r.messages_duplicated, 0);
}

TEST_P(ScenarioTest, DuplicateAndReorderFaultsPreserveExactness) {
  // Duplicates and reorders never destroy state or mark machines failed,
  // so the oracle comparison stays strict — the duplicated events are in
  // the processed ledger too.
  ScenarioOptions o = BaseOptions(GetParam());
  o.plan.seed = 11;
  o.plan.Duplicate(kAnyMachine, kAnyMachine, 0.2)
      .Reorder(kAnyMachine, kAnyMachine, 0.3, /*window=*/3)
      .Delay(kAnyMachine, kAnyMachine, /*delay_micros=*/20);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  EXPECT_EQ(r.stats.events_lost_failure, 0);
}

TEST_P(ScenarioTest, CrashWithoutRestartKeepsInvariants) {
  ScenarioOptions o = BaseOptions(GetParam());
  o.plan.seed = 12;
  o.plan.CrashAt(1 * o.step_micros, /*machine=*/2);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  // Post-crash the survivors still process events; the dead machine's
  // unprocessed queue shows up as bounded loss, not silence.
  EXPECT_GT(r.trace.size(), 0u);
  EXPECT_LE(TotalCount(r), 200);
}

TEST_P(ScenarioTest, CrashThenRestartRejoinsTheCluster) {
  ScenarioOptions o = BaseOptions(GetParam());
  o.plan.seed = 13;
  o.plan.CrashAt(1 * o.step_micros, 1).RestartAt(3 * o.step_micros, 1);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
}

TEST_P(ScenarioTest, PartitionHealsAndCountersBalance) {
  ScenarioOptions o = BaseOptions(GetParam());
  o.plan.seed = 14;
  o.plan.PartitionAt(1 * o.step_micros, 1, 2)
      .HealAt(2 * o.step_micros, 1, 2);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
}

TEST_P(ScenarioTest, DropFaultsTriggerReroutingNotLossOfInvariants) {
  ScenarioOptions o = BaseOptions(GetParam());
  o.plan.seed = 15;
  // A dropped send looks like a dead peer (§4.3): the sender reports the
  // destination failed and the ring reroutes. All four invariants must
  // survive that, including no-send-to-dead afterwards.
  o.plan.Drop(kAnyMachine, kAnyMachine, 0.05);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
}

TEST_P(ScenarioTest, FanoutWorkflowBalancesUnderChaos) {
  ScenarioOptions o = BaseOptions(GetParam());
  o.fanout = true;
  o.plan.seed = 16;
  o.plan.Duplicate(kAnyMachine, kAnyMachine, 0.1)
      .Reorder(kAnyMachine, kAnyMachine, 0.2, /*window=*/2)
      .CrashAt(2 * o.step_micros, 2);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  EXPECT_GT(r.stats.events_emitted, 0);
}

TEST_P(ScenarioTest, SameSeedAndPlanIsBitReproducible) {
  auto make = [this]() {
    ScenarioOptions o = BaseOptions(GetParam());
    o.workload_seed = 99;
    o.plan.seed = 17;
    o.plan.Drop(kAnyMachine, kAnyMachine, 0.03)
        .Duplicate(kAnyMachine, kAnyMachine, 0.1)
        .Reorder(kAnyMachine, kAnyMachine, 0.15, /*window=*/2)
        .CrashAt(2 * o.step_micros, 1)
        .RestartAt(3 * o.step_micros, 1);
    return o;
  };
  ScenarioOptions o1 = make();
  ScenarioOptions o2 = make();
  ScenarioResult a = ScenarioRunner(o1).Run();
  ScenarioResult b = ScenarioRunner(o2).Run();
  EXPECT_TRUE(a.ok()) << a.Describe(o1);
  EXPECT_TRUE(b.ok()) << b.Describe(o2);
  // Byte-identical processed-event trace and final slates.
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
  EXPECT_EQ(a.stats.events_lost_failure, b.stats.events_lost_failure);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
}

TEST_P(ScenarioTest, StoreBackedCrashRestartPreservesDurableCounts) {
  TempDir dir;
  ScenarioOptions o = BaseOptions(GetParam());
  o.with_store = true;
  o.data_dir = dir.path();
  o.plan.seed = 18;
  o.plan.CrashAt(1 * o.step_micros, 1).RestartAt(3 * o.step_micros, 1);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  // Write-through slates survive the crash; the only deficit vs. the
  // reference is events that died in the crashed machine's queues, and
  // those are excluded from the ledger by construction.
  EXPECT_GT(TotalCount(r), 0);
}

TEST_P(ScenarioTest, HotSplitWorkloadStaysExact) {
  // hot_split declares the updater associative and runs the load manager
  // aggressively over a skewed-then-uniform workload; on Muppet 2.0 the
  // hot key actually splits (and merges back) mid-run, on 1.0 the heat
  // plane only observes. No fault destroys state, so the oracle is
  // strict: FetchSlate's base+shard aggregation must equal the reference
  // for every key, whatever split state the run ended in.
  ScenarioOptions o = BaseOptions(GetParam());
  o.hot_split = true;
  o.steps = 6;
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  EXPECT_EQ(TotalCount(r), 6 * 50);
  EXPECT_EQ(r.stats.events_lost_failure, 0);
}

TEST(ScenarioHotSplitTest, SplitEpochChangeRacesCrashRestart) {
  // A machine dies and rejoins while the hot key is mid-split: split
  // epochs change on the wire (install, widen, begin-drain) while the
  // ring reroutes around the dead machine. Stale-epoch events must
  // reshard to the base key rather than land in a wrong shard, so
  // conservation (A) balances exactly and the oracle (B) still bounds
  // every live count by the reference.
  ScenarioOptions o = BaseOptions(EngineKind::kMuppet2);
  o.hot_split = true;
  o.steps = 6;
  o.plan.seed = 21;
  o.plan.CrashAt(2 * o.step_micros, 1).RestartAt(4 * o.step_micros, 1);
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  // The crash may shed queued events but never manufactures counts.
  EXPECT_LE(TotalCount(r), 6 * 50);
  EXPECT_GT(TotalCount(r), 0);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ScenarioTest,
                         ::testing::Values(EngineKind::kMuppet1,
                                           EngineKind::kMuppet2),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           return i.param == EngineKind::kMuppet1
                                      ? "Muppet1"
                                      : "Muppet2";
                         });

TEST(RandomFaultPlanTest, SameSeedSamePlan) {
  ScenarioOptions o;
  FaultPlan a = RandomFaultPlan(123, o);
  FaultPlan b = RandomFaultPlan(123, o);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.seed, 123u);
  EXPECT_FALSE(a.empty());
  // Different seeds disagree somewhere across a small range.
  bool differs = false;
  for (uint64_t s = 124; s < 134 && !differs; ++s) {
    differs = RandomFaultPlan(s, o).ToString() != a.ToString();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomFaultPlanTest, NeverCrashesThePublisherMachine) {
  ScenarioOptions o;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    FaultPlan plan = RandomFaultPlan(seed, o);
    for (const FaultAction& a : plan.actions) {
      if (a.kind == FaultAction::Kind::kCrashMachine ||
          a.kind == FaultAction::Kind::kRestartMachine) {
        EXPECT_GE(a.a, 1) << "seed " << seed << ": " << a.ToString();
        EXPECT_LT(a.a, o.num_machines) << "seed " << seed;
      }
    }
  }
}

TEST(ScenarioResultTest, DescribePrintsSeedsTimelineAndReplayHint) {
  ScenarioOptions o;
  o.workload_seed = 77;
  o.plan = RandomFaultPlan(42, o);
  ScenarioResult r;
  r.violations.push_back("invariant A (conservation): example");
  const std::string report = r.Describe(o);
  EXPECT_NE(report.find("FAILED"), std::string::npos);
  EXPECT_NE(report.find("invariant A"), std::string::npos);
  EXPECT_NE(report.find("workload_seed=77"), std::string::npos);
  EXPECT_NE(report.find("fault plan seed=42"), std::string::npos);
  EXPECT_NE(report.find("MUPPET_CHAOS_REPLAY_SEED=42"), std::string::npos);
  EXPECT_NE(report.find("ctest -R chaos_property"), std::string::npos);

  ScenarioResult ok;
  EXPECT_NE(ok.Describe(o).find("chaos scenario OK"), std::string::npos);
}

// A violated invariant triggers the flight recorder: the result carries
// the combined trace rings and a metrics snapshot, and when
// MUPPET_CHAOS_ARTIFACT_DIR is set both are written as files next to the
// failing seed (the nightly workflow uploads that directory).
TEST(FlightRecorderTest, ViolationDumpsTracesAndMetrics) {
  TempDir artifacts;
  ASSERT_EQ(setenv("MUPPET_CHAOS_ARTIFACT_DIR", artifacts.path().c_str(), 1),
            0);
  ScenarioOptions o;
  o.engine = EngineKind::kMuppet2;
  o.num_machines = 2;
  o.steps = 2;
  o.events_per_step = 25;
  o.plan.seed = 123;
  o.inject_violation_for_test = true;
  ScenarioResult r = ScenarioRunner(o).Run();
  unsetenv("MUPPET_CHAOS_ARTIFACT_DIR");
  ASSERT_FALSE(r.ok());

  // In-memory dumps: parseable tracez JSON per machine + Prometheus text.
  Result<Json> traces = Json::Parse(r.trace_dump);
  ASSERT_OK(traces.status());
  ASSERT_EQ(traces.value()["machines"].size(), 2u);
  const Json& m0 = traces.value()["machines"].AsArray()[0];
  EXPECT_GT(m0["recent"].size(), 0u);  // chaos runs trace every event
  EXPECT_NE(r.metrics_dump.find("# TYPE muppet_events_published_total"),
            std::string::npos);

  // Artifact files for CI upload.
  const std::string stem =
      artifacts.path() + "/chaos-muppet2-seed-123";
  EXPECT_TRUE(std::filesystem::exists(stem + "-traces.json"));
  ASSERT_TRUE(std::filesystem::exists(stem + "-metrics.prom"));
  std::ifstream metrics(stem + "-metrics.prom");
  std::stringstream contents;
  contents << metrics.rdbuf();
  EXPECT_EQ(contents.str(), r.metrics_dump);
}

// The same scenario without the hook stays green and dumps nothing.
TEST(FlightRecorderTest, CleanRunLeavesNoDump) {
  ScenarioOptions o;
  o.engine = EngineKind::kMuppet2;
  o.num_machines = 2;
  o.steps = 2;
  o.events_per_step = 25;
  ScenarioResult r = ScenarioRunner(o).Run();
  EXPECT_TRUE(r.ok()) << r.Describe(o);
  EXPECT_TRUE(r.trace_dump.empty());
  EXPECT_TRUE(r.metrics_dump.empty());
}

}  // namespace
}  // namespace chaos
}  // namespace muppet
