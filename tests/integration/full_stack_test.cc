// End-to-end integration: workload generators -> Muppet engine -> slate
// cache -> compressed slates in the replicated key-value store -> live
// HTTP slate fetches. Exercises the complete §4 production stack,
// including application restart against the durable store.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>

#include "apps/retailer.h"
#include "core/reference_executor.h"
#include "core/slate_store.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "kvstore/cluster.h"
#include "service/slate_service.h"
#include "tests/test_util.h"
#include "workload/checkins.h"
#include "workload/tweets.h"

namespace muppet {
namespace {

using ::muppet::testing::TempDir;

std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(FullStackTest, RetailerPipelineOverFullStack) {
  TempDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 3;
  kv_options.replication_factor = 2;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster kv_cluster(kv_options);
  ASSERT_OK(kv_cluster.Open());
  SlateStore store(&kv_cluster, SlateStoreOptions{});

  AppConfig config;
  UpdaterOptions counter_options;
  counter_options.flush_policy = SlateFlushPolicy::kInterval;
  counter_options.flush_interval_micros = 1000;
  ASSERT_OK(apps::BuildRetailerApp(&config, {}, counter_options));

  EngineOptions options;
  options.num_machines = 3;
  options.threads_per_machine = 2;
  options.slate_store = &store;
  options.flush_poll_micros = 2000;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());

  // Drive with the synthetic Foursquare stream and track ground truth.
  workload::CheckinOptions gen_options;
  gen_options.retailer_fraction = 0.6;
  gen_options.seed = 21;
  workload::CheckinGenerator gen(gen_options, /*start_ts=*/1000);
  std::map<std::string, int64_t> truth;
  for (int i = 0; i < 1000; ++i) {
    const workload::Checkin c = gen.Next();
    if (!c.retailer.empty()) truth[c.retailer]++;
    ASSERT_OK(engine.Publish("S1", c.user, c.json, c.ts));
  }
  ASSERT_OK(engine.Drain());

  // Live fetch over HTTP matches ground truth.
  SlateService service(&engine);
  HttpServer server;
  service.AttachTo(&server);
  ASSERT_OK(server.Start(0));
  for (const auto& [retailer, count] : truth) {
    const std::string response =
        HttpGet(server.port(), SlateService::SlateUri("U1", retailer));
    EXPECT_NE(response.find("\"count\":" + std::to_string(count)),
              std::string::npos)
        << retailer << " expected " << count << "\n"
        << response;
  }
  ASSERT_OK(server.Stop());
  ASSERT_OK(engine.Stop());  // flushes all dirty slates

  // The compressed slates are durable in the store: read them back
  // directly, decompressed, after the engine is gone.
  for (const auto& [retailer, count] : truth) {
    Result<Bytes> slate = store.Read(SlateId{"U1", retailer});
    ASSERT_OK(slate);
    EXPECT_EQ(apps::CountingUpdater::CountOf(slate.value()), count);
  }
}

TEST(FullStackTest, ApplicationRestartResumesFromStore) {
  // "persistent slates help resuming, restarting, or recovering the
  // application" (§4.2): counts accumulated before a restart continue
  // after it.
  TempDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 2;
  kv_options.replication_factor = 2;
  kv_options.node.data_dir = dir.path();

  AppConfig config;
  UpdaterOptions counter_options;
  counter_options.flush_policy = SlateFlushPolicy::kWriteThrough;
  ASSERT_OK(apps::BuildRetailerApp(&config, {}, counter_options));

  Json walmart_checkin = Json::MakeObject();
  walmart_checkin["venue"] = "Walmart";
  const Bytes checkin = walmart_checkin.Dump();

  {
    kv::KvCluster kv_cluster(kv_options);
    ASSERT_OK(kv_cluster.Open());
    SlateStore store(&kv_cluster, SlateStoreOptions{});
    EngineOptions options;
    options.num_machines = 2;
    options.slate_store = &store;
    Muppet1Engine engine(config, options);
    ASSERT_OK(engine.Start());
    for (int i = 0; i < 40; ++i) {
      ASSERT_OK(engine.Publish("S1", "u", checkin, i + 1));
    }
    ASSERT_OK(engine.Drain());
    ASSERT_OK(engine.Stop());
    ASSERT_OK(kv_cluster.FlushAll());
  }

  // Restart: a brand-new engine (fresh caches) over the same store.
  {
    kv::KvCluster kv_cluster(kv_options);
    ASSERT_OK(kv_cluster.Open());
    SlateStore store(&kv_cluster, SlateStoreOptions{});
    EngineOptions options;
    options.num_machines = 2;
    options.slate_store = &store;
    Muppet1Engine engine(config, options);
    ASSERT_OK(engine.Start());
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(engine.Publish("S1", "u", checkin, 1000 + i));
    }
    ASSERT_OK(engine.Drain());
    Result<Bytes> slate = engine.FetchSlate("U1", "Walmart");
    ASSERT_OK(slate);
    EXPECT_EQ(apps::CountingUpdater::CountOf(slate.value()), 50)
        << "the restarted application resumed from the persisted 40";
    ASSERT_OK(engine.Stop());
  }
}

TEST(FullStackTest, MixedWorkloadBothEnginesAgree) {
  // The same tweet workload through Muppet 1.0 and 2.0 with durable
  // stores produces identical per-user counts (commutative updater).
  auto run = [](bool muppet2, std::map<std::string, int64_t>* counts) {
    TempDir dir;
    kv::KvClusterOptions kv_options;
    kv_options.num_nodes = 2;
    kv_options.replication_factor = 1;
    kv_options.node.data_dir = dir.path();
    kv::KvCluster kv_cluster(kv_options);
    ASSERT_OK(kv_cluster.Open());
    SlateStore store(&kv_cluster, SlateStoreOptions{});

    AppConfig config;
    ASSERT_OK(config.DeclareInputStream("tweets"));
    ASSERT_OK(config.AddUpdater(
        "per_user",
        MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                              const Bytes* slate) {
          JsonSlate s(slate);
          s.data()["count"] = s.data().GetInt("count") + 1;
          (void)out.ReplaceSlate(s.Serialize());
        }),
        {"tweets"}));

    EngineOptions options;
    options.num_machines = 2;
    options.workers_per_function = 2;
    options.threads_per_machine = 2;
    options.slate_store = &store;
    std::unique_ptr<Engine> engine;
    if (muppet2) {
      engine = std::make_unique<Muppet2Engine>(config, options);
    } else {
      engine = std::make_unique<Muppet1Engine>(config, options);
    }
    ASSERT_OK(engine->Start());

    workload::TweetOptions gen_options;
    gen_options.num_users = 50;
    gen_options.seed = 4;
    workload::TweetGenerator gen(gen_options, 1000);
    std::map<std::string, int64_t> truth;
    for (int i = 0; i < 600; ++i) {
      const workload::Tweet t = gen.Next();
      truth[std::string(t.user)]++;
      ASSERT_OK(engine->Publish("tweets", t.user, t.json, t.ts));
    }
    ASSERT_OK(engine->Drain());
    for (const auto& [user, expected] : truth) {
      Result<Bytes> slate = engine->FetchSlate("per_user", user);
      ASSERT_OK(slate);
      JsonSlate s(&slate.value());
      (*counts)[user] = s.data().GetInt("count");
    }
    ASSERT_OK(engine->Stop());
  };

  std::map<std::string, int64_t> muppet1_counts, muppet2_counts;
  run(false, &muppet1_counts);
  run(true, &muppet2_counts);
  EXPECT_EQ(muppet1_counts, muppet2_counts);
  EXPECT_FALSE(muppet1_counts.empty());
}

}  // namespace
}  // namespace muppet
