// Robustness: the durable store becomes unavailable while the engine
// runs. The engine must keep processing from its caches (the paper's
// latency-first stance), and once the store returns, retried flushes must
// converge it to the live state — no update silently dropped.
#include <memory>
#include <string>

#include "core/slate.h"
#include "core/slate_cache.h"
#include "core/slate_store.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "kvstore/cluster.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;
using ::muppet::testing::CountOf;
using ::muppet::testing::TempDir;

TEST(StoreOutageTest, CacheRetriesFailedFlushes) {
  // Unit-level: a write-back that fails must leave the entry dirty so a
  // later flush retries it.
  bool store_up = true;
  int64_t stored = 0;
  SlateCache cache({.capacity = 100},
                   [&](const SlateCache::DirtySlate&) -> Status {
                     if (!store_up) return Status::Unavailable("down");
                     ++stored;
                     return Status::OK();
                   });
  ASSERT_OK(cache.Update(SlateId{"U", "k"}, "v1", 10, false));
  store_up = false;
  EXPECT_FALSE(cache.FlushDirty(INT64_MAX).ok());
  EXPECT_EQ(stored, 0);
  store_up = true;
  auto flushed = cache.FlushDirty(INT64_MAX);
  ASSERT_OK(flushed);
  EXPECT_EQ(flushed.value(), 1) << "the failed flush must be retried";
  EXPECT_EQ(stored, 1);
  // And nothing left after the retry.
  EXPECT_EQ(cache.FlushDirty(INT64_MAX).value(), 0);
}

TEST(StoreOutageTest, EngineSurvivesStoreOutageAndConverges) {
  TempDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 1;
  kv_options.replication_factor = 1;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster cluster(kv_options);
  ASSERT_OK(cluster.Open());
  SlateStore store(&cluster, SlateStoreOptions{});

  AppConfig config;
  UpdaterOptions updater_options;
  updater_options.flush_policy = SlateFlushPolicy::kInterval;
  updater_options.flush_interval_micros = kMicrosPerMilli;
  BuildCountingApp(&config, /*forward=*/false, updater_options);

  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.slate_store = &store;
  options.flush_poll_micros = kMicrosPerMilli;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());

  // Warm phase: slates exist in cache and store.
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 4), "", i + 1));
  }
  ASSERT_OK(engine.Drain());

  // Outage: the store node dies; the engine keeps counting from cache.
  cluster.CrashNode(0);
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 4), "",
                             100 + i));
  }
  ASSERT_OK(engine.Drain());
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(CountOf(engine, "count", "k" + std::to_string(k)), 20)
        << "live processing must not depend on the store";
  }

  // Recovery: the store returns; Stop() flushes the retried state.
  cluster.RestoreNode(0);
  ASSERT_OK(engine.Stop());
  int64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    Result<Bytes> slate =
        store.Read(SlateId{"count", "k" + std::to_string(k)});
    ASSERT_OK(slate);
    JsonSlate s(&slate.value());
    total += s.data().GetInt("count");
  }
  EXPECT_EQ(total, 80) << "the store must converge to the live state after "
                          "the outage";
}

}  // namespace
}  // namespace muppet
