#include "kvstore/bloom.h"

#include <string>

#include "gtest/gtest.h"

namespace muppet {
namespace kv {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter f(1000);
  for (int i = 0; i < 1000; ++i) f.Add("key" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.MayContain("key" + std::to_string(i)));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilter f(1000, 10);
  for (int i = 0; i < 1000; ++i) f.Add("key" + std::to_string(i));
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (f.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  // 10 bits/key gives ~1%; allow 3%.
  EXPECT_LT(false_positives, 300);
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter f(100);
  for (int i = 0; i < 100; ++i) f.Add("k" + std::to_string(i));
  Bytes wire;
  f.Serialize(&wire);
  BloomFilter g = BloomFilter::Deserialize(wire);
  EXPECT_EQ(g.num_hashes(), f.num_hashes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(g.MayContain("k" + std::to_string(i)));
  }
  // And the false-positive behaviour matches exactly.
  int mismatches = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string probe = "absent" + std::to_string(i);
    if (f.MayContain(probe) != g.MayContain(probe)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(BloomTest, MalformedDeserializeIsAlwaysMaybe) {
  BloomFilter f = BloomFilter::Deserialize("");
  EXPECT_TRUE(f.MayContain("anything"));
  BloomFilter g = BloomFilter::Deserialize("\xff\xff\xff");
  EXPECT_TRUE(g.MayContain("anything"));
}

TEST(BloomTest, EmptyFilterContainsNothingAdded) {
  BloomFilter f(10);
  int positives = 0;
  for (int i = 0; i < 100; ++i) {
    if (f.MayContain("x" + std::to_string(i))) ++positives;
  }
  EXPECT_EQ(positives, 0);
}

TEST(BloomTest, ZeroExpectedKeysStillUsable) {
  BloomFilter f(0);
  f.Add("one");
  EXPECT_TRUE(f.MayContain("one"));
}

TEST(BloomTest, BinaryKeys) {
  BloomFilter f(10);
  const Bytes key("\x00\x01\x02\x00", 4);
  f.Add(key);
  EXPECT_TRUE(f.MayContain(key));
}

}  // namespace
}  // namespace kv
}  // namespace muppet
