// Fault-injected property test for the replicated store: random
// puts/deletes/gets interleaved with node crashes and restores, checked
// against an in-memory model. The consistency contract under test
// (paper §4.2's quorum discussion):
//   * writes at QUORUM that succeed are never lost while a quorum of
//     replicas remains;
//   * reads at QUORUM observe the latest successful QUORUM write
//     (read-your-quorum-writes, via overlap + read repair);
//   * operations fail cleanly (Unavailable) when too few replicas are up.
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "kvstore/cluster.h"
#include "tests/test_util.h"

namespace muppet {
namespace kv {
namespace {

using ::muppet::testing::TempDir;

class ClusterFaultTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterFaultTest, QuorumHistoryIsLinearPerKey) {
  TempDir dir;
  KvClusterOptions options;
  options.num_nodes = 5;
  options.replication_factor = 3;
  options.node.data_dir = dir.path();
  KvCluster cluster(options);
  ASSERT_OK(cluster.Open());

  // Model: last *successfully quorum-acknowledged* value per key. Failed
  // quorum writes may still land on a minority replica (the store, like
  // Cassandra, does not roll back) — those keys become "tainted": any of
  // the attempted values may later surface.
  std::map<Bytes, std::optional<Bytes>> model;
  std::map<Bytes, std::set<Bytes>> maybe;  // values of failed writes
  std::map<Bytes, bool> maybe_deleted;     // failed deletes
  Rng rng(GetParam());
  std::set<int> down;

  constexpr int kOps = 1500;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t dice = rng.Uniform(100);
    const Bytes row = "key" + std::to_string(rng.Uniform(25));

    if (dice < 8 && down.size() < 2) {
      int victim;
      do {
        victim = static_cast<int>(rng.Uniform(5));
      } while (down.count(victim) > 0);
      cluster.CrashNode(victim);
      down.insert(victim);
      continue;
    }
    if (dice < 14 && !down.empty()) {
      const int node = *down.begin();
      cluster.RestoreNode(node);
      down.erase(node);
      continue;
    }
    if (dice < 55) {
      const Bytes value = "v" + std::to_string(op);
      Status s = cluster.Put("cf", row, "col", value, {},
                             ConsistencyLevel::kQuorum);
      if (s.ok()) {
        model[row] = value;
        maybe[row].clear();
        maybe_deleted[row] = false;
      } else {
        ASSERT_TRUE(s.IsUnavailable()) << s.ToString();
        maybe[row].insert(value);  // may have landed partially
      }
    } else if (dice < 65) {
      Status s = cluster.Delete("cf", row, "col", ConsistencyLevel::kQuorum);
      if (s.ok()) {
        model[row] = std::nullopt;
        maybe[row].clear();
        maybe_deleted[row] = false;
      } else {
        ASSERT_TRUE(s.IsUnavailable()) << s.ToString();
        maybe_deleted[row] = true;
      }
    } else {
      auto got = cluster.Get("cf", row, "col", ConsistencyLevel::kQuorum);
      if (got.status().IsUnavailable()) continue;  // too few replicas up
      auto it = model.find(row);
      const bool tainted =
          !maybe[row].empty() || maybe_deleted[row];
      if (tainted) {
        // Any of: the model value, a partially-landed value, or gone.
        if (got.ok()) {
          const bool is_model = it != model.end() && it->second.has_value() &&
                                got.value().value == *it->second;
          EXPECT_TRUE(is_model || maybe[row].count(got.value().value) > 0)
              << "op " << op << ": unexpected value " << got.value().value;
        }
      } else if (it == model.end() || !it->second.has_value()) {
        EXPECT_TRUE(got.status().IsNotFound())
            << "op " << op << " key " << row << ": "
            << (got.ok() ? std::string(got.value().value)
                         : got.status().ToString());
      } else {
        ASSERT_OK(got);
        EXPECT_EQ(got.value().value, *it->second) << "op " << op;
      }
    }
  }

  // Restore everyone; untainted keys must agree with the model exactly
  // under a kAll read (read repair converges the replicas).
  for (int node : down) cluster.RestoreNode(node);
  for (const auto& [row, expected] : model) {
    if (!maybe[row].empty() || maybe_deleted[row]) continue;  // tainted
    auto got = cluster.Get("cf", row, "col", ConsistencyLevel::kAll);
    if (!expected.has_value()) {
      EXPECT_TRUE(got.status().IsNotFound()) << row;
    } else {
      ASSERT_OK(got);
      EXPECT_EQ(got.value().value, *expected) << row;
    }
  }
}

TEST_P(ClusterFaultTest, OneLevelSurvivesAnySingleReplica) {
  TempDir dir;
  KvClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 3;
  options.node.data_dir = dir.path();
  KvCluster cluster(options);
  ASSERT_OK(cluster.Open());

  Rng rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 30; ++round) {
    const Bytes row = "k" + std::to_string(round);
    ASSERT_OK(cluster.Put("cf", row, "c", "stable", {},
                          ConsistencyLevel::kAll));
    // Kill any two replicas: kOne still answers from the third.
    const auto replicas = cluster.ReplicasFor(row);
    const size_t a = rng.Uniform(3);
    const size_t b = (a + 1 + rng.Uniform(2)) % 3;
    cluster.CrashNode(replicas[a]);
    cluster.CrashNode(replicas[b]);
    auto got = cluster.Get("cf", row, "c", ConsistencyLevel::kOne);
    ASSERT_OK(got);
    EXPECT_EQ(got.value().value, "stable");
    cluster.RestoreNode(replicas[a]);
    cluster.RestoreNode(replicas[b]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFaultTest,
                         ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace kv
}  // namespace muppet
