#include "kvstore/cluster.h"

#include <set>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace kv {
namespace {

using ::muppet::testing::TempDir;

KvClusterOptions SmallCluster(const std::string& dir, int nodes = 3,
                              int rf = 3, Clock* clock = nullptr) {
  KvClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor = rf;
  options.node.data_dir = dir;
  options.node.memtable_flush_bytes = 16 << 10;
  options.node.clock = clock;
  return options;
}

TEST(KvClusterTest, PutGetRoundTrip) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path()));
  ASSERT_OK(cluster.Open());
  ASSERT_OK(cluster.Put("cf", "row", "col", "value"));
  auto got = cluster.Get("cf", "row", "col");
  ASSERT_OK(got);
  EXPECT_EQ(got.value().value, "value");
}

TEST(KvClusterTest, ReplicasAreDistinctAndStable) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 5, 3));
  ASSERT_OK(cluster.Open());
  for (int i = 0; i < 100; ++i) {
    const std::string row = "row" + std::to_string(i);
    const auto replicas = cluster.ReplicasFor(row);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<int> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    EXPECT_EQ(replicas, cluster.ReplicasFor(row)) << "placement must be "
                                                     "deterministic";
  }
}

TEST(KvClusterTest, ReplicaPlacementBalanced) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 4, 1));
  ASSERT_OK(cluster.Open());
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    counts[cluster.ReplicasFor("row" + std::to_string(i))[0]]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 400);  // perfect would be 1000 each
    EXPECT_LT(c, 2000);
  }
}

TEST(KvClusterTest, RequiredAcksPerLevel) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 5, 3));
  EXPECT_EQ(cluster.Required(ConsistencyLevel::kOne), 1);
  EXPECT_EQ(cluster.Required(ConsistencyLevel::kQuorum), 2);
  EXPECT_EQ(cluster.Required(ConsistencyLevel::kAll), 3);
}

TEST(KvClusterTest, ReplicationFactorClampedToClusterSize) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 2, 5));
  ASSERT_OK(cluster.Open());
  EXPECT_EQ(cluster.ReplicasFor("row").size(), 2u);
}

TEST(KvClusterTest, SurvivesMinorityNodeCrash) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 3, 3));
  ASSERT_OK(cluster.Open());
  ASSERT_OK(cluster.Put("cf", "row", "col", "v1"));
  cluster.CrashNode(cluster.ReplicasFor("row")[0]);
  // Quorum (2 of 3) still reachable for both read and write.
  auto got = cluster.Get("cf", "row", "col", ConsistencyLevel::kQuorum);
  ASSERT_OK(got);
  EXPECT_EQ(got.value().value, "v1");
  ASSERT_OK(cluster.Put("cf", "row", "col", "v2", {},
                        ConsistencyLevel::kQuorum));
  EXPECT_EQ(cluster.Get("cf", "row", "col").value().value, "v2");
}

TEST(KvClusterTest, AllLevelFailsWithNodeDown) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 3, 3));
  ASSERT_OK(cluster.Open());
  cluster.CrashNode(0);
  Status s = cluster.Put("cf", "row", "col", "v", {}, ConsistencyLevel::kAll);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(KvClusterTest, MajorityCrashMakesQuorumUnavailable) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 3, 3));
  ASSERT_OK(cluster.Open());
  ASSERT_OK(cluster.Put("cf", "row", "col", "v"));
  cluster.CrashNode(0);
  cluster.CrashNode(1);
  EXPECT_TRUE(cluster
                  .Get("cf", "row", "col", ConsistencyLevel::kQuorum)
                  .status()
                  .IsUnavailable());
  // ONE still works via the surviving replica.
  auto got = cluster.Get("cf", "row", "col", ConsistencyLevel::kOne);
  ASSERT_OK(got);
  EXPECT_EQ(got.value().value, "v");
}

TEST(KvClusterTest, ReadRepairHealsStaleReplica) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 3, 3));
  ASSERT_OK(cluster.Open());
  const auto replicas = cluster.ReplicasFor("row");

  ASSERT_OK(cluster.Put("cf", "row", "col", "v1", {},
                        ConsistencyLevel::kAll));
  // One replica misses the update.
  cluster.CrashNode(replicas[2]);
  ASSERT_OK(cluster.Put("cf", "row", "col", "v2", {},
                        ConsistencyLevel::kQuorum));
  cluster.RestoreNode(replicas[2]);

  // A kAll read touches the stale replica, returns the newest value, and
  // repairs the stale copy.
  auto got = cluster.Get("cf", "row", "col", ConsistencyLevel::kAll);
  ASSERT_OK(got);
  EXPECT_EQ(got.value().value, "v2");
  EXPECT_GT(cluster.read_repairs(), 0);

  // The previously stale replica now answers v2 on its own.
  auto direct = cluster.node(replicas[2])->Get("cf", "row", "col");
  ASSERT_OK(direct);
  EXPECT_EQ(direct.value().value, "v2");
}

TEST(KvClusterTest, DeleteWinsOverOlderPutAcrossReplicas) {
  TempDir dir;
  SimulatedClock clock(1000000);
  KvCluster cluster(SmallCluster(dir.path(), 3, 3, &clock));
  ASSERT_OK(cluster.Open());
  ASSERT_OK(cluster.Put("cf", "row", "col", "v1", {},
                        ConsistencyLevel::kAll));
  clock.Advance(10);
  ASSERT_OK(cluster.Delete("cf", "row", "col", ConsistencyLevel::kAll));
  clock.Advance(10);
  EXPECT_TRUE(cluster.Get("cf", "row", "col", ConsistencyLevel::kAll)
                  .status()
                  .IsNotFound());
}

TEST(KvClusterTest, TtlHonoredThroughCluster) {
  TempDir dir;
  SimulatedClock clock(1000000);
  KvCluster cluster(SmallCluster(dir.path(), 3, 2, &clock));
  ASSERT_OK(cluster.Open());
  WriteOptions ttl;
  ttl.ttl_micros = 1000;
  ASSERT_OK(cluster.Put("cf", "row", "col", "ephemeral", ttl));
  ASSERT_OK(cluster.Get("cf", "row", "col").status());
  clock.Advance(2000);
  EXPECT_TRUE(cluster.Get("cf", "row", "col").status().IsNotFound());
}

TEST(KvClusterTest, ScanRowMergesReplicas) {
  TempDir dir;
  KvCluster cluster(SmallCluster(dir.path(), 3, 2));
  ASSERT_OK(cluster.Open());
  ASSERT_OK(cluster.Put("cf", "user1", "U1", "a"));
  ASSERT_OK(cluster.Put("cf", "user1", "U2", "b"));
  ASSERT_OK(cluster.Put("cf", "user1", "U1", "a2"));
  std::vector<Record> out;
  ASSERT_OK(cluster.ScanRow("cf", "user1", &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, "a2");
  EXPECT_EQ(out[1].value, "b");
}

TEST(KvClusterTest, RestartRecoversData) {
  TempDir dir;
  {
    KvCluster cluster(SmallCluster(dir.path()));
    ASSERT_OK(cluster.Open());
    for (int i = 0; i < 30; ++i) {
      ASSERT_OK(cluster.Put("cf", "row" + std::to_string(i), "col",
                            "v" + std::to_string(i)));
    }
    ASSERT_OK(cluster.FlushAll());
  }
  KvCluster reopened(SmallCluster(dir.path()));
  ASSERT_OK(reopened.Open());
  for (int i = 0; i < 30; ++i) {
    auto got = reopened.Get("cf", "row" + std::to_string(i), "col");
    ASSERT_OK(got);
    EXPECT_EQ(got.value().value, "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace kv
}  // namespace muppet
