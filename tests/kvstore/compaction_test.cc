#include "kvstore/compaction.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace kv {
namespace {

Record MakeRecord(const Bytes& key, const Bytes& value, uint64_t seqno,
                  bool tombstone = false, Timestamp expire_at = kNoExpiry) {
  Record rec;
  rec.key = key;
  rec.value = value;
  rec.seqno = seqno;
  rec.tombstone = tombstone;
  rec.expire_at = expire_at;
  return rec;
}

TEST(PickCompactionsTest, NoCompactionBelowThreshold) {
  CompactionPolicy policy;
  policy.min_threshold = 4;
  EXPECT_TRUE(PickSizeTieredCompactions({100, 110, 105}, policy).empty());
  EXPECT_TRUE(PickSizeTieredCompactions({}, policy).empty());
}

TEST(PickCompactionsTest, SimilarSizesGroup) {
  CompactionPolicy policy;
  policy.min_threshold = 4;
  const auto groups =
      PickSizeTieredCompactions({100, 104, 98, 102, 100000}, policy);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
  // The big table is not in the group.
  for (size_t idx : groups[0]) EXPECT_NE(idx, 4u);
}

TEST(PickCompactionsTest, DissimilarSizesDoNotGroup) {
  CompactionPolicy policy;
  policy.min_threshold = 2;
  policy.bucket_ratio = 1.5;
  // 100 and 1000 are in different tiers; 1000 and 1400 are in the same.
  const auto groups = PickSizeTieredCompactions({100, 1000, 1400}, policy);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(PickCompactionsTest, MaxThresholdCapsGroup) {
  CompactionPolicy policy;
  policy.min_threshold = 2;
  policy.max_threshold = 3;
  std::vector<uint64_t> sizes(10, 100);
  const auto groups = PickSizeTieredCompactions(sizes, policy);
  ASSERT_FALSE(groups.empty());
  EXPECT_LE(groups[0].size(), 3u);
}

TEST(MergeTest, NewestVersionWins) {
  std::vector<std::vector<Record>> inputs;
  inputs.push_back({MakeRecord("a", "old", 1), MakeRecord("b", "keep", 2)});
  inputs.push_back({MakeRecord("a", "new", 5)});
  const auto merged = MergeRecordStreams(std::move(inputs), 0, false);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, "a");
  EXPECT_EQ(merged[0].value, "new");
  EXPECT_EQ(merged[1].value, "keep");
}

TEST(MergeTest, OutputSortedUnique) {
  std::vector<std::vector<Record>> inputs;
  inputs.push_back({MakeRecord("c", "1", 1), MakeRecord("d", "2", 2)});
  inputs.push_back({MakeRecord("a", "3", 3), MakeRecord("c", "4", 4)});
  const auto merged = MergeRecordStreams(std::move(inputs), 0, false);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, "a");
  EXPECT_EQ(merged[1].key, "c");
  EXPECT_EQ(merged[1].value, "4");
  EXPECT_EQ(merged[2].key, "d");
}

TEST(MergeTest, TombstonesRetainedWithoutDropGarbage) {
  std::vector<std::vector<Record>> inputs;
  inputs.push_back({MakeRecord("a", "live", 1)});
  inputs.push_back({MakeRecord("a", "", 5, /*tombstone=*/true)});
  const auto merged = MergeRecordStreams(std::move(inputs), 0,
                                         /*drop_garbage=*/false);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_TRUE(merged[0].tombstone)
      << "tombstone must keep shadowing older tables";
}

TEST(MergeTest, TombstonesDroppedWithDropGarbage) {
  std::vector<std::vector<Record>> inputs;
  inputs.push_back({MakeRecord("a", "live", 1), MakeRecord("b", "v", 2)});
  inputs.push_back({MakeRecord("a", "", 5, /*tombstone=*/true)});
  const auto merged = MergeRecordStreams(std::move(inputs), 0,
                                         /*drop_garbage=*/true);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].key, "b");
}

TEST(MergeTest, ExpiredRecordsDroppedWithDropGarbage) {
  std::vector<std::vector<Record>> inputs;
  inputs.push_back({MakeRecord("a", "expired", 1, false, /*expire_at=*/100),
                    MakeRecord("b", "fresh", 2, false, /*expire_at=*/10000)});
  const auto merged = MergeRecordStreams(std::move(inputs), /*now=*/500,
                                         /*drop_garbage=*/true);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].key, "b");
}

TEST(MergeTest, ExpiredShadowStillHidesOlderVersion) {
  // An expired *newer* version must not resurrect the older one.
  std::vector<std::vector<Record>> inputs;
  inputs.push_back({MakeRecord("a", "ancient", 1)});
  inputs.push_back({MakeRecord("a", "expired", 9, false, /*expire_at=*/100)});
  const auto merged = MergeRecordStreams(std::move(inputs), /*now=*/500,
                                         /*drop_garbage=*/true);
  EXPECT_TRUE(merged.empty())
      << "the newest version is expired, so the key is gone";
}

TEST(MergeTest, EmptyInputs) {
  EXPECT_TRUE(MergeRecordStreams({}, 0, true).empty());
  std::vector<std::vector<Record>> inputs(3);
  EXPECT_TRUE(MergeRecordStreams(std::move(inputs), 0, false).empty());
}

}  // namespace
}  // namespace kv
}  // namespace muppet
