#include "kvstore/format.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace kv {
namespace {

TEST(StorageKeyTest, RoundTrip) {
  const struct {
    Bytes row, column;
  } cases[] = {
      {"user42", "U1"},
      {"", ""},
      {"row", ""},
      {"", "col"},
      {Bytes("a\0b", 3), "U"},             // NUL inside row
      {Bytes("\0\0", 2), Bytes("\0", 1)},  // NULs everywhere
      {"key with spaces", "updater/with/slash"},
  };
  for (const auto& c : cases) {
    const Bytes encoded = EncodeStorageKey(c.row, c.column);
    Bytes row, column;
    ASSERT_TRUE(DecodeStorageKey(encoded, &row, &column));
    EXPECT_EQ(row, c.row);
    EXPECT_EQ(column, c.column);
  }
}

TEST(StorageKeyTest, OrdersByRowThenColumn) {
  std::vector<Bytes> keys = {
      EncodeStorageKey("a", "z"),
      EncodeStorageKey("b", "a"),
      EncodeStorageKey("a", "a"),
      EncodeStorageKey("ab", "a"),
  };
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys[0], EncodeStorageKey("a", "a"));
  EXPECT_EQ(keys[1], EncodeStorageKey("a", "z"));
  EXPECT_EQ(keys[2], EncodeStorageKey("ab", "a"));
  EXPECT_EQ(keys[3], EncodeStorageKey("b", "a"));
}

TEST(StorageKeyTest, RowPrefixSelectsExactRow) {
  // "user1" prefix must not match "user10"'s keys.
  const Bytes k1 = EncodeStorageKey("user1", "U1");
  const Bytes k10 = EncodeStorageKey("user10", "U1");
  const Bytes prefix = EncodeRowPrefix("user1");
  EXPECT_EQ(k1.compare(0, prefix.size(), prefix), 0);
  EXPECT_NE(k10.compare(0, prefix.size(), prefix), 0);
}

TEST(StorageKeyTest, MalformedRejected) {
  Bytes row, column;
  EXPECT_FALSE(DecodeStorageKey("no-terminator", &row, &column));
  EXPECT_FALSE(DecodeStorageKey(Bytes("a\0", 2), &row, &column));
  EXPECT_FALSE(DecodeStorageKey(Bytes("a\0\x02x", 4), &row, &column));
}

TEST(RecordTest, EncodeDecodeRoundTrip) {
  Record rec;
  rec.key = EncodeStorageKey("row", "col");
  rec.value = "some value bytes";
  rec.seqno = 12345;
  rec.write_ts = 987654321;
  rec.expire_at = 111222333;
  rec.tombstone = false;

  Bytes wire;
  EncodeRecord(rec, &wire);
  Record decoded;
  const char* p = wire.data();
  ASSERT_OK(DecodeRecord(&p, wire.data() + wire.size(), &decoded));
  EXPECT_EQ(p, wire.data() + wire.size());
  EXPECT_EQ(decoded.key, rec.key);
  EXPECT_EQ(decoded.value, rec.value);
  EXPECT_EQ(decoded.seqno, rec.seqno);
  EXPECT_EQ(decoded.write_ts, rec.write_ts);
  EXPECT_EQ(decoded.expire_at, rec.expire_at);
  EXPECT_FALSE(decoded.tombstone);
}

TEST(RecordTest, TombstoneFlagSurvives) {
  Record rec;
  rec.key = "k";
  rec.tombstone = true;
  Bytes wire;
  EncodeRecord(rec, &wire);
  Record decoded;
  const char* p = wire.data();
  ASSERT_OK(DecodeRecord(&p, wire.data() + wire.size(), &decoded));
  EXPECT_TRUE(decoded.tombstone);
}

TEST(RecordTest, MultipleRecordsBackToBack) {
  Bytes wire;
  for (int i = 0; i < 10; ++i) {
    Record rec;
    rec.key = "key" + std::to_string(i);
    rec.value = "value" + std::to_string(i);
    rec.seqno = static_cast<uint64_t>(i);
    EncodeRecord(rec, &wire);
  }
  const char* p = wire.data();
  const char* limit = wire.data() + wire.size();
  for (int i = 0; i < 10; ++i) {
    Record decoded;
    ASSERT_OK(DecodeRecord(&p, limit, &decoded));
    EXPECT_EQ(decoded.key, "key" + std::to_string(i));
  }
  EXPECT_EQ(p, limit);
}

TEST(RecordTest, TruncationDetected) {
  Record rec;
  rec.key = "key";
  rec.value = "value";
  Bytes wire;
  EncodeRecord(rec, &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Record decoded;
    const char* p = wire.data();
    Status s = DecodeRecord(&p, wire.data() + cut, &decoded);
    EXPECT_FALSE(s.ok()) << "cut at " << cut;
  }
}

TEST(RecordTest, BadFlagsRejected) {
  Record rec;
  rec.key = "k";
  Bytes wire;
  EncodeRecord(rec, &wire);
  wire.back() = 7;  // invalid flags
  Record decoded;
  const char* p = wire.data();
  EXPECT_FALSE(DecodeRecord(&p, wire.data() + wire.size(), &decoded).ok());
}

TEST(RecordTest, ExpiryPredicate) {
  Record rec;
  rec.expire_at = kNoExpiry;
  EXPECT_FALSE(rec.ExpiredAt(INT64_MAX));
  rec.expire_at = 100;
  EXPECT_FALSE(rec.ExpiredAt(99));
  EXPECT_TRUE(rec.ExpiredAt(100));
  EXPECT_TRUE(rec.ExpiredAt(101));
}

TEST(RecordTest, NewerBySeqno) {
  Record a, b;
  a.seqno = 5;
  b.seqno = 3;
  EXPECT_TRUE(Newer(a, b));
  EXPECT_FALSE(Newer(b, a));
}

}  // namespace
}  // namespace kv
}  // namespace muppet
