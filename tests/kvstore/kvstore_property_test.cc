// Model-based property test: a random sequence of Put/Delete/Get/Scan/
// Flush/Compact against the storage shard must agree with a trivial
// in-memory model, across a grid of store configurations (memtable size,
// WAL, auto-compaction, device profile). This is the kvstore's main
// correctness net: any divergence between LSM mechanics (shadowing,
// tombstones, merges) and the model is a bug.
#include <map>
#include <optional>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "kvstore/node.h"
#include "tests/test_util.h"

namespace muppet {
namespace kv {
namespace {

using ::muppet::testing::TempDir;

// (memtable_bytes, enable_wal, auto_compact)
using StoreParams = std::tuple<size_t, bool, bool>;

class KvStorePropertyTest : public ::testing::TestWithParam<StoreParams> {};

TEST_P(KvStorePropertyTest, RandomOpsMatchModel) {
  const auto [memtable_bytes, enable_wal, auto_compact] = GetParam();
  TempDir dir;
  NodeOptions options;
  options.data_dir = dir.path();
  options.memtable_flush_bytes = memtable_bytes;
  options.enable_wal = enable_wal;
  options.auto_compact = auto_compact;
  options.compaction.min_threshold = 3;
  StorageNode node(options);
  ASSERT_OK(node.Open());
  auto shard_or = node.GetColumnFamily("cf");
  ASSERT_OK(shard_or);
  Shard* shard = shard_or.value();

  std::map<std::pair<Bytes, Bytes>, Bytes> model;
  Rng rng(static_cast<uint64_t>(memtable_bytes) * 31 + enable_wal * 7 +
          auto_compact * 3);

  constexpr int kOps = 3000;
  for (int op = 0; op < kOps; ++op) {
    const Bytes row = "row" + std::to_string(rng.Uniform(40));
    const Bytes col = "col" + std::to_string(rng.Uniform(4));
    const uint64_t dice = rng.Uniform(100);
    if (dice < 55) {
      const Bytes value = "v" + std::to_string(op) + "-" +
                          Bytes(rng.Uniform(64), 'x');
      ASSERT_OK(node.Put("cf", row, col, value));
      model[{row, col}] = value;
    } else if (dice < 70) {
      ASSERT_OK(node.Delete("cf", row, col));
      model.erase({row, col});
    } else if (dice < 90) {
      auto got = node.Get("cf", row, col);
      auto it = model.find({row, col});
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound())
            << "op " << op << ": store has a value the model deleted";
      } else {
        ASSERT_OK(got);
        EXPECT_EQ(got.value().value, it->second) << "op " << op;
      }
    } else if (dice < 95) {
      ASSERT_OK(shard->Flush());
    } else {
      ASSERT_OK(shard->CompactAll());
    }
  }

  // Full sweep at the end: every model row must match ScanRow exactly.
  for (int r = 0; r < 40; ++r) {
    const Bytes row = "row" + std::to_string(r);
    std::vector<Record> scanned;
    ASSERT_OK(node.ScanRow("cf", row, &scanned));
    std::map<Bytes, Bytes> from_scan;
    for (const Record& rec : scanned) {
      Bytes rrow, rcol;
      ASSERT_TRUE(DecodeStorageKey(rec.key, &rrow, &rcol));
      EXPECT_EQ(rrow, row);
      from_scan[rcol] = rec.value;
    }
    std::map<Bytes, Bytes> from_model;
    for (const auto& [key, value] : model) {
      if (key.first == row) from_model[key.second] = value;
    }
    EXPECT_EQ(from_scan, from_model) << "row " << row;
  }

  // And the full scan agrees with the model's size.
  std::vector<Record> all;
  ASSERT_OK(shard->ScanAll(&all));
  EXPECT_EQ(all.size(), model.size());
}

TEST_P(KvStorePropertyTest, ReopenPreservesEverythingWalOn) {
  const auto [memtable_bytes, enable_wal, auto_compact] = GetParam();
  if (!enable_wal) GTEST_SKIP() << "durability across restart needs the WAL";

  TempDir dir;
  NodeOptions options;
  options.data_dir = dir.path();
  options.memtable_flush_bytes = memtable_bytes;
  options.enable_wal = true;
  options.auto_compact = auto_compact;

  std::map<Bytes, Bytes> model;
  Rng rng(99);
  {
    StorageNode node(options);
    ASSERT_OK(node.Open());
    for (int op = 0; op < 800; ++op) {
      const Bytes row = "r" + std::to_string(rng.Uniform(60));
      if (rng.Chance(0.85)) {
        const Bytes value = "val" + std::to_string(op);
        ASSERT_OK(node.Put("cf", row, "c", value));
        model[row] = value;
      } else {
        ASSERT_OK(node.Delete("cf", row, "c"));
        model.erase(row);
      }
    }
    // No explicit flush: the WAL must carry the memtable across restart.
  }
  StorageNode reopened(options);
  ASSERT_OK(reopened.Open());
  for (int r = 0; r < 60; ++r) {
    const Bytes row = "r" + std::to_string(r);
    auto got = reopened.Get("cf", row, "c");
    auto it = model.find(row);
    if (it == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << row;
    } else {
      ASSERT_OK(got);
      EXPECT_EQ(got.value().value, it->second) << row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, KvStorePropertyTest,
    ::testing::Combine(
        ::testing::Values<size_t>(2 << 10, 64 << 10, 4 << 20),
        ::testing::Bool(),   // WAL
        ::testing::Bool()),  // auto-compaction
    [](const ::testing::TestParamInfo<StoreParams>& info) {
      return "mem" + std::to_string(std::get<0>(info.param) / 1024) + "k_" +
             (std::get<1>(info.param) ? std::string("wal")
                                      : std::string("nowal")) +
             "_" +
             (std::get<2>(info.param) ? std::string("compact")
                                      : std::string("nocompact"));
    });

}  // namespace
}  // namespace kv
}  // namespace muppet
