#include "kvstore/memtable.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace muppet {
namespace kv {
namespace {

Record MakeRecord(const Bytes& row, const Bytes& col, const Bytes& value,
                  uint64_t seqno) {
  Record rec;
  rec.key = EncodeStorageKey(row, col);
  rec.value = value;
  rec.seqno = seqno;
  return rec;
}

TEST(MemTableTest, PutGet) {
  MemTable table;
  table.Put(MakeRecord("row", "col", "v1", 1));
  Record out;
  ASSERT_TRUE(table.Get(EncodeStorageKey("row", "col"), &out));
  EXPECT_EQ(out.value, "v1");
  EXPECT_FALSE(table.Get(EncodeStorageKey("row", "other"), &out));
}

TEST(MemTableTest, OverwriteCoalesces) {
  MemTable table;
  for (int i = 0; i < 100; ++i) {
    table.Put(MakeRecord("row", "col", "v" + std::to_string(i),
                         static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(table.entry_count(), 1u);
  Record out;
  ASSERT_TRUE(table.Get(EncodeStorageKey("row", "col"), &out));
  EXPECT_EQ(out.value, "v99");
  EXPECT_EQ(out.seqno, 99u);
}

TEST(MemTableTest, TombstonesStored) {
  MemTable table;
  Record del = MakeRecord("row", "col", "", 2);
  del.tombstone = true;
  table.Put(del);
  Record out;
  ASSERT_TRUE(table.Get(EncodeStorageKey("row", "col"), &out));
  EXPECT_TRUE(out.tombstone);
}

TEST(MemTableTest, SnapshotSorted) {
  MemTable table;
  table.Put(MakeRecord("c", "x", "3", 3));
  table.Put(MakeRecord("a", "x", "1", 1));
  table.Put(MakeRecord("b", "x", "2", 2));
  const auto snapshot = table.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_LT(snapshot[0].key, snapshot[1].key);
  EXPECT_LT(snapshot[1].key, snapshot[2].key);
}

TEST(MemTableTest, ScanByRowPrefix) {
  MemTable table;
  table.Put(MakeRecord("user1", "U1", "a", 1));
  table.Put(MakeRecord("user1", "U2", "b", 2));
  table.Put(MakeRecord("user10", "U1", "c", 3));
  table.Put(MakeRecord("user2", "U1", "d", 4));
  const auto rows = table.Scan(EncodeRowPrefix("user1"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].value, "a");
  EXPECT_EQ(rows[1].value, "b");
}

TEST(MemTableTest, ApproximateBytesTracksGrowthAndClear) {
  MemTable table;
  EXPECT_EQ(table.approximate_bytes(), 0u);
  table.Put(MakeRecord("row", "col", std::string(1000, 'v'), 1));
  const size_t after_one = table.approximate_bytes();
  EXPECT_GT(after_one, 1000u);
  // Overwrite with smaller value shrinks the estimate.
  table.Put(MakeRecord("row", "col", "small", 2));
  EXPECT_LT(table.approximate_bytes(), after_one);
  table.Clear();
  EXPECT_EQ(table.approximate_bytes(), 0u);
  EXPECT_TRUE(table.empty());
}

TEST(MemTableTest, ConcurrentWritersDistinctKeys) {
  MemTable table;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        table.Put(MakeRecord("t" + std::to_string(t),
                             "c" + std::to_string(i), "v",
                             static_cast<uint64_t>(t * kPerThread + i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.entry_count(),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace kv
}  // namespace muppet
