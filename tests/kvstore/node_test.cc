#include "kvstore/node.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace kv {
namespace {

using ::muppet::testing::TempDir;

NodeOptions SmallNodeOptions(const std::string& dir, Clock* clock = nullptr) {
  NodeOptions options;
  options.data_dir = dir;
  options.memtable_flush_bytes = 8 << 10;  // flush often in tests
  options.clock = clock;
  return options;
}

TEST(NodeTest, PutGetDelete) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  ASSERT_OK(node.Put("cf", "row1", "col1", "hello"));
  auto got = node.Get("cf", "row1", "col1");
  ASSERT_OK(got);
  EXPECT_EQ(got.value().value, "hello");

  ASSERT_OK(node.Delete("cf", "row1", "col1"));
  EXPECT_TRUE(node.Get("cf", "row1", "col1").status().IsNotFound());
}

TEST(NodeTest, OverwriteReturnsLatest) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(node.Put("cf", "row", "col", "v" + std::to_string(i)));
  }
  EXPECT_EQ(node.Get("cf", "row", "col").value().value, "v9");
}

TEST(NodeTest, GetSpansMemtableAndSsTables) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  ASSERT_OK(node.Put("cf", "flushed", "c", "on-disk"));
  ASSERT_OK(cf.value()->Flush());
  ASSERT_OK(node.Put("cf", "buffered", "c", "in-memory"));
  EXPECT_EQ(node.Get("cf", "flushed", "c").value().value, "on-disk");
  EXPECT_EQ(node.Get("cf", "buffered", "c").value().value, "in-memory");
}

TEST(NodeTest, NewerMemtableShadowsOlderSsTable) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  ASSERT_OK(node.Put("cf", "k", "c", "old"));
  ASSERT_OK(cf.value()->Flush());
  ASSERT_OK(node.Put("cf", "k", "c", "new"));
  EXPECT_EQ(node.Get("cf", "k", "c").value().value, "new");
  // Delete shadows the SSTable version too.
  ASSERT_OK(node.Delete("cf", "k", "c"));
  ASSERT_OK(cf.value()->Flush());
  EXPECT_TRUE(node.Get("cf", "k", "c").status().IsNotFound());
}

TEST(NodeTest, AutomaticFlushOnMemtableLimit) {
  TempDir dir;
  NodeOptions options = SmallNodeOptions(dir.path());
  options.memtable_flush_bytes = 4 << 10;
  StorageNode node(options);
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  const std::string big(512, 'x');
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(node.Put("cf", "row" + std::to_string(i), "c", big));
  }
  EXPECT_GT(cf.value()->flush_count(), 0u);
  // Everything still readable.
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(node.Get("cf", "row" + std::to_string(i), "c").status());
  }
}

TEST(NodeTest, RecoveryFromWalAfterRestart) {
  TempDir dir;
  {
    StorageNode node(SmallNodeOptions(dir.path()));
    ASSERT_OK(node.Open());
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(node.Put("cf", "row" + std::to_string(i), "c",
                         "v" + std::to_string(i)));
    }
    // No flush: values only in WAL + memtable.
  }
  StorageNode reopened(SmallNodeOptions(dir.path()));
  ASSERT_OK(reopened.Open());
  for (int i = 0; i < 20; ++i) {
    auto got = reopened.Get("cf", "row" + std::to_string(i), "c");
    ASSERT_OK(got);
    EXPECT_EQ(got.value().value, "v" + std::to_string(i));
  }
}

TEST(NodeTest, RecoveryFromSsTablesAfterRestart) {
  TempDir dir;
  {
    StorageNode node(SmallNodeOptions(dir.path()));
    ASSERT_OK(node.Open());
    auto cf = node.GetColumnFamily("cf");
    ASSERT_OK(cf);
    ASSERT_OK(node.Put("cf", "a", "c", "1"));
    ASSERT_OK(cf.value()->Flush());
    ASSERT_OK(node.Put("cf", "b", "c", "2"));
    ASSERT_OK(cf.value()->Flush());
  }
  StorageNode reopened(SmallNodeOptions(dir.path()));
  ASSERT_OK(reopened.Open());
  EXPECT_EQ(reopened.Get("cf", "a", "c").value().value, "1");
  EXPECT_EQ(reopened.Get("cf", "b", "c").value().value, "2");
  // Seqnos continue past recovered ones: a new overwrite must win.
  ASSERT_OK(reopened.Put("cf", "a", "c", "3"));
  EXPECT_EQ(reopened.Get("cf", "a", "c").value().value, "3");
}

TEST(NodeTest, RecoveryWithoutWal) {
  TempDir dir;
  NodeOptions options = SmallNodeOptions(dir.path());
  options.enable_wal = false;
  {
    StorageNode node(options);
    ASSERT_OK(node.Open());
    auto cf = node.GetColumnFamily("cf");
    ASSERT_OK(cf);
    ASSERT_OK(node.Put("cf", "a", "c", "persisted"));
    ASSERT_OK(cf.value()->Flush());
    ASSERT_OK(node.Put("cf", "b", "c", "volatile"));
  }
  StorageNode reopened(options);
  ASSERT_OK(reopened.Open());
  EXPECT_EQ(reopened.Get("cf", "a", "c").value().value, "persisted");
  // Unflushed write is lost without a WAL.
  EXPECT_TRUE(reopened.Get("cf", "b", "c").status().IsNotFound());
}

TEST(NodeTest, TtlExpiryOnRead) {
  TempDir dir;
  SimulatedClock clock(1000000);
  StorageNode node(SmallNodeOptions(dir.path(), &clock));
  ASSERT_OK(node.Open());
  WriteOptions ttl;
  ttl.ttl_micros = 500;
  ASSERT_OK(node.Put("cf", "k", "c", "short-lived", ttl));
  EXPECT_EQ(node.Get("cf", "k", "c").value().value, "short-lived");
  clock.Advance(499);
  EXPECT_OK(node.Get("cf", "k", "c").status());
  clock.Advance(2);
  EXPECT_TRUE(node.Get("cf", "k", "c").status().IsNotFound());
}

TEST(NodeTest, TtlExpiredPurgedByCompaction) {
  TempDir dir;
  SimulatedClock clock(1000000);
  StorageNode node(SmallNodeOptions(dir.path(), &clock));
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  WriteOptions ttl;
  ttl.ttl_micros = 100;
  ASSERT_OK(node.Put("cf", "gone", "c", "x", ttl));
  ASSERT_OK(node.Put("cf", "stays", "c", "y"));
  clock.Advance(1000);
  ASSERT_OK(cf.value()->CompactAll());
  EXPECT_TRUE(node.Get("cf", "gone", "c").status().IsNotFound());
  EXPECT_EQ(node.Get("cf", "stays", "c").value().value, "y");
  EXPECT_EQ(cf.value()->sstable_count(), 1u);
}

TEST(NodeTest, CompactionMergesTablesAndPreservesData) {
  TempDir dir;
  NodeOptions options = SmallNodeOptions(dir.path());
  options.auto_compact = false;
  StorageNode node(options);
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  for (int t = 0; t < 6; ++t) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(node.Put("cf", "row" + std::to_string(i), "c",
                         "gen" + std::to_string(t)));
    }
    ASSERT_OK(cf.value()->Flush());
  }
  EXPECT_EQ(cf.value()->sstable_count(), 6u);
  ASSERT_OK(cf.value()->CompactAll());
  EXPECT_EQ(cf.value()->sstable_count(), 1u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(node.Get("cf", "row" + std::to_string(i), "c").value().value,
              "gen5");
  }
}

TEST(NodeTest, AutoCompactionTriggersUnderManyFlushes) {
  TempDir dir;
  NodeOptions options = SmallNodeOptions(dir.path());
  options.memtable_flush_bytes = 2 << 10;
  options.compaction.min_threshold = 4;
  StorageNode node(options);
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  const std::string value(256, 'v');
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK(node.Put("cf", "row" + std::to_string(i % 50), "c", value));
  }
  EXPECT_GT(cf.value()->flush_count(), 4u);
  EXPECT_GT(cf.value()->compaction_count(), 0u);
  // Read amplification bounded: far fewer tables than flushes.
  EXPECT_LT(cf.value()->sstable_count(), cf.value()->flush_count());
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(node.Get("cf", "row" + std::to_string(i), "c").status());
  }
}

TEST(NodeTest, ScanRowAcrossStructures) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  ASSERT_OK(node.Put("cf", "user1", "U1", "a"));
  ASSERT_OK(cf.value()->Flush());
  ASSERT_OK(node.Put("cf", "user1", "U2", "b"));
  ASSERT_OK(node.Put("cf", "user2", "U1", "c"));
  std::vector<Record> out;
  ASSERT_OK(node.ScanRow("cf", "user1", &out));
  ASSERT_EQ(out.size(), 2u);
  // Scan merges: newest value for each column.
  ASSERT_OK(node.Put("cf", "user1", "U1", "a2"));
  out.clear();
  ASSERT_OK(node.ScanRow("cf", "user1", &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, "a2");
}

TEST(NodeTest, MultipleColumnFamiliesIsolated) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  ASSERT_OK(node.Put("cf1", "k", "c", "one"));
  ASSERT_OK(node.Put("cf2", "k", "c", "two"));
  EXPECT_EQ(node.Get("cf1", "k", "c").value().value, "one");
  EXPECT_EQ(node.Get("cf2", "k", "c").value().value, "two");
  const auto families = node.ColumnFamilies();
  EXPECT_EQ(families.size(), 2u);
}

TEST(NodeTest, BadColumnFamilyNameRejected) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  EXPECT_FALSE(node.GetColumnFamily("").ok());
  EXPECT_FALSE(node.GetColumnFamily("a/b").ok());
}

TEST(NodeTest, GetRawExposesTombstones) {
  TempDir dir;
  StorageNode node(SmallNodeOptions(dir.path()));
  ASSERT_OK(node.Open());
  auto cf = node.GetColumnFamily("cf");
  ASSERT_OK(cf);
  ASSERT_OK(node.Put("cf", "k", "c", "v"));
  ASSERT_OK(node.Delete("cf", "k", "c"));
  auto raw = cf.value()->GetRaw("k", "c");
  ASSERT_OK(raw);
  EXPECT_TRUE(raw.value().tombstone);
}

}  // namespace
}  // namespace kv
}  // namespace muppet
