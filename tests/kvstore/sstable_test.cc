#include "kvstore/sstable.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace kv {
namespace {

using ::muppet::testing::TempDir;

std::vector<Record> MakeSortedRecords(int n, const std::string& value_prefix,
                                      uint64_t seqno_base = 0) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    Record rec;
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i);
    rec.key = key;
    rec.value = value_prefix + std::to_string(i);
    rec.seqno = seqno_base + static_cast<uint64_t>(i);
    rec.write_ts = 1000 + i;
    records.push_back(std::move(rec));
  }
  return records;
}

TEST(SsTableTest, WriteOpenGet) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  const auto records = MakeSortedRecords(500, "v");
  ASSERT_OK(WriteSsTable(path, records, nullptr));

  auto reader = SsTableReader::Open(path, nullptr);
  ASSERT_OK(reader);
  EXPECT_EQ(reader.value()->entry_count(), 500u);
  EXPECT_EQ(reader.value()->max_seqno(), 499u);
  EXPECT_EQ(reader.value()->smallest_key(), "key000000");
  EXPECT_EQ(reader.value()->largest_key(), "key000499");

  Record out;
  ASSERT_OK(reader.value()->Get("key000123", &out));
  EXPECT_EQ(out.value, "v123");
  ASSERT_OK(reader.value()->Get("key000000", &out));
  EXPECT_EQ(out.value, "v0");
  ASSERT_OK(reader.value()->Get("key000499", &out));
  EXPECT_EQ(out.value, "v499");
}

TEST(SsTableTest, GetAbsentKeys) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  ASSERT_OK(WriteSsTable(path, MakeSortedRecords(100, "v"), nullptr));
  auto reader = SsTableReader::Open(path, nullptr);
  ASSERT_OK(reader);
  Record out;
  EXPECT_TRUE(reader.value()->Get("absent", &out).IsNotFound());
  EXPECT_TRUE(reader.value()->Get("key0000005", &out).IsNotFound());
  EXPECT_TRUE(reader.value()->Get("", &out).IsNotFound());
  EXPECT_TRUE(reader.value()->Get("zzz", &out).IsNotFound());
}

TEST(SsTableTest, ReadAllReturnsEverythingInOrder) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  const auto records = MakeSortedRecords(1000, "val");
  ASSERT_OK(WriteSsTable(path, records, nullptr));
  auto reader = SsTableReader::Open(path, nullptr);
  ASSERT_OK(reader);
  std::vector<Record> all;
  ASSERT_OK(reader.value()->ReadAll(&all));
  ASSERT_EQ(all.size(), records.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].key, records[i].key);
    EXPECT_EQ(all[i].value, records[i].value);
  }
}

TEST(SsTableTest, ScanPrefix) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  std::vector<Record> records;
  for (const char* row : {"apple", "apricot", "banana", "cherry"}) {
    for (const char* col : {"U1", "U2"}) {
      Record rec;
      rec.key = EncodeStorageKey(row, col);
      rec.value = std::string(row) + "/" + col;
      rec.seqno = records.size();
      records.push_back(std::move(rec));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.key < b.key; });
  ASSERT_OK(WriteSsTable(path, records, nullptr));
  auto reader = SsTableReader::Open(path, nullptr);
  ASSERT_OK(reader);
  std::vector<Record> out;
  ASSERT_OK(reader.value()->Scan(EncodeRowPrefix("apricot"), &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, "apricot/U1");
  EXPECT_EQ(out[1].value, "apricot/U2");
}

TEST(SsTableTest, SmallBlocksManyBlocks) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  const auto records = MakeSortedRecords(2000, "some-longer-value-");
  ASSERT_OK(WriteSsTable(path, records, nullptr, /*block_bytes=*/256));
  auto reader = SsTableReader::Open(path, nullptr);
  ASSERT_OK(reader);
  // Every key still retrievable across many blocks.
  Record out;
  for (int i = 0; i < 2000; i += 37) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_OK(reader.value()->Get(key, &out));
  }
}

TEST(SsTableTest, UnsortedInputRejected) {
  TempDir dir;
  auto records = MakeSortedRecords(10, "v");
  std::swap(records[2], records[7]);
  EXPECT_FALSE(WriteSsTable(dir.path() + "/t.sst", records, nullptr).ok());
}

TEST(SsTableTest, DuplicateKeysRejected) {
  TempDir dir;
  auto records = MakeSortedRecords(5, "v");
  records[3].key = records[2].key;
  EXPECT_FALSE(WriteSsTable(dir.path() + "/t.sst", records, nullptr).ok());
}

TEST(SsTableTest, EmptyTable) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  ASSERT_OK(WriteSsTable(path, {}, nullptr));
  auto reader = SsTableReader::Open(path, nullptr);
  ASSERT_OK(reader);
  EXPECT_EQ(reader.value()->entry_count(), 0u);
  Record out;
  EXPECT_TRUE(reader.value()->Get("anything", &out).IsNotFound());
  std::vector<Record> all;
  ASSERT_OK(reader.value()->ReadAll(&all));
  EXPECT_TRUE(all.empty());
}

TEST(SsTableTest, CorruptFooterDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  ASSERT_OK(WriteSsTable(path, MakeSortedRecords(10, "v"), nullptr));
  // Stomp the magic number.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -4, SEEK_END);
  std::fputc(0x00, f);
  std::fclose(f);
  auto reader = SsTableReader::Open(path, nullptr);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(SsTableTest, CorruptBlockDetectedOnRead) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  ASSERT_OK(WriteSsTable(path, MakeSortedRecords(100, "v"), nullptr));
  // Flip a byte early in the file (inside the first data block).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 20, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 20, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
  auto reader = SsTableReader::Open(path, nullptr);
  // Open may fail (largest-key read touches the last block, not the
  // first) or succeed; reading key000001 must fail with Corruption.
  if (reader.ok()) {
    Record out;
    Status s = reader.value()->Get("key000001", &out);
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  }
}

TEST(SsTableTest, TooSmallFileRejected) {
  TempDir dir;
  const std::string path = dir.path() + "/t.sst";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("tiny", 1, 4, f);
  std::fclose(f);
  EXPECT_FALSE(SsTableReader::Open(path, nullptr).ok());
}

TEST(SsTableTest, DeviceModelCharged) {
  TempDir dir;
  SimulatedClock clock;
  DeviceModel device(DeviceProfile::Ssd(), &clock);
  const std::string path = dir.path() + "/t.sst";
  ASSERT_OK(WriteSsTable(path, MakeSortedRecords(1000, "v"), &device));
  EXPECT_GT(device.bytes_written(), 0);
  const int64_t busy_after_write = device.busy_micros();
  EXPECT_GT(busy_after_write, 0);

  auto reader = SsTableReader::Open(path, &device);
  ASSERT_OK(reader);
  Record out;
  ASSERT_OK(reader.value()->Get("key000500", &out));
  EXPECT_GT(device.random_reads(), 0);
  EXPECT_GT(device.busy_micros(), busy_after_write);
  // The simulated clock advanced by exactly the charged latency.
  EXPECT_EQ(clock.Now(), device.busy_micros());
}

TEST(SsTableTest, HddCostsMoreThanSsd) {
  TempDir dir;
  SimulatedClock ssd_clock, hdd_clock;
  DeviceModel ssd(DeviceProfile::Ssd(), &ssd_clock);
  DeviceModel hdd(DeviceProfile::Hdd(), &hdd_clock);
  const auto records = MakeSortedRecords(500, "v");
  ASSERT_OK(WriteSsTable(dir.path() + "/ssd.sst", records, &ssd));
  ASSERT_OK(WriteSsTable(dir.path() + "/hdd.sst", records, &hdd));
  auto ssd_reader = SsTableReader::Open(dir.path() + "/ssd.sst", &ssd);
  auto hdd_reader = SsTableReader::Open(dir.path() + "/hdd.sst", &hdd);
  ASSERT_OK(ssd_reader);
  ASSERT_OK(hdd_reader);
  Record out;
  for (int i = 0; i < 100; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i * 5);
    ASSERT_OK(ssd_reader.value()->Get(key, &out));
    ASSERT_OK(hdd_reader.value()->Get(key, &out));
  }
  EXPECT_GT(hdd_clock.Now(), ssd_clock.Now() * 10)
      << "random reads on HDD should be dominated by seek cost";
}

}  // namespace
}  // namespace kv
}  // namespace muppet
