#include "kvstore/wal.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace kv {
namespace {

using ::muppet::testing::TempDir;

Record MakeRecord(int i) {
  Record rec;
  rec.key = "key" + std::to_string(i);
  rec.value = "value" + std::to_string(i);
  rec.seqno = static_cast<uint64_t>(i);
  rec.write_ts = 1000 + i;
  return rec;
}

TEST(WalTest, AppendAndReplay) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    WalWriter wal;
    ASSERT_OK(wal.Open(path));
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(wal.Append(MakeRecord(i)));
    }
    ASSERT_OK(wal.Close());
  }
  std::vector<Record> records;
  bool truncated = false;
  ASSERT_OK(ReplayWal(path, &records, &truncated));
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].key,
              "key" + std::to_string(i));
    EXPECT_EQ(records[static_cast<size_t>(i)].seqno,
              static_cast<uint64_t>(i));
  }
}

TEST(WalTest, MissingFileReplaysEmpty) {
  TempDir dir;
  std::vector<Record> records;
  bool truncated = true;
  ASSERT_OK(ReplayWal(dir.path() + "/nope.log", &records, &truncated));
  EXPECT_TRUE(records.empty());
  EXPECT_FALSE(truncated);
}

TEST(WalTest, TornTailToleratedPrefixKept) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    WalWriter wal;
    ASSERT_OK(wal.Open(path));
    for (int i = 0; i < 10; ++i) ASSERT_OK(wal.Append(MakeRecord(i)));
    ASSERT_OK(wal.Close());
  }
  // Chop a few bytes off the end (simulated crash mid-write).
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_EQ(::truncate(path.c_str(), size - 5), 0);
    std::fclose(f);
  }
  std::vector<Record> records;
  bool truncated = false;
  ASSERT_OK(ReplayWal(path, &records, &truncated));
  EXPECT_TRUE(truncated);
  EXPECT_EQ(records.size(), 9u);  // the torn final record is dropped
}

TEST(WalTest, CorruptRecordStopsReplay) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    WalWriter wal;
    ASSERT_OK(wal.Open(path));
    for (int i = 0; i < 10; ++i) ASSERT_OK(wal.Append(MakeRecord(i)));
    ASSERT_OK(wal.Close());
  }
  // Flip a byte in the middle of the file (payload of some record).
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  std::vector<Record> records;
  bool truncated = false;
  ASSERT_OK(ReplayWal(path, &records, &truncated));
  EXPECT_TRUE(truncated);
  EXPECT_LT(records.size(), 10u);  // replay stops at the corrupt record
}

TEST(WalTest, HeaderFlipStopsReplayAtThatFrame) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    WalWriter wal;
    ASSERT_OK(wal.Open(path));
    for (int i = 0; i < 4; ++i) ASSERT_OK(wal.Append(MakeRecord(i)));
    ASSERT_OK(wal.Close());
  }
  // Corrupt the very first frame header (crc bytes): nothing is
  // recoverable, but replay must still succeed with an empty prefix.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    int c = std::fgetc(f);
    std::fseek(f, 0, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  std::vector<Record> records;
  bool truncated = false;
  ASSERT_OK(ReplayWal(path, &records, &truncated));
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(records.empty());
}

// Exhaustive torn-tail sweep: for EVERY possible truncation point the
// replay must succeed, yield only whole records in order, and keep at
// least as many records as any shorter truncation (monotone prefix).
TEST(WalTest, EveryTruncationPointYieldsACleanPrefix) {
  TempDir dir;
  const std::string full = dir.path() + "/wal.log";
  {
    WalWriter wal;
    ASSERT_OK(wal.Open(full));
    for (int i = 0; i < 6; ++i) ASSERT_OK(wal.Append(MakeRecord(i)));
    ASSERT_OK(wal.Close());
  }
  std::string bytes;
  {
    std::FILE* f = std::fopen(full.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, n);
    }
    std::fclose(f);
  }

  size_t prev_kept = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::string path =
        dir.path() + "/cut" + std::to_string(cut) + ".log";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (cut > 0) ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f), cut);
    std::fclose(f);

    std::vector<Record> records;
    bool truncated = false;
    ASSERT_OK(ReplayWal(path, &records, &truncated));
    EXPECT_GE(records.size(), prev_kept) << "cut=" << cut;
    prev_kept = records.size();
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].key, "key" + std::to_string(i)) << "cut=" << cut;
    }
  }
  EXPECT_EQ(prev_kept, 6u);
}

TEST(WalTest, CloseAndRemoveDeletesFile) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  WalWriter wal;
  ASSERT_OK(wal.Open(path));
  ASSERT_OK(wal.Append(MakeRecord(1)));
  ASSERT_OK(wal.CloseAndRemove());
  std::vector<Record> records;
  ASSERT_OK(ReplayWal(path, &records, nullptr));
  EXPECT_TRUE(records.empty());
}

TEST(WalTest, AppendAfterReopenExtends) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    WalWriter wal;
    ASSERT_OK(wal.Open(path));
    ASSERT_OK(wal.Append(MakeRecord(1)));
    ASSERT_OK(wal.Close());
  }
  {
    WalWriter wal;
    ASSERT_OK(wal.Open(path));  // "ab" mode appends
    ASSERT_OK(wal.Append(MakeRecord(2)));
    ASSERT_OK(wal.Close());
  }
  std::vector<Record> records;
  ASSERT_OK(ReplayWal(path, &records, nullptr));
  EXPECT_EQ(records.size(), 2u);
}

TEST(WalTest, SyncedAppend) {
  TempDir dir;
  WalWriter wal;
  ASSERT_OK(wal.Open(dir.path() + "/wal.log"));
  ASSERT_OK(wal.Append(MakeRecord(1), /*sync=*/true));
  ASSERT_OK(wal.Sync());
  ASSERT_OK(wal.Close());
}

TEST(WalTest, DoubleOpenFails) {
  TempDir dir;
  WalWriter wal;
  ASSERT_OK(wal.Open(dir.path() + "/wal.log"));
  EXPECT_FALSE(wal.Open(dir.path() + "/other.log").ok());
}

TEST(WalTest, TombstonesRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  WalWriter wal;
  ASSERT_OK(wal.Open(path));
  Record del;
  del.key = "gone";
  del.tombstone = true;
  del.seqno = 9;
  ASSERT_OK(wal.Append(del));
  ASSERT_OK(wal.Close());
  std::vector<Record> records;
  ASSERT_OK(ReplayWal(path, &records, nullptr));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].tombstone);
}

}  // namespace
}  // namespace kv
}  // namespace muppet
