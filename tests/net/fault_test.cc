// Per-primitive tests for the scripted fault injector and its transport
// integration: deterministic drops, duplicate delivery, bounded reorder
// windows, partitions that heal, and scripted crash/restart actions.
#include "net/fault.h"

#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/transport.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

// A transport wired to a fault plan on a simulated clock, with machine 1
// (and optionally more) recording deliveries in arrival order.
struct FaultFixture {
  explicit FaultFixture(FaultPlan plan, int machines = 2)
      : injector(std::move(plan)) {
    TransportOptions options;
    options.clock = &clock;
    options.faults = &injector;
    options.on_async_loss = [this](int64_t n) { async_lost += n; };
    options.on_extra_delivery = [this](int64_t n) { extra_delivered += n; };
    transport = std::make_unique<InMemoryTransport>(options);
    for (MachineId m = 0; m < machines; ++m) {
      EXPECT_TRUE(transport
                      ->RegisterMachine(m,
                                        [this, m](MachineId, BytesView p) {
                                          received[m].push_back(
                                              std::string(p));
                                          return Status::OK();
                                        })
                      .ok());
    }
  }

  SimulatedClock clock{0};
  FaultInjector injector;
  std::unique_ptr<InMemoryTransport> transport;
  std::map<MachineId, std::vector<std::string>> received;
  int64_t async_lost = 0;
  int64_t extra_delivered = 0;
};

TEST(FaultPlanTest, ToStringListsRulesAndSortedActions) {
  FaultPlan plan;
  plan.seed = 42;
  plan.Drop(0, 1, 0.25).RestartAt(300, 2).CrashAt(100, 2).PartitionAt(200, 0,
                                                                      1);
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("seed=42"), std::string::npos);
  EXPECT_NE(s.find("drop=0.25"), std::string::npos);
  // Actions print in timeline order regardless of insertion order.
  const size_t crash = s.find("t=100 crash machine 2");
  const size_t part = s.find("t=200 partition 0 <-/-> 1");
  const size_t restart = s.find("t=300 restart machine 2");
  ASSERT_NE(crash, std::string::npos);
  ASSERT_NE(part, std::string::npos);
  ASSERT_NE(restart, std::string::npos);
  EXPECT_LT(crash, part);
  EXPECT_LT(part, restart);
  EXPECT_NE(FaultPlan().ToString().find("(no faults)"), std::string::npos);
}

TEST(FaultInjectorTest, DropDecisionsAreContentAddressedAndReproducible) {
  FaultPlan plan;
  plan.seed = 7;
  plan.Drop(0, 1, 0.5);

  auto run = [&plan]() {
    FaultInjector inj(plan);
    std::vector<bool> dropped;
    for (int i = 0; i < 64; ++i) {
      FaultDecision d = inj.OnMessage(0, 1, "payload", 1000 + i, /*now=*/0);
      dropped.push_back(d.verdict == FaultDecision::Verdict::kDrop);
    }
    return dropped;
  };

  const std::vector<bool> first = run();
  EXPECT_EQ(first, run());  // bit-identical across runs
  // And the probability actually bites both ways.
  int drops = 0;
  for (bool b : first) drops += b ? 1 : 0;
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 64);
}

TEST(FaultInjectorTest, OccurrenceIndexDistinguishesRepeatedContent) {
  FaultPlan plan;
  plan.seed = 9;
  plan.Drop(0, 1, 0.5);

  auto run = [&plan]() {
    FaultInjector inj(plan);
    std::vector<bool> dropped;
    for (int i = 0; i < 64; ++i) {
      // Same signature every time: only the occurrence index varies.
      FaultDecision d = inj.OnMessage(0, 1, "same", 77, /*now=*/0);
      dropped.push_back(d.verdict == FaultDecision::Verdict::kDrop);
    }
    return dropped;
  };

  const std::vector<bool> first = run();
  EXPECT_EQ(first, run());
  int drops = 0;
  for (bool b : first) drops += b ? 1 : 0;
  EXPECT_GT(drops, 0);   // not all delivered...
  EXPECT_LT(drops, 64);  // ...and not all dropped: occurrences roll apart
}

TEST(FaultInjectorTest, RulesOnlyFireInsideTheirWindowAndOnTheirLink) {
  FaultPlan plan;
  plan.Drop(0, 1, 1.0, /*start=*/100, /*end=*/200);
  FaultInjector inj(plan);
  EXPECT_EQ(inj.OnMessage(0, 1, "x", 1, 50).verdict,
            FaultDecision::Verdict::kDeliver);
  EXPECT_EQ(inj.OnMessage(0, 1, "x", 1, 100).verdict,
            FaultDecision::Verdict::kDrop);
  EXPECT_EQ(inj.OnMessage(0, 1, "x", 1, 199).verdict,
            FaultDecision::Verdict::kDrop);
  EXPECT_EQ(inj.OnMessage(0, 1, "x", 1, 200).verdict,
            FaultDecision::Verdict::kDeliver);  // end is exclusive
  EXPECT_EQ(inj.OnMessage(2, 1, "x", 1, 150).verdict,
            FaultDecision::Verdict::kDeliver);  // other link untouched
}

TEST(FaultTransportTest, DroppedSendReturnsUnavailable) {
  FaultPlan plan;
  plan.Drop(0, 1, 1.0);
  FaultFixture f(std::move(plan));
  Status s = f.transport->Send(0, 1, "m", /*fault_signature=*/123);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_TRUE(f.received[1].empty());
  EXPECT_EQ(f.transport->messages_dropped(), 1);
  EXPECT_EQ(f.injector.dropped(), 1);
}

TEST(FaultTransportTest, DuplicateDeliversTwiceAndPreChargesReceiver) {
  FaultPlan plan;
  plan.Duplicate(0, 1, 1.0);
  FaultFixture f(std::move(plan));
  ASSERT_OK(f.transport->Send(0, 1, "m", /*fault_signature=*/5));
  // One logical message, two deliveries; the receiver was pre-charged for
  // the copy it never expected.
  ASSERT_EQ(f.received[1].size(), 2u);
  EXPECT_EQ(f.received[1][0], "m");
  EXPECT_EQ(f.received[1][1], "m");
  EXPECT_EQ(f.transport->messages_duplicated(), 1);
  EXPECT_EQ(f.extra_delivered, 1);
  EXPECT_EQ(f.async_lost, 0);
}

TEST(FaultTransportTest, DelayAdvancesSimulatedClock) {
  FaultPlan plan;
  plan.Delay(0, 1, /*delay_micros=*/250);
  FaultFixture f(std::move(plan));
  ASSERT_OK(f.transport->Send(0, 1, "m", 1));
  EXPECT_EQ(f.clock.Now(), 250);
  EXPECT_EQ(f.received[1].size(), 1u);
  EXPECT_EQ(f.injector.delayed(), 1);
}

TEST(FaultTransportTest, ReorderHoldsWithinBoundedWindow) {
  // Hold everything sent before t=100 with window 2; later traffic on the
  // link releases it after at most 2 overtaking messages.
  FaultPlan plan;
  plan.Reorder(0, 1, 1.0, /*window=*/2, /*start=*/0, /*end=*/100);
  FaultFixture f(std::move(plan));

  ASSERT_OK(f.transport->Send(0, 1, "held", 1));
  EXPECT_TRUE(f.received[1].empty());  // parked, but sender saw OK
  EXPECT_EQ(f.transport->messages_held(), 1);
  EXPECT_EQ(f.injector.held(), 1);

  f.clock.Set(100);  // past the rule window: new sends deliver normally
  ASSERT_OK(f.transport->Send(0, 1, "a", 2));
  ASSERT_OK(f.transport->Send(0, 1, "b", 3));

  // Bounded window: after 2 overtakes the held message must be out.
  ASSERT_EQ(f.received[1].size(), 3u);
  EXPECT_EQ(f.received[1][0], "a");  // overtook the held message
  int held_pos = -1;
  for (size_t i = 0; i < f.received[1].size(); ++i) {
    if (f.received[1][i] == "held") held_pos = static_cast<int>(i);
  }
  ASSERT_NE(held_pos, -1);
  EXPECT_LE(held_pos, 2);
  EXPECT_EQ(f.async_lost, 0);
}

TEST(FaultTransportTest, FlushHeldForcesDeliveryWithoutLinkTraffic) {
  FaultPlan plan;
  plan.Reorder(0, 1, 1.0, /*window=*/4);
  FaultFixture f(std::move(plan));
  ASSERT_OK(f.transport->Send(0, 1, "h1", 1));
  ASSERT_OK(f.transport->Send(0, 1, "h2", 2));
  EXPECT_TRUE(f.received[1].empty());
  f.transport->FlushHeld();
  ASSERT_EQ(f.received[1].size(), 2u);
  EXPECT_EQ(f.received[1][0], "h1");  // flush preserves arrival order
  EXPECT_EQ(f.received[1][1], "h2");
  f.transport->FlushHeld();  // idempotent on an empty buffer
  EXPECT_EQ(f.received[1].size(), 2u);
}

TEST(FaultTransportTest, HeldMessageToCrashedMachineCountsAsAsyncLoss) {
  FaultPlan plan;
  plan.Reorder(0, 1, 1.0, /*window=*/4);
  FaultFixture f(std::move(plan));
  ASSERT_OK(f.transport->Send(0, 1, "doomed", 1));
  f.transport->Crash(1);
  f.transport->FlushHeld();
  EXPECT_TRUE(f.received[1].empty());
  // The sender was told OK, so the loss is settled asynchronously.
  EXPECT_EQ(f.async_lost, 1);
  EXPECT_EQ(f.transport->messages_dropped(), 1);
}

TEST(FaultTransportTest, PartitionSeparatesPairUntilHealed) {
  FaultPlan plan;
  plan.PartitionAt(10, 0, 1).HealAt(20, 0, 1);
  FaultFixture f(std::move(plan), /*machines=*/3);

  ASSERT_OK(f.transport->Send(0, 1, "before", 1));
  f.clock.Set(10);
  f.injector.TakeDueActions(f.clock.Now());
  EXPECT_TRUE(f.injector.Partitioned(0, 1));
  EXPECT_TRUE(f.injector.Partitioned(1, 0));  // symmetric
  EXPECT_TRUE(f.transport->Send(0, 1, "cut", 2).IsUnavailable());
  EXPECT_TRUE(f.transport->Send(1, 0, "cut", 3).IsUnavailable());
  ASSERT_OK(f.transport->Send(2, 1, "side", 4));  // other links unaffected
  EXPECT_EQ(f.injector.partitioned_drops(), 2);

  f.clock.Set(20);
  f.injector.TakeDueActions(f.clock.Now());
  EXPECT_FALSE(f.injector.Partitioned(0, 1));
  ASSERT_OK(f.transport->Send(0, 1, "after", 5));
  ASSERT_EQ(f.received[1].size(), 3u);
}

TEST(FaultTransportTest, ScriptedCrashAndRestartApplyAtTheTransport) {
  // poll_fault_actions=true (the default): the transport itself applies
  // due machine actions at the top of each send.
  FaultPlan plan;
  plan.CrashAt(5, 1).RestartAt(15, 1);
  FaultFixture f(std::move(plan));

  ASSERT_OK(f.transport->Send(0, 1, "up", 1));
  f.clock.Set(5);
  EXPECT_TRUE(f.transport->Send(0, 1, "down", 2).IsUnavailable());
  EXPECT_FALSE(f.transport->IsUp(1));
  f.clock.Set(15);
  ASSERT_OK(f.transport->Send(0, 1, "back", 3));  // restart re-registers
  EXPECT_TRUE(f.transport->IsUp(1));
  ASSERT_EQ(f.received[1].size(), 2u);
  EXPECT_EQ(f.received[1][1], "back");
}

TEST(FaultInjectorTest, TakeDueActionsPopsEachActionOnce) {
  FaultPlan plan;
  plan.CrashAt(30, 2).CrashAt(10, 1).RestartAt(20, 1);
  FaultInjector inj(plan);

  EXPECT_TRUE(inj.HasDueActions(10));
  EXPECT_FALSE(inj.HasDueActions(9));
  std::vector<FaultAction> due = inj.TakeDueActions(20);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].at_micros, 10);
  EXPECT_EQ(due[1].at_micros, 20);
  EXPECT_TRUE(inj.TakeDueActions(20).empty());  // exactly once
  due = inj.TakeDueActions(1000);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].kind, FaultAction::Kind::kCrashMachine);
  EXPECT_EQ(due[0].a, 2);
  EXPECT_FALSE(inj.HasDueActions(kFaultTimeMax - 1));
}

TEST(FaultTransportTest, SendAttemptsToCountsRoutedSends) {
  FaultFixture f(FaultPlan{}, /*machines=*/3);
  ASSERT_OK(f.transport->Send(0, 1, "a"));
  ASSERT_OK(f.transport->Send(2, 1, "b"));
  ASSERT_OK(f.transport->Send(0, 2, "c"));
  f.transport->Crash(1);
  (void)f.transport->Send(0, 1, "d");  // failed attempts still count
  EXPECT_EQ(f.transport->SendAttemptsTo(1), 3);
  EXPECT_EQ(f.transport->SendAttemptsTo(2), 1);
  EXPECT_EQ(f.transport->SendAttemptsTo(99), 0);
}

TEST(FaultTransportTest, BatchFramesAreFaultedWholeFrame) {
  FaultPlan plan;
  plan.Duplicate(0, 1, 1.0);
  FaultFixture f(std::move(plan));
  std::vector<std::pair<std::string, size_t>> frames;
  ASSERT_OK(f.transport->RegisterBatchHandler(
      1, [&frames](MachineId, BytesView frame, size_t count,
                   size_t* accepted) {
        frames.emplace_back(std::string(frame), count);
        *accepted = count;
        return Status::OK();
      }));
  size_t accepted = 0;
  ASSERT_OK(f.transport->SendBatch(0, 1, "frame", 3, &accepted,
                                   /*fault_signature=*/9));
  EXPECT_EQ(accepted, 3u);
  ASSERT_EQ(frames.size(), 2u);  // original + whole-frame duplicate
  EXPECT_EQ(frames[1].second, 3u);
  // The duplicate copy carried 3 logical messages.
  EXPECT_EQ(f.transport->messages_duplicated(), 3);
  EXPECT_EQ(f.extra_delivered, 3);
}

}  // namespace
}  // namespace muppet
