// Frame codec hardening (DESIGN.md, "Transport backends & deployment
// model"): the decoder must survive arbitrary slicing of a valid stream
// (byte-at-a-time, every split offset) and must reject — never crash on,
// never misinterpret — corrupted input: bad magic, bad version, bad
// type, oversized length fields, and CRC mismatches anywhere in the
// frame. Corruption is sticky: once the stream has lost alignment the
// decoder refuses everything after it.
#include "net/frame.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace muppet {
namespace {

WireFrame MakeFrame(MachineId from, MachineId to, const std::string& payload,
                    FrameType type = FrameType::kBatch, uint32_t count = 3) {
  WireFrame f;
  f.type = type;
  f.from = from;
  f.to = to;
  f.count = count;
  f.payload = payload;
  return f;
}

void ExpectSame(const WireFrame& a, const WireFrame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.to, b.to);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(FrameTest, RoundTrip) {
  const WireFrame in = MakeFrame(2, 5, "hello muppet", FrameType::kSingle, 1);
  const Bytes wire = EncodeFrame(in);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + in.payload.size());

  FrameDecoder dec;
  dec.Feed(wire);
  WireFrame out;
  bool have = false;
  ASSERT_TRUE(dec.Next(&out, &have).ok());
  ASSERT_TRUE(have);
  ExpectSame(in, out);
  ASSERT_TRUE(dec.Next(&out, &have).ok());
  EXPECT_FALSE(have);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  const WireFrame in = MakeFrame(0, 1, "", FrameType::kBatch, 0);
  FrameDecoder dec;
  dec.Feed(EncodeFrame(in));
  WireFrame out;
  bool have = false;
  ASSERT_TRUE(dec.Next(&out, &have).ok());
  ASSERT_TRUE(have);
  ExpectSame(in, out);
}

// Feed a multi-frame stream one byte at a time; every frame must pop out
// exactly once, at the byte that completes it.
TEST(FrameTest, ByteAtATime) {
  std::vector<WireFrame> frames;
  Bytes wire;
  for (int i = 0; i < 8; ++i) {
    frames.push_back(MakeFrame(i, i + 1, std::string(i * 7, 'x') + "p",
                               i % 2 == 0 ? FrameType::kSingle
                                          : FrameType::kBatch,
                               static_cast<uint32_t>(i + 1)));
    wire += EncodeFrame(frames.back());
  }

  FrameDecoder dec;
  size_t decoded = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    dec.Feed(BytesView(wire.data() + i, 1));
    WireFrame out;
    bool have = true;
    while (have) {
      ASSERT_TRUE(dec.Next(&out, &have).ok()) << "byte " << i;
      if (have) {
        ASSERT_LT(decoded, frames.size());
        ExpectSame(frames[decoded], out);
        ++decoded;
      }
    }
  }
  EXPECT_EQ(decoded, frames.size());
}

// Split a two-frame stream at EVERY offset; both frames must decode from
// the two slices regardless of where the cut lands (mid-header,
// mid-payload, on a frame boundary).
TEST(FrameTest, SplitAtEveryOffset) {
  const WireFrame a = MakeFrame(1, 2, "first frame payload");
  const WireFrame b =
      MakeFrame(3, 4, "second, rather longer, frame payload bytes");
  const Bytes wire = EncodeFrame(a) + EncodeFrame(b);

  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameDecoder dec;
    dec.Feed(BytesView(wire.data(), cut));
    std::vector<WireFrame> got;
    WireFrame out;
    bool have = true;
    while (have) {
      ASSERT_TRUE(dec.Next(&out, &have).ok()) << "cut=" << cut;
      if (have) got.push_back(out);
    }
    dec.Feed(BytesView(wire.data() + cut, wire.size() - cut));
    have = true;
    while (have) {
      ASSERT_TRUE(dec.Next(&out, &have).ok()) << "cut=" << cut;
      if (have) got.push_back(out);
    }
    ASSERT_EQ(got.size(), 2u) << "cut=" << cut;
    ExpectSame(a, got[0]);
    ExpectSame(b, got[1]);
  }
}

// Flip every byte of an encoded frame in turn. Every flip must surface as
// Corruption — bad magic/version/type/reserved/CRC — or, for flips in the
// length/id fields that keep the header self-consistent, at worst a CRC
// mismatch once the (now misaligned) frame is checked. No flip may yield
// a successfully decoded frame, and none may crash.
TEST(FrameTest, EveryByteFlipIsRejected) {
  const WireFrame in = MakeFrame(7, 9, "payload under test", FrameType::kBatch,
                                 /*count=*/4);
  const Bytes wire = EncodeFrame(in);

  for (size_t i = 0; i < wire.size(); ++i) {
    Bytes bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    FrameDecoder dec;
    dec.Feed(bad);
    WireFrame out;
    bool have = false;
    const Status s = dec.Next(&out, &have);
    if (s.ok()) {
      // A flip in the length field can make the decoder wait for bytes
      // that never come — acceptable (the transport tears the connection
      // down on timeout/close) — but it must not produce a frame.
      EXPECT_FALSE(have) << "byte " << i << " decoded despite corruption";
    } else {
      EXPECT_TRUE(dec.corrupt()) << "byte " << i;
      // Sticky: follow-up calls keep failing even after more (valid)
      // bytes arrive.
      dec.Feed(wire);
      EXPECT_FALSE(dec.Next(&out, &have).ok()) << "byte " << i;
    }
  }
}

TEST(FrameTest, OversizedLengthRejectedWithoutBuffering) {
  const WireFrame in = MakeFrame(1, 2, "x");
  Bytes wire = EncodeFrame(in);
  // Patch payload_len (offset 20) to kMaxFramePayload + 1. CRC no longer
  // matches, but the length check must fire FIRST — before the decoder
  // would try to buffer 64MiB it is never going to receive.
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&wire[20], &huge, sizeof(huge));
  FrameDecoder dec;
  dec.Feed(BytesView(wire.data(), kFrameHeaderSize));  // header only
  WireFrame out;
  bool have = false;
  EXPECT_FALSE(dec.Next(&out, &have).ok());
  EXPECT_TRUE(dec.corrupt());
}

TEST(FrameTest, GarbageStreamNeverCrashes) {
  Rng rng(20260809);
  for (int trial = 0; trial < 32; ++trial) {
    FrameDecoder dec;
    Bytes junk;
    const size_t len = 1 + rng.Uniform(512);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.Uniform(256)));
    }
    // Feed in random-sized slices.
    size_t off = 0;
    while (off < junk.size()) {
      const size_t n = 1 + rng.Uniform(junk.size() - off);
      dec.Feed(BytesView(junk.data() + off, n));
      off += n;
      WireFrame out;
      bool have = true;
      while (have && dec.Next(&out, &have).ok()) {
      }
    }
    // Either corrupt (overwhelmingly likely: random magic) or starved for
    // bytes; all that matters is we got here without crashing.
  }
}

// Random valid streams chopped at random offsets: decode must be lossless
// for any slicing. Fixed seed keeps the test deterministic.
TEST(FrameTest, RandomSlicingIsLossless) {
  Rng rng(424242);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<WireFrame> frames;
    Bytes wire;
    const int n = 1 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < n; ++i) {
      Bytes payload;
      const size_t plen = rng.Uniform(2048);
      for (size_t j = 0; j < plen; ++j) {
        payload.push_back(static_cast<char>(rng.Uniform(256)));
      }
      frames.push_back(MakeFrame(static_cast<MachineId>(rng.Uniform(16)),
                                 static_cast<MachineId>(rng.Uniform(16)),
                                 payload, FrameType::kBatch,
                                 static_cast<uint32_t>(1 + rng.Uniform(64))));
      wire += EncodeFrame(frames.back());
    }

    FrameDecoder dec;
    size_t decoded = 0;
    size_t off = 0;
    while (off < wire.size()) {
      const size_t chunk = 1 + rng.Uniform(97);
      const size_t take = std::min(chunk, wire.size() - off);
      dec.Feed(BytesView(wire.data() + off, take));
      off += take;
      WireFrame out;
      bool have = true;
      while (have) {
        ASSERT_TRUE(dec.Next(&out, &have).ok());
        if (have) {
          ASSERT_LT(decoded, frames.size());
          ExpectSame(frames[decoded], out);
          ++decoded;
        }
      }
    }
    EXPECT_EQ(decoded, frames.size()) << "trial " << trial;
  }
}

TEST(FrameTest, HelloRoundTrip) {
  const std::vector<MachineId> hosted = {0, 3, 7};
  const Bytes payload = EncodeHello(42, hosted);
  uint32_t node = 0;
  std::vector<MachineId> got;
  ASSERT_TRUE(DecodeHello(payload, &node, &got).ok());
  EXPECT_EQ(node, 42u);
  EXPECT_EQ(got, hosted);
}

TEST(FrameTest, TruncatedHelloRejected) {
  const Bytes payload = EncodeHello(7, {1, 2, 3});
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    uint32_t node = 0;
    std::vector<MachineId> got;
    EXPECT_FALSE(
        DecodeHello(BytesView(payload.data(), cut), &node, &got).ok())
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace muppet
