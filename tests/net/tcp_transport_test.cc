// TCP transport failure arcs over real loopback sockets (DESIGN.md,
// "Transport backends & deployment model"):
//  * peer down at connect time -> sends fail Unavailable immediately
//    (the paper's §4.3 detection-by-failed-send);
//  * peer dies mid-frame -> the half-received frame is never delivered,
//    and the node survives the torn connection;
//  * reconnect with backoff resumes delivery after the peer restarts;
//  * write-queue overflow surfaces as ResourceExhausted backpressure,
//    never as a silent drop.
#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/socket.h"

namespace muppet {
namespace {

// Reserve a free loopback port: bind port 0, read it back, release. The
// tiny race (another process grabbing it before we re-bind) is acceptable
// in tests.
int ReservePort() {
  OwnedFd fd;
  int port = 0;
  Status s = TcpListen("127.0.0.1", 0, &fd, &port);
  EXPECT_TRUE(s.ok()) << s.message();
  return port;
}

bool WaitUntil(const std::function<bool()>& cond, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// Blocking loopback client used to poke raw bytes at a transport's data
// port (simulating a peer that corrupts the stream or dies mid-frame).
class RawClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  bool SendAll(BytesView data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  ~RawClient() { Close(); }

 private:
  int fd_ = -1;
};

struct Node {
  std::unique_ptr<TcpTransport> transport;
  std::atomic<int> received{0};
  Bytes last_payload;  // written only from the IO thread's handler call
  std::atomic<bool> decline{false};
  // Race-free "did a specific payload arrive" probe: set before Start()
  // (never mutated after), counted from the handler.
  Bytes expect_payload;
  std::atomic<int> expect_hits{0};

  void Init(uint32_t node_id, int port, MachineId hosted,
            std::vector<TcpPeerConfig> peers,
            size_t queue_cap = 16u << 20) {
    TcpTransportOptions opts;
    opts.node_id = node_id;
    opts.listen_port = port;
    opts.peers = std::move(peers);
    opts.write_queue_cap_bytes = queue_cap;
    // Short backoff floor keeps the reconnect test fast; the cap still
    // exercises the doubling.
    opts.reconnect_initial_micros = 10 * 1000;
    opts.reconnect_max_micros = 200 * 1000;
    transport = std::make_unique<TcpTransport>(std::move(opts));
    ASSERT_TRUE(transport
                    ->RegisterMachine(hosted,
                                      [this](MachineId, BytesView payload) {
                                        if (decline.load()) {
                                          return Status::ResourceExhausted(
                                              "test decline");
                                        }
                                        last_payload.assign(payload.data(),
                                                            payload.size());
                                        if (!expect_payload.empty() &&
                                            payload == expect_payload) {
                                          expect_hits.fetch_add(1);
                                        }
                                        received.fetch_add(1);
                                        return Status::OK();
                                      })
                    .ok());
    ASSERT_TRUE(transport
                    ->RegisterBatchHandler(
                        hosted,
                        [this](MachineId, BytesView, size_t count,
                               size_t* accepted) {
                          if (decline.load()) {
                            *accepted = 0;
                            return Status::ResourceExhausted("test decline");
                          }
                          *accepted = count;
                          received.fetch_add(static_cast<int>(count));
                          return Status::OK();
                        })
                    .ok());
  }
};

TcpPeerConfig PeerOf(uint32_t node_id, int port, std::vector<MachineId> ms) {
  TcpPeerConfig p;
  p.node_id = node_id;
  p.port = port;
  p.machines = std::move(ms);
  return p;
}

TEST(TcpTransportTest, DeliversAcrossRealSockets) {
  const int port_a = ReservePort();
  const int port_b = ReservePort();
  Node a, b;
  a.Init(1, port_a, /*hosted=*/0, {PeerOf(2, port_b, {1})});
  b.Init(2, port_b, /*hosted=*/1, {PeerOf(1, port_a, {0})});
  ASSERT_TRUE(a.transport->Start().ok());
  ASSERT_TRUE(b.transport->Start().ok());
  EXPECT_EQ(a.transport->listen_port(), port_a);

  ASSERT_TRUE(WaitUntil([&] { return a.transport->PeerUp(2); }));
  ASSERT_TRUE(WaitUntil([&] { return b.transport->PeerUp(1); }));

  // Single message.
  ASSERT_TRUE(a.transport->Send(0, 1, "over the wire").ok());
  ASSERT_TRUE(WaitUntil([&] { return b.received.load() == 1; }));
  EXPECT_EQ(b.last_payload, "over the wire");

  // Batch frame: OK means queued with the whole frame accepted.
  size_t accepted = 0;
  ASSERT_TRUE(
      a.transport->SendBatch(0, 1, "opaque batch bytes", 5, &accepted).ok());
  EXPECT_EQ(accepted, 5u);
  ASSERT_TRUE(WaitUntil([&] { return b.received.load() == 6; }));

  // Reverse direction uses b's own dialed connection.
  ASSERT_TRUE(b.transport->Send(1, 0, "echo").ok());
  ASSERT_TRUE(WaitUntil([&] { return a.received.load() == 1; }));

  EXPECT_GE(a.transport->SendAttemptsTo(1), 2);
  EXPECT_GE(a.transport->frames_sent(), 2);
  EXPECT_GT(a.transport->bytes_sent(), 0);

  a.transport->Stop();
  b.transport->Stop();
}

TEST(TcpTransportTest, PeerDownAtConnectFailsSendsImmediately) {
  const int port_a = ReservePort();
  const int dead_port = ReservePort();  // nothing ever listens here
  Node a;
  a.Init(1, port_a, /*hosted=*/0, {PeerOf(2, dead_port, {1})});
  ASSERT_TRUE(a.transport->Start().ok());

  // The dialer keeps retrying with backoff, but the peer never comes up:
  // every send fails fast with Unavailable — no queueing, no blocking.
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    const Status s = a.transport->Send(0, 1, "lost");
    EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.message();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  EXPECT_FALSE(a.transport->PeerUp(2));
  EXPECT_EQ(a.transport->messages_dropped(), 50);
  EXPECT_EQ(a.transport->SendAttemptsTo(1), 50);
  a.transport->Stop();
}

TEST(TcpTransportTest, PeerDyingMidFrameDeliversNothing) {
  const int port_a = ReservePort();
  Node a;
  a.Init(1, port_a, /*hosted=*/0, {});
  ASSERT_TRUE(a.transport->Start().ok());

  WireFrame f;
  f.type = FrameType::kSingle;
  f.from = 5;
  f.to = 0;
  f.count = 1;
  f.payload = "this frame will be truncated";
  const Bytes wire = EncodeFrame(f);

  // HELLO, then half a frame, then die.
  {
    RawClient dying;
    ASSERT_TRUE(dying.Connect(port_a));
    WireFrame hello;
    hello.type = FrameType::kHello;
    hello.from = kInvalidMachine;
    hello.to = kInvalidMachine;
    hello.count = 0;
    hello.payload = EncodeHello(9, {5});
    ASSERT_TRUE(dying.SendAll(EncodeFrame(hello)));
    ASSERT_TRUE(dying.SendAll(BytesView(wire.data(), wire.size() / 2)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    dying.Close();  // connection dies mid-frame
  }

  // The truncated frame must never surface.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(a.received.load(), 0);

  // A fresh, well-behaved connection still delivers.
  RawClient healthy;
  ASSERT_TRUE(healthy.Connect(port_a));
  WireFrame hello;
  hello.type = FrameType::kHello;
  hello.from = kInvalidMachine;
  hello.to = kInvalidMachine;
  hello.count = 0;
  hello.payload = EncodeHello(9, {5});
  ASSERT_TRUE(healthy.SendAll(EncodeFrame(hello)));
  ASSERT_TRUE(healthy.SendAll(wire));
  ASSERT_TRUE(WaitUntil([&] { return a.received.load() == 1; }));
  EXPECT_EQ(a.last_payload, f.payload);
  a.transport->Stop();
}

TEST(TcpTransportTest, CorruptStreamTearsConnectionDownWithoutCrashing) {
  const int port_a = ReservePort();
  Node a;
  a.Init(1, port_a, /*hosted=*/0, {});
  ASSERT_TRUE(a.transport->Start().ok());

  RawClient evil;
  ASSERT_TRUE(evil.Connect(port_a));
  Bytes junk(1024, '\x5a');
  // The transport closes the connection on the framing error; depending
  // on timing our sends may start failing (EPIPE/RST) — both fine.
  (void)evil.SendAll(junk);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(a.received.load(), 0);

  // Transport is still healthy for well-framed peers.
  RawClient healthy;
  ASSERT_TRUE(healthy.Connect(port_a));
  WireFrame hello;
  hello.type = FrameType::kHello;
  hello.from = kInvalidMachine;
  hello.to = kInvalidMachine;
  hello.count = 0;
  hello.payload = EncodeHello(3, {7});
  WireFrame msg;
  msg.type = FrameType::kSingle;
  msg.from = 7;
  msg.to = 0;
  msg.count = 1;
  msg.payload = "still alive";
  ASSERT_TRUE(healthy.SendAll(EncodeFrame(hello) + EncodeFrame(msg)));
  ASSERT_TRUE(WaitUntil([&] { return a.received.load() == 1; }));
  a.transport->Stop();
}

TEST(TcpTransportTest, ReconnectWithBackoffResumesDelivery) {
  const int port_a = ReservePort();
  const int port_b = ReservePort();
  Node a;
  a.Init(1, port_a, /*hosted=*/0, {PeerOf(2, port_b, {1})});
  ASSERT_TRUE(a.transport->Start().ok());

  // Phase 1: peer up, delivery works.
  Node b;
  b.Init(2, port_b, /*hosted=*/1, {PeerOf(1, port_a, {0})});
  ASSERT_TRUE(b.transport->Start().ok());
  ASSERT_TRUE(WaitUntil([&] { return a.transport->PeerUp(2); }));
  ASSERT_TRUE(a.transport->Send(0, 1, "before the crash").ok());
  ASSERT_TRUE(WaitUntil([&] { return b.received.load() == 1; }));

  // Phase 2: kill the peer. The dialer notices (read error / failed
  // reconnect) and sends start failing — the paper's failed-send
  // detection signal.
  b.transport->Stop();
  ASSERT_TRUE(WaitUntil([&] {
    return !a.transport->PeerUp(2) ||
           !a.transport->Send(0, 1, "probe").ok();
  }));
  ASSERT_TRUE(WaitUntil([&] { return !a.transport->PeerUp(2); }));
  const Status down = a.transport->Send(0, 1, "while down");
  EXPECT_EQ(down.code(), StatusCode::kUnavailable);

  // Phase 3: restart the peer on the same port; the dialer's backoff loop
  // reconnects (capped at 200ms here) and delivery resumes.
  Node b2;
  b2.expect_payload = "after restart";
  b2.Init(2, port_b, /*hosted=*/1, {PeerOf(1, port_a, {0})});
  ASSERT_TRUE(b2.transport->Start().ok());
  ASSERT_TRUE(WaitUntil([&] { return a.transport->PeerUp(2); }));
  ASSERT_TRUE(WaitUntil([&] {
    // The first send may race the handshake flip; retry until accepted.
    return a.transport->Send(0, 1, "after restart").ok();
  }));
  // A "probe" from phase 2 may have been queued before the dialer
  // noticed the crash; retained frames are resent on reconnect by
  // design, so b2 can legitimately see it first. Wait for the payload
  // we actually care about rather than any delivery.
  ASSERT_TRUE(WaitUntil([&] { return b2.expect_hits.load() >= 1; }));

  a.transport->Stop();
  b2.transport->Stop();
}

TEST(TcpTransportTest, WriteQueueOverflowReportsBackpressure) {
  const int port_a = ReservePort();
  const int port_b = ReservePort();
  Node a, b;
  // Tiny queue cap; receiver declines everything, so frames pile up in
  // the receiver's parked frame + kernel buffers + sender queue.
  a.Init(1, port_a, /*hosted=*/0, {PeerOf(2, port_b, {1})},
         /*queue_cap=*/512 * 1024);
  b.Init(2, port_b, /*hosted=*/1, {PeerOf(1, port_a, {0})});
  b.decline.store(true);
  ASSERT_TRUE(a.transport->Start().ok());
  ASSERT_TRUE(b.transport->Start().ok());
  ASSERT_TRUE(WaitUntil([&] { return a.transport->PeerUp(2); }));

  const Bytes big(64 * 1024, 'q');
  bool saw_backpressure = false;
  for (int i = 0; i < 400 && !saw_backpressure; ++i) {
    const Status s = a.transport->Send(0, 1, big);
    if (s.code() == StatusCode::kResourceExhausted) {
      saw_backpressure = true;
    } else {
      ASSERT_TRUE(s.ok()) << s.message();
    }
  }
  ASSERT_TRUE(saw_backpressure)
      << "400 sends against a paused receiver never hit the queue cap";
  EXPECT_GT(a.transport->messages_declined(), 0);

  // Backpressure is not loss: un-pause the receiver and everything queued
  // (including the parked frame) drains.
  const int64_t queued_ok = a.transport->messages_sent();
  b.decline.store(false);
  ASSERT_TRUE(WaitUntil(
      [&] { return b.received.load() >= static_cast<int>(queued_ok); },
      /*timeout_ms=*/20000));
  EXPECT_TRUE(a.transport->FlushOutbound(5 * 1000 * 1000).ok());

  a.transport->Stop();
  b.transport->Stop();
}

TEST(TcpTransportTest, CrashedLocalMachineRejectsSends) {
  const int port_a = ReservePort();
  Node a;
  a.Init(1, port_a, /*hosted=*/0, {});
  ASSERT_TRUE(a.transport->Start().ok());
  ASSERT_TRUE(a.transport->Send(0, 0, "local fast path").ok());
  EXPECT_EQ(a.received.load(), 1);
  EXPECT_EQ(a.transport->messages_local(), 1);

  a.transport->Crash(0);
  EXPECT_FALSE(a.transport->IsUp(0));
  EXPECT_EQ(a.transport->Send(0, 0, "dead").code(),
            StatusCode::kUnavailable);
  a.transport->Restore(0);
  EXPECT_TRUE(a.transport->IsUp(0));
  ASSERT_TRUE(a.transport->Send(0, 0, "revived").ok());
  EXPECT_EQ(a.received.load(), 2);
  a.transport->Stop();
}

TEST(TcpTransportTest, MachinesListsLocalAndRemote) {
  const int port_a = ReservePort();
  const int port_b = ReservePort();
  Node a;
  a.Init(1, port_a, /*hosted=*/0, {PeerOf(2, port_b, {1, 2})});
  EXPECT_EQ(a.transport->Machines(), (std::vector<MachineId>{0, 1, 2}));
  EXPECT_TRUE(a.transport->IsUp(0));
  // Remote machines are "up" only once their peer's connection is.
  EXPECT_FALSE(a.transport->IsUp(1));
}

}  // namespace
}  // namespace muppet
