#include "net/transport.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

TEST(TransportTest, DeliversToHandler) {
  InMemoryTransport transport;
  std::vector<std::string> received;
  ASSERT_OK(transport.RegisterMachine(
      1, [&received](MachineId from, BytesView payload) {
        received.push_back(std::to_string(from) + ":" + std::string(payload));
        return Status::OK();
      }));
  ASSERT_OK(transport.Send(0, 1, "hello"));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "0:hello");
  EXPECT_EQ(transport.messages_sent(), 1);
  EXPECT_EQ(transport.bytes_sent(), 5);
}

TEST(TransportTest, DuplicateRegistrationRejected) {
  InMemoryTransport transport;
  auto handler = [](MachineId, BytesView) { return Status::OK(); };
  ASSERT_OK(transport.RegisterMachine(1, handler));
  EXPECT_EQ(transport.RegisterMachine(1, handler).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(transport.RegisterMachine(2, nullptr).ok());
}

TEST(TransportTest, SendToUnknownMachineUnavailable) {
  InMemoryTransport transport;
  EXPECT_TRUE(transport.Send(0, 99, "x").IsUnavailable());
  EXPECT_EQ(transport.messages_dropped(), 1);
}

TEST(TransportTest, CrashedMachineUnreachableUntilRestored) {
  InMemoryTransport transport;
  int delivered = 0;
  ASSERT_OK(transport.RegisterMachine(1, [&](MachineId, BytesView) {
    ++delivered;
    return Status::OK();
  }));
  ASSERT_OK(transport.Send(0, 1, "a"));
  transport.Crash(1);
  EXPECT_FALSE(transport.IsUp(1));
  EXPECT_TRUE(transport.Send(0, 1, "b").IsUnavailable());
  transport.Restore(1);
  EXPECT_TRUE(transport.IsUp(1));
  ASSERT_OK(transport.Send(0, 1, "c"));
  EXPECT_EQ(delivered, 2);
}

TEST(TransportTest, DeclineCountsAndPropagates) {
  InMemoryTransport transport;
  ASSERT_OK(transport.RegisterMachine(1, [](MachineId, BytesView) {
    return Status::ResourceExhausted("queue full");
  }));
  Status s = transport.Send(0, 1, "x");
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(transport.messages_declined(), 1);
}

TEST(TransportTest, HandlerErrorPropagatesVerbatim) {
  InMemoryTransport transport;
  ASSERT_OK(transport.RegisterMachine(1, [](MachineId, BytesView) {
    return Status::Corruption("bad payload");
  }));
  EXPECT_EQ(transport.Send(0, 1, "x").code(), StatusCode::kCorruption);
}

TEST(TransportTest, LossModelDropsSome) {
  TransportOptions options;
  options.loss_probability = 0.5;
  options.seed = 7;
  InMemoryTransport transport(options);
  int delivered = 0;
  ASSERT_OK(transport.RegisterMachine(1, [&](MachineId, BytesView) {
    ++delivered;
    return Status::OK();
  }));
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!transport.Send(0, 1, "x").ok()) ++failures;
  }
  EXPECT_GT(failures, 300);
  EXPECT_LT(failures, 700);
  EXPECT_EQ(delivered, 1000 - failures);
}

TEST(TransportTest, LocalSendSkipsLossAndLatency) {
  TransportOptions options;
  options.loss_probability = 1.0;  // all cross-machine sends fail
  InMemoryTransport transport(options);
  int delivered = 0;
  ASSERT_OK(transport.RegisterMachine(1, [&](MachineId, BytesView) {
    ++delivered;
    return Status::OK();
  }));
  // from == to bypasses the loss model (Muppet 2.0 local passing, §4.5).
  ASSERT_OK(transport.Send(1, 1, "local"));
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(transport.Send(0, 1, "remote").IsUnavailable());
}

TEST(TransportTest, HopLatencyChargedOnSimulatedClock) {
  SimulatedClock clock;
  TransportOptions options;
  options.hop_latency_micros = 150;
  options.clock = &clock;
  InMemoryTransport transport(options);
  ASSERT_OK(transport.RegisterMachine(
      1, [](MachineId, BytesView) { return Status::OK(); }));
  ASSERT_OK(transport.Send(0, 1, "x"));
  EXPECT_EQ(clock.Now(), 150);
  ASSERT_OK(transport.Send(1, 1, "local"));
  EXPECT_EQ(clock.Now(), 150) << "local sends pay no hop latency";
}

TEST(TransportTest, MachinesListedSorted) {
  InMemoryTransport transport;
  auto handler = [](MachineId, BytesView) { return Status::OK(); };
  ASSERT_OK(transport.RegisterMachine(3, handler));
  ASSERT_OK(transport.RegisterMachine(1, handler));
  ASSERT_OK(transport.RegisterMachine(2, handler));
  const auto machines = transport.Machines();
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0], 1);
  EXPECT_EQ(machines[2], 3);
  transport.UnregisterMachine(2);
  EXPECT_EQ(transport.Machines().size(), 2u);
}

TEST(TransportTest, BatchFrameCountsFrameOnceAndMessagesPerEvent) {
  InMemoryTransport transport;
  ASSERT_OK(transport.RegisterMachine(
      1, [](MachineId, BytesView) { return Status::OK(); }));
  ASSERT_OK(transport.RegisterBatchHandler(
      1, [](MachineId, BytesView, size_t count, size_t* accepted) {
        *accepted = count;
        return Status::OK();
      }));
  size_t accepted = 0;
  ASSERT_OK(transport.SendBatch(0, 1, "frame-bytes", 3, &accepted));
  EXPECT_EQ(accepted, 3u);
  EXPECT_EQ(transport.frames_sent(), 1);
  EXPECT_EQ(transport.messages_sent(), 3);
  EXPECT_EQ(transport.bytes_sent(),
            static_cast<int64_t>(std::string("frame-bytes").size()));
}

TEST(TransportTest, BatchPartialDeclineReportsAcceptedPrefix) {
  InMemoryTransport transport;
  ASSERT_OK(transport.RegisterMachine(
      1, [](MachineId, BytesView) { return Status::OK(); }));
  ASSERT_OK(transport.RegisterBatchHandler(
      1, [](MachineId, BytesView, size_t count, size_t* accepted) {
        *accepted = count / 2;  // take half, decline the rest
        return Status::ResourceExhausted("queue full");
      }));
  size_t accepted = 0;
  Status s = transport.SendBatch(0, 1, "f", 4, &accepted);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(transport.messages_sent(), 2);
  EXPECT_EQ(transport.messages_declined(), 2);
}

TEST(TransportTest, BatchToCrashedMachineDropsWholeFrame) {
  InMemoryTransport transport;
  ASSERT_OK(transport.RegisterMachine(
      1, [](MachineId, BytesView) { return Status::OK(); }));
  ASSERT_OK(transport.RegisterBatchHandler(
      1, [](MachineId, BytesView, size_t count, size_t* accepted) {
        *accepted = count;
        return Status::OK();
      }));
  transport.Crash(1);
  size_t accepted = 99;
  EXPECT_TRUE(transport.SendBatch(0, 1, "f", 5, &accepted).IsUnavailable());
  EXPECT_EQ(accepted, 0u);
  EXPECT_EQ(transport.messages_dropped(), 5);
}

TEST(TransportTest, BatchWithoutBatchHandlerFailsPrecondition) {
  InMemoryTransport transport;
  ASSERT_OK(transport.RegisterMachine(
      1, [](MachineId, BytesView) { return Status::OK(); }));
  size_t accepted = 0;
  EXPECT_EQ(transport.SendBatch(0, 1, "f", 1, &accepted).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TransportTest, LocalDeliveryCountsAsSentAndLocal) {
  InMemoryTransport transport;
  EXPECT_EQ(transport.messages_local(), 0);
  transport.CountLocalDelivery();
  transport.CountLocalDelivery();
  EXPECT_EQ(transport.messages_local(), 2);
  EXPECT_EQ(transport.messages_sent(), 2);
}

TEST(TransportTest, ConcurrentSendsAreSafe) {
  InMemoryTransport transport;
  std::atomic<int> delivered{0};
  ASSERT_OK(transport.RegisterMachine(1, [&](MachineId, BytesView) {
    delivered.fetch_add(1);
    return Status::OK();
  }));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&transport] {
      for (int i = 0; i < 1000; ++i) {
        (void)transport.Send(0, 1, "x");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(delivered.load(), 4000);
}

}  // namespace
}  // namespace muppet
