#include "service/admin_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "common/clock.h"
#include "common/prom.h"
#include "common/slo.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "json/json.h"
#include "service/slate_service.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;

std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class AdminServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildCountingApp(&config_);
    EngineOptions options;
    options.num_machines = 2;
    options.threads_per_machine = 2;
    options.trace.sample_period = 1;
    engine_ = std::make_unique<Muppet2Engine>(config_, options);
    ASSERT_OK(engine_->Start());
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(
          engine_->Publish("in", "key" + std::to_string(i % 4), "", i + 1));
    }
    ASSERT_OK(engine_->Drain());
  }

  void TearDown() override { ASSERT_OK(engine_->Stop()); }

  AppConfig config_;
  std::unique_ptr<Muppet2Engine> engine_;
};

TEST_F(AdminServiceTest, MetricsEndpointServesPrometheusText) {
  AdminService admin(engine_.get());
  const HttpResponse response = admin.Metrics();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, PrometheusContentType());
  EXPECT_NE(response.body.find("# TYPE muppet_events_published_total counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("muppet_events_published_total 20"),
            std::string::npos);
  EXPECT_NE(response.body.find("muppet_operator_processed_total{"
                               "operator=\"count\"} 20"),
            std::string::npos);
  EXPECT_NE(response.body.find("muppet_stream_published_total{"
                               "stream=\"in\"} 20"),
            std::string::npos);
  EXPECT_NE(response.body.find("muppet_machine_up{machine=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("muppet_e2e_latency_us_bucket"),
            std::string::npos);
  EXPECT_NE(response.body.find("muppet_queue_depth{"), std::string::npos);
  EXPECT_NE(response.body.find("muppet_transport_messages_sent_total"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE muppet_throttle_delay_micros gauge"),
            std::string::npos);
}

TEST_F(AdminServiceTest, StatuszReportsClusterState) {
  AdminService admin(engine_.get(), /*machine=*/1);
  const HttpResponse response = admin.Statusz();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  Result<Json> parsed = Json::Parse(response.body);
  ASSERT_OK(parsed.status());
  const Json& doc = parsed.value();
  EXPECT_EQ(doc.GetInt("serving_machine", -1), 1);
  EXPECT_EQ(doc.GetInt("inflight", -1), 0);
  EXPECT_EQ(doc["stats"].GetInt("published", -1), 20);
  ASSERT_TRUE(doc["machines"].is_array());
  ASSERT_EQ(doc["machines"].size(), 2u);
  const Json& m0 = doc["machines"].AsArray()[0];
  EXPECT_EQ(m0.GetInt("machine", -1), 0);
  EXPECT_FALSE(m0.GetBool("crashed", true));
  EXPECT_TRUE(m0["queue_depths"].is_array());
  EXPECT_GE(m0["slate_cache"].GetInt("slates", -1), 0);
  EXPECT_GT(m0["slate_cache"].GetInt("capacity", 0), 0);
  // The counting app's single updater owns ring points on every machine.
  EXPECT_GT(m0["ring_ownership"].GetInt("count", 0), 0);
}

TEST_F(AdminServiceTest, TracezServesRecordedTraces) {
  AdminService admin(engine_.get(), /*machine=*/0);
  const HttpResponse response = admin.Tracez();
  EXPECT_EQ(response.status, 200);
  Result<Json> parsed = Json::Parse(response.body);
  ASSERT_OK(parsed.status());
  const Json& doc = parsed.value();
  EXPECT_EQ(doc.GetInt("machine", -1), 0);
  ASSERT_TRUE(doc["recent"].is_array());
  ASSERT_GT(doc["recent"].size(), 0u);
  const Json& trace = doc["recent"].AsArray().front();
  ASSERT_TRUE(trace["spans"].is_array());
  ASSERT_GT(trace["spans"].size(), 0u);
  const Json& span = trace["spans"].AsArray().front();
  EXPECT_FALSE(span["kind"].AsString().empty());
  EXPECT_GE(span.GetInt("duration_us", -1), 0);
  EXPECT_GT(doc.GetInt("spans_recorded", 0), 0);
}

TEST_F(AdminServiceTest, EndpointsMountOnHttpServer) {
  AdminService admin(engine_.get());
  HttpServer server;
  admin.AttachTo(&server);
  ASSERT_OK(server.Start(0));
  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("muppet_events_published_total"), std::string::npos);
  const std::string statusz = HttpGet(server.port(), "/statusz");
  EXPECT_NE(statusz.find("\"machines\""), std::string::npos);
  const std::string tracez = HttpGet(server.port(), "/tracez");
  EXPECT_NE(tracez.find("\"recent\""), std::string::npos);
  const std::string healthz = HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200"), std::string::npos);
  EXPECT_NE(healthz.find("\"ready\""), std::string::npos);
  const std::string sloz = HttpGet(server.port(), "/sloz");
  EXPECT_NE(sloz.find("\"streams\""), std::string::npos);
  ASSERT_OK(server.Stop());
}

// /healthz readiness across the full failure lifecycle: ready, crashed
// (503), recovering after BeginRecovery (still 503 — the machine is not
// routable until its slates are restored), ready again after
// RestartMachine runs ClearFailure. Peer machines stay ready throughout.
TEST(AdminServiceHealthzTest, ReadinessFollowsRecoveryLifecycle) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 3), "", i + 1));
  }
  ASSERT_OK(engine.Drain());

  AdminService admin1(&engine, /*machine=*/1);
  AdminService admin0(&engine, /*machine=*/0);

  // Healthy cluster: both machines live and ready.
  HttpResponse healthz = admin1.Healthz();
  EXPECT_EQ(healthz.status, 200);
  {
    Result<Json> parsed = Json::Parse(healthz.body);
    ASSERT_OK(parsed.status());
    EXPECT_TRUE(parsed.value().GetBool("live", false));
    EXPECT_TRUE(parsed.value().GetBool("ready", false));
    ASSERT_TRUE(parsed.value()["checks"].is_array());
    for (const Json& check : parsed.value()["checks"].AsArray()) {
      EXPECT_TRUE(check.GetBool("ok", false)) << check.Dump();
    }
  }

  // Crashed: liveness holds (the process still answers) but readiness
  // drops and the handler maps it to 503.
  ASSERT_OK(engine.CrashMachine(1));
  healthz = admin1.Healthz();
  EXPECT_EQ(healthz.status, 503);
  {
    Result<Json> parsed = Json::Parse(healthz.body);
    ASSERT_OK(parsed.status());
    EXPECT_TRUE(parsed.value().GetBool("live", false));
    EXPECT_FALSE(parsed.value().GetBool("ready", true));
    bool machine_check_failed = false;
    for (const Json& check : parsed.value()["checks"].AsArray()) {
      if (check.GetString("name", "") == "machine") {
        machine_check_failed = !check.GetBool("ok", true);
      }
    }
    EXPECT_TRUE(machine_check_failed);
  }
  // The surviving machine is unaffected.
  EXPECT_EQ(admin0.Healthz().status, 200);

  // Mid-recovery: BeginRecovery marks the intermediate state. The
  // machine must stay not-ready until ClearFailure — traffic routed to
  // it now would read unrestored slates. (ReportFailure first: with no
  // post-crash traffic, no sender noticed the crash, and BeginRecovery
  // is a no-op without a failure record.)
  (void)engine.master().ReportFailure(1);
  EXPECT_TRUE(engine.master().BeginRecovery(1));
  Json doc = HealthzDocument(&engine, /*machine=*/1);
  EXPECT_FALSE(doc.GetBool("ready", true));
  bool recovery_check_failed = false;
  for (const Json& check : doc["checks"].AsArray()) {
    if (check.GetString("name", "") == "recovery") {
      recovery_check_failed = !check.GetBool("ok", true);
    }
  }
  EXPECT_TRUE(recovery_check_failed);

  // ClearFailure (inside RestartMachine) completes the arc: ready again.
  ASSERT_OK(engine.RestartMachine(1));
  healthz = admin1.Healthz();
  EXPECT_EQ(healthz.status, 200);
  {
    Result<Json> parsed = Json::Parse(healthz.body);
    ASSERT_OK(parsed.status());
    EXPECT_TRUE(parsed.value().GetBool("ready", false));
  }
  ASSERT_OK(engine.Stop());
}

// /sloz surfaces per-stream percentiles, the declared objective with its
// burn windows, and the worst critical paths once traffic has drained.
TEST(AdminServiceSlozTest, SlozReportsObjectiveVerdictAfterDrain) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.trace.sample_period = 1;
  SloObjective objective;
  objective.stream = "in";
  objective.target_p99_us = 30 * kMicrosPerSecond;  // generous: never breached
  options.slo.objectives.push_back(objective);
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(engine.Publish("in", "key" + std::to_string(i % 4), "", i + 1));
  }
  ASSERT_OK(engine.Drain());

  AdminService admin(&engine);
  const HttpResponse response = admin.Sloz();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  Result<Json> parsed = Json::Parse(response.body);
  ASSERT_OK(parsed.status());
  const Json& doc = parsed.value();
  EXPECT_GT(doc.GetInt("traces_observed", 0), 0);
  ASSERT_TRUE(doc["streams"].is_array());
  ASSERT_GT(doc["streams"].size(), 0u);
  bool saw_in = false;
  for (const Json& stream : doc["streams"].AsArray()) {
    if (stream.GetString("stream", "") != "in") continue;
    saw_in = true;
    EXPECT_GT(stream.GetInt("events", 0), 0);
    EXPECT_GE(stream.GetInt("p99_us", -1), stream.GetInt("p50_us", 0));
    EXPECT_GE(stream.GetInt("p999_us", -1), stream.GetInt("p99_us", 0));
    EXPECT_GE(stream.GetInt("max_us", -1), stream.GetInt("p999_us", 0));
    // The declared objective comes back with its verdict and one burn
    // entry per configured window.
    EXPECT_EQ(stream["objective"].GetInt("target_p99_us", -1),
              30 * kMicrosPerSecond);
    EXPECT_TRUE(stream.GetBool("meeting_objective", false));
    EXPECT_EQ(stream.GetInt("breaches", -1), 0);
    ASSERT_TRUE(stream["burn"].is_array());
    EXPECT_EQ(stream["burn"].size(), options.slo.burn_windows.size());
    for (const Json& burn : stream["burn"].AsArray()) {
      EXPECT_EQ(burn.GetInt("breaches", -1), 0);
    }
    // Worst critical paths: present, slowest first, buckets sum to total.
    ASSERT_TRUE(stream["worst_critical_paths"].is_array());
    ASSERT_GT(stream["worst_critical_paths"].size(), 0u);
    const Json& worst = stream["worst_critical_paths"].AsArray().front();
    EXPECT_GT(worst.GetInt("total_us", -1), 0);
    EXPECT_GT(worst.GetInt("spans", 0), 0);
    const int64_t attributed = worst.GetInt("publish_us", 0) +
                               worst.GetInt("queue_wait_us", 0) +
                               worst.GetInt("exec_us", 0) +
                               worst.GetInt("slate_fetch_us", 0) +
                               worst.GetInt("net_hop_us", 0) +
                               worst.GetInt("unattributed_us", 0);
    EXPECT_EQ(attributed, worst.GetInt("total_us", -1));
  }
  EXPECT_TRUE(saw_in);
  ASSERT_OK(engine.Stop());
}

TEST(AdminServiceMuppet1Test, EndpointsWorkOnTheLegacyEngine) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 2;
  options.trace.sample_period = 1;
  Muppet1Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine.Publish("in", "k" + std::to_string(i % 3), "", i + 1));
  }
  ASSERT_OK(engine.Drain());

  AdminService admin(&engine);
  const HttpResponse metrics = admin.Metrics();
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("muppet_events_published_total 10"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("muppet_throttle_delay_micros"),
            std::string::npos);
  Result<Json> statusz = Json::Parse(admin.Statusz().body);
  ASSERT_OK(statusz.status());
  EXPECT_EQ(statusz.value()["machines"].size(), 2u);
  Result<Json> tracez = Json::Parse(admin.Tracez().body);
  ASSERT_OK(tracez.status());
  EXPECT_GT(tracez.value()["recent"].size(), 0u);
  ASSERT_OK(engine.Stop());
}

// With load management enabled, /statusz exposes the heat sketch as a
// hot-key panel and /metrics counts heat samples. min_samples is set
// unreachably high so the controller only observes — no split can fire
// mid-test and make the panel's split fields nondeterministic.
TEST(AdminServiceHotKeysTest, StatuszExportsHeatPanel) {
  AppConfig config;
  BuildCountingApp(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.load_manager.enabled = true;
  options.load_manager.heat.sample_period = 1;
  options.load_manager.min_samples = 1LL << 40;
  // No per-tick aging: the panel row must still be there when read.
  options.load_manager.heat_decay = 1.0;
  Muppet2Engine engine(config, options);
  ASSERT_OK(engine.Start());
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(engine.Publish("in", "hot", "", i + 1));
  }
  ASSERT_OK(engine.Drain());

  AdminService admin(&engine);
  Result<Json> statusz = Json::Parse(admin.Statusz().body);
  ASSERT_OK(statusz.status());
  const Json& hot = statusz.value()["hot_keys"];
  ASSERT_TRUE(hot.is_array());
  ASSERT_GT(hot.size(), 0u);
  const Json& row = hot.AsArray().front();
  EXPECT_EQ(row["function"].AsString(), "count");
  EXPECT_EQ(row["key"].AsString(), "hot");
  EXPECT_GT(row.GetInt("sampled_count", 0), 0);
  EXPECT_FALSE(row.GetBool("split", true));

  const HttpResponse metrics = admin.Metrics();
  EXPECT_NE(metrics.body.find("muppet_heat_samples_total"),
            std::string::npos);
  ASSERT_OK(engine.Stop());
}

// The slate service's /status latency fields read the registry histogram
// the admin /metrics endpoint exports — the two can never disagree.
TEST_F(AdminServiceTest, SlateServiceLatencyMatchesRegistry) {
  MetricsRegistry* registry = engine_->metrics();
  ASSERT_NE(registry, nullptr);
  const Histogram* latency = registry->GetHistogram("muppet_e2e_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count(), 0);
  SlateService slates(engine_.get());
  Result<Json> status = Json::Parse(slates.StatusPage().body);
  ASSERT_OK(status.status());
  EXPECT_EQ(status.value().GetInt("latency_p50_us", -1),
            latency->Percentile(0.50));
  EXPECT_EQ(status.value().GetInt("latency_p99_us", -1),
            latency->Percentile(0.99));
}

}  // namespace
}  // namespace muppet
