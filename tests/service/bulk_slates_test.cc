#include "service/bulk_slates.h"

#include <map>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "kvstore/cluster.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::TempDir;

class BulkSlateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kv::KvClusterOptions options;
    options.num_nodes = 3;
    options.replication_factor = 2;
    options.node.data_dir = dir_.path() + "/kv";
    cluster_ = std::make_unique<kv::KvCluster>(options);
    ASSERT_OK(cluster_->Open());
    store_ = std::make_unique<SlateStore>(cluster_.get(),
                                          SlateStoreOptions{});
  }

  TempDir dir_;
  std::unique_ptr<kv::KvCluster> cluster_;
  std::unique_ptr<SlateStore> store_;
};

TEST_F(BulkSlateTest, DumpUpdaterReturnsAllItsSlates) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(store_->Write(SlateId{"U1", "key" + std::to_string(i)},
                            "slate" + std::to_string(i), 0));
  }
  ASSERT_OK(store_->Write(SlateId{"U2", "key0"}, "other-updater", 0));
  ASSERT_OK(cluster_->FlushAll());

  BulkSlateReader reader(store_.get());
  std::vector<std::pair<Bytes, Bytes>> dump;
  ASSERT_OK(reader.DumpUpdater("U1", &dump));
  ASSERT_EQ(dump.size(), 50u);
  std::map<Bytes, Bytes> by_key(dump.begin(), dump.end());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(by_key.at("key" + std::to_string(i)),
              "slate" + std::to_string(i));
  }
}

TEST_F(BulkSlateTest, DumpDeduplicatesReplicas) {
  // RF=2: every slate lives on two nodes; the dump must not double-count.
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(store_->Write(SlateId{"U1", "k" + std::to_string(i)}, "v", 0));
  }
  BulkSlateReader reader(store_.get());
  std::vector<std::pair<SlateId, Bytes>> all;
  ASSERT_OK(reader.DumpAll(&all));
  EXPECT_EQ(all.size(), 20u);
}

TEST_F(BulkSlateTest, DumpReturnsNewestVersion) {
  const SlateId id{"U1", "evolving"};
  ASSERT_OK(store_->Write(id, "v1", 0));
  ASSERT_OK(store_->Write(id, "v2", 0));
  ASSERT_OK(store_->Write(id, "v3", 0));
  BulkSlateReader reader(store_.get());
  std::vector<std::pair<Bytes, Bytes>> dump;
  ASSERT_OK(reader.DumpUpdater("U1", &dump));
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].second, "v3");
}

TEST_F(BulkSlateTest, DeletedSlatesExcluded) {
  ASSERT_OK(store_->Write(SlateId{"U1", "keep"}, "v", 0));
  ASSERT_OK(store_->Write(SlateId{"U1", "gone"}, "v", 0));
  ASSERT_OK(store_->Delete(SlateId{"U1", "gone"}));
  BulkSlateReader reader(store_.get());
  std::vector<std::pair<Bytes, Bytes>> dump;
  ASSERT_OK(reader.DumpUpdater("U1", &dump));
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].first, "keep");
}

TEST_F(BulkSlateTest, CompressedSlatesDecompressedOnDump) {
  Bytes big(5000, 'z');
  ASSERT_OK(store_->Write(SlateId{"U1", "big"}, big, 0));
  BulkSlateReader reader(store_.get());
  std::vector<std::pair<Bytes, Bytes>> dump;
  ASSERT_OK(reader.DumpUpdater("U1", &dump));
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].second, big);
}

TEST_F(BulkSlateTest, ForEachStreams) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(store_->Write(SlateId{"U1", "k" + std::to_string(i)}, "v", 0));
  }
  BulkSlateReader reader(store_.get());
  int seen = 0;
  ASSERT_OK(reader.ForEach("U1", [&seen](BytesView, BytesView slate) {
    EXPECT_EQ(slate, "v");
    ++seen;
  }));
  EXPECT_EQ(seen, 10);
}

TEST(SlateLoggerTest, AppendAndReadBack) {
  TempDir dir;
  const std::string path = dir.path() + "/slates.log";
  {
    SlateLogger logger;
    ASSERT_OK(logger.Open(path));
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(logger.Append("key" + std::to_string(i),
                              "payload" + std::to_string(i)));
    }
    EXPECT_EQ(logger.records_written(), 100);
    ASSERT_OK(logger.Close());
  }
  std::vector<std::pair<Bytes, Bytes>> records;
  ASSERT_OK(SlateLogger::ReadLog(path, &records));
  ASSERT_EQ(records.size(), 100u);
  EXPECT_EQ(records[42].first, "key42");
  EXPECT_EQ(records[42].second, "payload42");
}

TEST(SlateLoggerTest, ConcurrentAppendsAllSurvive) {
  // The paper warns about logger contention; correctness must hold even
  // when many updater threads share the log.
  TempDir dir;
  const std::string path = dir.path() + "/slates.log";
  SlateLogger logger;
  ASSERT_OK(logger.Open(path));
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        (void)logger.Append("t" + std::to_string(t), "x");
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_OK(logger.Close());
  std::vector<std::pair<Bytes, Bytes>> records;
  ASSERT_OK(SlateLogger::ReadLog(path, &records));
  EXPECT_EQ(records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

TEST(SlateLoggerTest, MissingLogReadsEmpty) {
  std::vector<std::pair<Bytes, Bytes>> records;
  ASSERT_OK(SlateLogger::ReadLog("/nonexistent/slates.log", &records));
  EXPECT_TRUE(records.empty());
}

TEST(SlateLoggerTest, AppendWithoutOpenFails) {
  SlateLogger logger;
  EXPECT_FALSE(logger.Append("k", "v").ok());
}

}  // namespace
}  // namespace muppet
