#include "service/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

// Minimal HTTP client for tests: one request, read everything.
std::string HttpGet(int port, const std::string& target,
                    const std::string& body = "",
                    const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = method + " " + target + " HTTP/1.0\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(UrlCodecTest, RoundTrip) {
  for (const std::string& s :
       {std::string("plain"), std::string("with space"),
        std::string("a/b?c&d"), std::string("\x01\xff\x00z", 4),
        std::string("")}) {
    EXPECT_EQ(UrlDecode(UrlEncode(s)), s);
  }
  EXPECT_EQ(UrlEncode("a b"), "a%20b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");  // malformed escapes pass through
}

TEST(HttpServerTest, ServesRegisteredHandler) {
  HttpServer server;
  server.RegisterHandler("/hello", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "hi " + request.path + "\n"};
  });
  ASSERT_OK(server.Start(0));
  ASSERT_GT(server.port(), 0);
  const std::string response = HttpGet(server.port(), "/hello/world");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("hi /hello/world"), std::string::npos);
  ASSERT_OK(server.Stop());
}

TEST(HttpServerTest, UnknownPath404) {
  HttpServer server;
  server.RegisterHandler("/known", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_OK(server.Start(0));
  const std::string response = HttpGet(server.port(), "/unknown");
  EXPECT_NE(response.find("404"), std::string::npos);
  ASSERT_OK(server.Stop());
}

TEST(HttpServerTest, LongestPrefixWins) {
  HttpServer server;
  server.RegisterHandler("/a", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "short"};
  });
  server.RegisterHandler("/a/b", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "long"};
  });
  ASSERT_OK(server.Start(0));
  EXPECT_NE(HttpGet(server.port(), "/a/b/c").find("long"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/a/x").find("short"),
            std::string::npos);
  ASSERT_OK(server.Stop());
}

TEST(HttpServerTest, QueryStringSeparated) {
  HttpServer server;
  std::string seen_path, seen_query;
  server.RegisterHandler("/q", [&](const HttpRequest& request) {
    seen_path = request.path;
    seen_query = request.query;
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_OK(server.Start(0));
  HttpGet(server.port(), "/q/x?a=1&b=2");
  EXPECT_EQ(seen_path, "/q/x");
  EXPECT_EQ(seen_query, "a=1&b=2");
  ASSERT_OK(server.Stop());
}

TEST(HttpServerTest, PostBodyDelivered) {
  HttpServer server;
  std::string seen_body, seen_method;
  server.RegisterHandler("/post", [&](const HttpRequest& request) {
    seen_body = request.body;
    seen_method = request.method;
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_OK(server.Start(0));
  HttpGet(server.port(), "/post", "the payload", "POST");
  EXPECT_EQ(seen_method, "POST");
  EXPECT_EQ(seen_body, "the payload");
  ASSERT_OK(server.Stop());
}

TEST(HttpServerTest, ManySequentialRequests) {
  HttpServer server;
  std::atomic<int> hits{0};
  server.RegisterHandler("/", [&](const HttpRequest&) {
    hits.fetch_add(1);
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_OK(server.Start(0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(HttpGet(server.port(), "/" + std::to_string(i)).find("200"),
              std::string::npos);
  }
  EXPECT_EQ(hits.load(), 100);
  ASSERT_OK(server.Stop());
}

TEST(HttpServerTest, ConcurrentClients) {
  HttpServer server;
  std::atomic<int> hits{0};
  server.RegisterHandler("/", [&](const HttpRequest& request) {
    hits.fetch_add(1);
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  ASSERT_OK(server.Start(0));
  constexpr int kThreads = 4, kPerThread = 25;
  std::atomic<int> ok_responses{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string target =
            "/t" + std::to_string(t) + "/" + std::to_string(i);
        const std::string response = HttpGet(server.port(), target);
        if (response.find("200 OK") != std::string::npos &&
            response.find("echo:" + target) != std::string::npos) {
          ok_responses.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok_responses.load(), kThreads * kPerThread);
  EXPECT_EQ(hits.load(), kThreads * kPerThread);
  ASSERT_OK(server.Stop());
}

TEST(HttpServerTest, OversizedAndGarbageRequestsSurvive) {
  HttpServer server;
  server.RegisterHandler("/", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_OK(server.Start(0));
  // Garbage request line: the server must not crash and must keep serving.
  HttpGet(server.port(), "\r\n\r\n");
  // Large-ish body.
  HttpGet(server.port(), "/post", std::string(100000, 'x'), "POST");
  EXPECT_NE(HttpGet(server.port(), "/fine").find("200"), std::string::npos);
  ASSERT_OK(server.Stop());
}

// muppetd binds every admin plane with port 0 in tests and reads the
// kernel-assigned port back through port(): the reported port must be
// real (reachable), stable while running, and distinct per server.
TEST(HttpServerTest, EphemeralPortIsReportedAndReachable) {
  HttpServer a, b;
  const auto ok = [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  };
  a.RegisterHandler("/", ok);
  b.RegisterHandler("/", ok);
  ASSERT_OK(a.Start(0));
  ASSERT_OK(b.Start(0));
  ASSERT_GT(a.port(), 0);
  ASSERT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
  const int seen = a.port();
  EXPECT_NE(HttpGet(a.port(), "/").find("200"), std::string::npos);
  EXPECT_NE(HttpGet(b.port(), "/").find("200"), std::string::npos);
  EXPECT_EQ(a.port(), seen);  // stable across requests
  ASSERT_OK(a.Stop());
  ASSERT_OK(b.Stop());
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.RegisterHandler("/", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_OK(server.Start(0));
  ASSERT_OK(server.Stop());
  ASSERT_OK(server.Stop());
  ASSERT_OK(server.Start(0));
  EXPECT_NE(HttpGet(server.port(), "/").find("200"), std::string::npos);
  ASSERT_OK(server.Stop());
}

}  // namespace
}  // namespace muppet
