#include "service/slate_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "engine/muppet2.h"
#include "gtest/gtest.h"
#include "tests/engine/engine_test_util.h"
#include "tests/test_util.h"

namespace muppet {
namespace {

using ::muppet::testing::BuildCountingApp;

std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class SlateServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildCountingApp(&config_);
    EngineOptions options;
    options.num_machines = 2;
    options.threads_per_machine = 2;
    engine_ = std::make_unique<Muppet2Engine>(config_, options);
    ASSERT_OK(engine_->Start());
    for (int i = 0; i < 12; ++i) {
      ASSERT_OK(engine_->Publish("in", "walmart", "", i + 1));
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(engine_->Publish("in", "key with space", "", 100 + i));
    }
    ASSERT_OK(engine_->Drain());
  }

  void TearDown() override { ASSERT_OK(engine_->Stop()); }

  AppConfig config_;
  std::unique_ptr<Muppet2Engine> engine_;
};

TEST_F(SlateServiceTest, InProcessFetchReturnsSlate) {
  SlateService service(engine_.get());
  const HttpResponse response = service.Fetch("/slate/count/walmart");
  EXPECT_EQ(response.status, 200);
  JsonSlate s(&response.body);
  EXPECT_EQ(s.data().GetInt("count"), 12);
}

TEST_F(SlateServiceTest, UriHelperEscapesKey) {
  SlateService service(engine_.get());
  const std::string uri = SlateService::SlateUri("count", "key with space");
  EXPECT_EQ(uri, "/slate/count/key%20with%20space");
  const HttpResponse response = service.Fetch(UrlDecode(uri));
  EXPECT_EQ(response.status, 200);
}

TEST_F(SlateServiceTest, MissingSlate404) {
  SlateService service(engine_.get());
  EXPECT_EQ(service.Fetch("/slate/count/never-seen").status, 404);
  EXPECT_EQ(service.Fetch("/slate/ghost-updater/k").status, 404);
}

TEST_F(SlateServiceTest, MalformedUri400) {
  SlateService service(engine_.get());
  EXPECT_EQ(service.Fetch("/slate/missing-key-part").status, 400);
  EXPECT_EQ(service.Fetch("/wrong/prefix/x").status, 400);
}

TEST_F(SlateServiceTest, StatusPageReportsCounters) {
  SlateService service(engine_.get());
  const HttpResponse response = service.StatusPage();
  EXPECT_EQ(response.status, 200);
  Result<Json> parsed = Json::Parse(response.body);
  ASSERT_OK(parsed);
  EXPECT_EQ(parsed.value().GetInt("events_published"), 17);
  EXPECT_EQ(parsed.value().GetInt("events_processed"), 17);
}

TEST_F(SlateServiceTest, ServesOverRealHttp) {
  // The full §4.4 path: URI over a TCP socket to the node's HTTP server,
  // answered from the slate cache.
  SlateService service(engine_.get());
  HttpServer server;
  service.AttachTo(&server);
  ASSERT_OK(server.Start(0));

  const std::string response =
      HttpGet(server.port(), SlateService::SlateUri("count", "walmart"));
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"count\":12"), std::string::npos);

  const std::string escaped = HttpGet(
      server.port(), SlateService::SlateUri("count", "key with space"));
  EXPECT_NE(escaped.find("\"count\":5"), std::string::npos);

  const std::string status = HttpGet(server.port(), "/status");
  EXPECT_NE(status.find("events_published"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/slate/count/ghost");
  EXPECT_NE(missing.find("404"), std::string::npos);
  ASSERT_OK(server.Stop());
}

TEST_F(SlateServiceTest, FetchSeesLiveUpdates) {
  // §4.4: the fetch must reflect the cache, i.e. the newest state.
  SlateService service(engine_.get());
  const HttpResponse first = service.Fetch("/slate/count/walmart");
  JsonSlate before(&first.body);
  ASSERT_OK(engine_->Publish("in", "walmart", "", 999));
  ASSERT_OK(engine_->Drain());
  const HttpResponse second = service.Fetch("/slate/count/walmart");
  JsonSlate after(&second.body);
  EXPECT_EQ(after.data().GetInt("count"),
            before.data().GetInt("count") + 1);
}

}  // namespace
}  // namespace muppet
