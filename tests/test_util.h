// Shared test helpers.
#ifndef MUPPET_TESTS_TEST_UTIL_H_
#define MUPPET_TESTS_TEST_UTIL_H_

#include <filesystem>
#include <random>
#include <string>

#include "common/status.h"
#include "gtest/gtest.h"

namespace muppet {
namespace testing {

// A unique temporary directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const auto base = std::filesystem::temp_directory_path();
    std::random_device rd;
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto candidate = base / ("muppet_test_" + std::to_string(rd()) + "_" +
                               std::to_string(attempt));
      std::error_code ec;
      if (std::filesystem::create_directory(candidate, ec)) {
        path_ = candidate.string();
        return;
      }
    }
    ADD_FAILURE() << "could not create temp dir";
  }

  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

// Copy the Status inside the full expression: binding `const auto&` to
// StatusOf(expr) would dangle when `expr` is `result.status()` on a
// temporary Result (the reference outlives the temporary's member).
#define ASSERT_OK(expr)                                             \
  do {                                                              \
    const ::muppet::Status _status =                                \
        ::muppet::testing::StatusOf((expr));                        \
    ASSERT_TRUE(_status.ok()) << _status.ToString();                \
  } while (0)

#define EXPECT_OK(expr)                                             \
  do {                                                              \
    const ::muppet::Status _status =                                \
        ::muppet::testing::StatusOf((expr));                        \
    EXPECT_TRUE(_status.ok()) << _status.ToString();                \
  } while (0)

}  // namespace testing
}  // namespace muppet

#endif  // MUPPET_TESTS_TEST_UTIL_H_
