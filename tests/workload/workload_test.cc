#include <map>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "json/json.h"
#include "tests/test_util.h"
#include "workload/checkins.h"
#include "workload/rate.h"
#include "workload/tweets.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace workload {
namespace {

TEST(ZipfKeysTest, DeterministicAndSkewed) {
  ZipfKeyGenerator a(1000, 1.2, "k", 7);
  ZipfKeyGenerator b(1000, 1.2, "k", 7);
  std::map<Bytes, int> counts;
  for (int i = 0; i < 10000; ++i) {
    const Bytes key = a.Next();
    EXPECT_EQ(key, b.Next());
    counts[key]++;
  }
  // Rank 0 dominates under skew 1.2.
  EXPECT_GT(counts[a.KeyAt(0)], 1000);
}

TEST(TweetGeneratorTest, TimestampsStrictlyIncrease) {
  TweetGenerator gen(TweetOptions{}, /*start_ts=*/1000);
  Timestamp prev = 1000;
  for (int i = 0; i < 1000; ++i) {
    const Tweet t = gen.Next();
    EXPECT_GT(t.ts, prev);
    prev = t.ts;
  }
}

TEST(TweetGeneratorTest, RateControlsSpacing) {
  TweetOptions options;
  options.events_per_second = 100.0;  // 10ms spacing
  TweetGenerator gen(options);
  const Tweet first = gen.Next();
  const Tweet second = gen.Next();
  EXPECT_EQ(second.ts - first.ts, 10000);
}

TEST(TweetGeneratorTest, JsonParsesAndMatchesFields) {
  TweetGenerator gen(TweetOptions{});
  for (int i = 0; i < 200; ++i) {
    const Tweet t = gen.Next();
    Result<Json> parsed = Json::Parse(t.json);
    ASSERT_OK(parsed);
    EXPECT_EQ(parsed.value().GetString("user"), std::string(t.user));
    EXPECT_EQ(parsed.value()["topics"].size(), t.topics.size());
    if (!t.url.empty()) {
      EXPECT_EQ(parsed.value().GetString("url"), std::string(t.url));
    }
    if (t.is_retweet) {
      EXPECT_EQ(parsed.value().GetString("retweet_of"),
                std::string(t.target_user));
    }
  }
}

TEST(TweetGeneratorTest, MixOfFeaturesPresent) {
  TweetOptions options;
  options.seed = 3;
  TweetGenerator gen(options);
  int with_topics = 0, retweets = 0, replies = 0, with_url = 0;
  for (int i = 0; i < 2000; ++i) {
    const Tweet t = gen.Next();
    if (!t.topics.empty()) ++with_topics;
    if (t.is_retweet) ++retweets;
    if (t.is_reply) ++replies;
    if (!t.url.empty()) ++with_url;
  }
  EXPECT_GT(with_topics, 1000);
  EXPECT_GT(retweets, 200);
  EXPECT_GT(replies, 80);
  EXPECT_GT(with_url, 300);
}

TEST(TweetGeneratorTest, BurstTopicSpikes) {
  TweetOptions options;
  options.burst_topic = 3;
  options.burst_start = 0;
  options.burst_end = 1000 * kMicrosPerSecond;
  options.burst_multiplier = 10.0;
  options.seed = 5;
  TweetGenerator burst_gen(options);

  TweetOptions calm = options;
  calm.burst_topic = -1;
  TweetGenerator calm_gen(calm);

  auto count_topic3 = [](TweetGenerator& gen) {
    int count = 0;
    for (int i = 0; i < 3000; ++i) {
      for (int topic : gen.Next().topics) {
        if (topic == 3) ++count;
      }
    }
    return count;
  };
  EXPECT_GT(count_topic3(burst_gen), count_topic3(calm_gen) * 3);
}

TEST(CheckinGeneratorTest, RetailerMixMatchesFraction) {
  CheckinOptions options;
  options.retailer_fraction = 0.4;
  options.seed = 9;
  CheckinGenerator gen(options);
  int retail = 0;
  for (int i = 0; i < 5000; ++i) {
    if (!gen.Next().retailer.empty()) ++retail;
  }
  EXPECT_NEAR(retail / 5000.0, 0.4, 0.05);
}

TEST(CheckinGeneratorTest, HotRetailerDominates) {
  CheckinOptions options;
  options.hot_retailer = 2;  // Best Buy
  options.hot_fraction = 0.9;
  options.retailer_fraction = 1.0;
  CheckinGenerator gen(options);
  std::map<std::string, int> counts;
  for (int i = 0; i < 2000; ++i) counts[gen.Next().retailer]++;
  EXPECT_GT(counts["Best Buy"], 1500);
}

TEST(CheckinGeneratorTest, JsonVenueRecognizable) {
  CheckinOptions options;
  options.retailer_fraction = 1.0;
  CheckinGenerator gen(options);
  for (int i = 0; i < 100; ++i) {
    const Checkin c = gen.Next();
    Result<Json> parsed = Json::Parse(c.json);
    ASSERT_OK(parsed);
    EXPECT_FALSE(parsed.value().GetString("venue").empty());
    EXPECT_FALSE(c.retailer.empty());
  }
}

TEST(CheckinGeneratorTest, RetailerNamesStable) {
  const auto& names = RetailerNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "Walmart");
  EXPECT_EQ(names[2], "Best Buy");
}

TEST(RateControllerTest, PacesToTargetOnSimulatedClock) {
  SimulatedClock clock;
  RateController rate(1000.0, &clock);  // 1ms per event
  for (int i = 0; i < 100; ++i) rate.Pace();
  EXPECT_EQ(clock.Now(), 100 * 1000);
  EXPECT_EQ(rate.count(), 100);
}

TEST(RateControllerTest, SlowConsumerNotDelayedFurther) {
  SimulatedClock clock;
  RateController rate(1000.0, &clock);
  clock.Advance(10 * kMicrosPerSecond);  // consumer fell far behind
  const Timestamp before = clock.Now();
  rate.Pace();
  EXPECT_EQ(clock.Now(), before) << "behind schedule: no extra sleep";
}

TEST(RateControllerTest, ResetRebaselines) {
  SimulatedClock clock;
  RateController rate(1000.0, &clock);
  clock.Advance(5 * kMicrosPerSecond);
  rate.Reset();
  rate.Pace();
  EXPECT_EQ(clock.Now(), 5 * kMicrosPerSecond + 1000);
}

}  // namespace
}  // namespace workload
}  // namespace muppet
