#!/usr/bin/env python3
"""Throughput-regression gate over the committed bench baselines.

Compares a freshly produced BENCH_*.json against the baseline committed
at the repo root. Rows are matched by their configuration keys (every
key that is not a measured metric — e.g. `dispatch`, `zipf_skew`,
`load_manager`); for each matched row the `events_per_sec` throughput
is compared:

  * drop  > --fail-pct (default 25%)  ->  exit 1 (regression)
  * drop  > --warn-pct (default 10%)  ->  warning, exit 0
  * a baseline row missing from the fresh results -> exit 1
    (config drift must be re-baselined deliberately, not silently)

Latency and counter columns ride along for humans but are not gated:
they are too environment-sensitive for a hard nightly threshold.

Usage:
  tools/check_bench.py BASELINE FRESH [--warn-pct N] [--fail-pct N]
  tools/check_bench.py --selftest
"""

from __future__ import annotations

import argparse
import json
import sys

# Everything measured rather than configured. Keys not listed here
# identify the row.
METRIC_KEYS = frozenset({
    "events_per_sec", "elapsed_us", "events",
    "http_errors",
    "latency_p50_us", "latency_p95_us", "latency_p99_us",
    "latency_p999_us",
    "queue_wait_p99_us",
    "secondary_dispatches", "slate_contentions",
    "key_splits", "key_merges",
    "exact",
    "slatelog_appends", "checkpoints",
    "replay_records", "replay_elapsed_us", "replay_records_per_sec",
})


def _load(path: str) -> tuple[str, list[dict]]:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "rows" not in doc:
        raise ValueError(f"{path}: not a bench result "
                         "(expected {{'bench': ..., 'rows': [...]}})")
    return str(doc.get("bench", "?")), list(doc["rows"])


def _row_key(row: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in row.items()
                        if k not in METRIC_KEYS))


def _fmt_key(key: tuple) -> str:
    return "{" + ", ".join(f"{k}={v}" for k, v in key) + "}"


def compare(baseline_path: str, fresh_path: str,
            warn_pct: float, fail_pct: float) -> int:
    base_name, base_rows = _load(baseline_path)
    fresh_name, fresh_rows = _load(fresh_path)
    if base_name != fresh_name:
        print(f"check_bench: bench name mismatch: baseline is "
              f"'{base_name}', fresh is '{fresh_name}'", file=sys.stderr)
        return 2

    # A bench may measure the same configuration more than once (e.g.
    # with/without tracing sweeps that repeat a point); group per key
    # and match positionally within the group.
    fresh_by_key: dict[tuple, list[dict]] = {}
    for row in fresh_rows:
        fresh_by_key.setdefault(_row_key(row), []).append(row)

    failures = 0
    warnings = 0
    for row in base_rows:
        key = _row_key(row)
        group = fresh_by_key.get(key, [])
        fresh = group.pop(0) if group else None
        if fresh is None:
            print(f"check_bench: FAIL {_fmt_key(key)}: row missing from "
                  f"fresh results; re-baseline deliberately if the bench "
                  f"matrix changed")
            failures += 1
            continue
        base_eps = float(row.get("events_per_sec", 0.0))
        fresh_eps = float(fresh.get("events_per_sec", 0.0))
        if base_eps <= 0:
            continue
        drop_pct = (base_eps - fresh_eps) / base_eps * 100.0
        line = (f"{_fmt_key(key)}: baseline {base_eps:,.0f} ev/s, "
                f"fresh {fresh_eps:,.0f} ev/s ({-drop_pct:+.1f}%)")
        if drop_pct > fail_pct:
            print(f"check_bench: FAIL {line}")
            failures += 1
        elif drop_pct > warn_pct:
            print(f"check_bench: WARN {line}")
            warnings += 1
        else:
            print(f"check_bench: ok   {line}")

    for key, group in fresh_by_key.items():
        for _ in group:
            print(f"check_bench: note {_fmt_key(key)}: new row not in "
                  f"the baseline (ungated)")

    if failures:
        print(f"check_bench: {failures} regression(s) beyond "
              f"{fail_pct:.0f}% on bench '{base_name}'", file=sys.stderr)
        return 1
    if warnings:
        print(f"check_bench: {warnings} row(s) more than {warn_pct:.0f}% "
              f"down on bench '{base_name}' (not fatal)", file=sys.stderr)
    print(f"check_bench: OK bench '{base_name}' "
          f"({len(base_rows)} row(s) gated)")
    return 0


def _selftest() -> int:
    import copy
    import os
    import tempfile

    base = {
        "bench": "dispatch",
        "rows": [
            {"dispatch": "single", "zipf_skew": 0,
             "events_per_sec": 100000.0, "latency_p50_us": 10},
            {"dispatch": "two-choice", "zipf_skew": 0,
             "events_per_sec": 200000.0, "latency_p50_us": 8},
        ],
    }

    def run_case(mutate, expect_rc: int, what: str,
                 failures: list[str]) -> None:
        fresh = copy.deepcopy(base)
        mutate(fresh)
        with tempfile.TemporaryDirectory() as td:
            bp = os.path.join(td, "base.json")
            fp = os.path.join(td, "fresh.json")
            with open(bp, "w", encoding="utf-8") as f:
                json.dump(base, f)
            with open(fp, "w", encoding="utf-8") as f:
                json.dump(fresh, f)
            rc = compare(bp, fp, warn_pct=10.0, fail_pct=25.0)
        tag = "ok" if rc == expect_rc else "FAIL"
        print(f"[{tag}] check_bench selftest: {what} "
              f"(rc={rc}, want {expect_rc})")
        if rc != expect_rc:
            failures.append(what)

    failures: list[str] = []
    run_case(lambda d: None, 0, "identical results pass", failures)
    run_case(lambda d: d["rows"][0].__setitem__("events_per_sec", 85000.0),
             0, "-15% drop warns but passes", failures)
    run_case(lambda d: d["rows"][0].__setitem__("events_per_sec", 60000.0),
             1, "-40% drop fails", failures)
    run_case(lambda d: d["rows"][0].__setitem__("events_per_sec", 140000.0),
             0, "improvement passes", failures)
    run_case(lambda d: d["rows"].pop(0), 1,
             "missing baseline row fails", failures)
    run_case(lambda d: d.__setitem__("bench", "hotspot"), 2,
             "bench name mismatch is a usage error", failures)
    # Latency is informational only: a big latency change alone passes.
    run_case(lambda d: d["rows"][0].__setitem__("latency_p50_us", 900),
             0, "latency drift alone is not gated", failures)
    if failures:
        print(f"check_bench selftest: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("check_bench selftest: all cases behaved")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="check_bench")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("--warn-pct", type=float, default=10.0)
    ap.add_argument("--fail-pct", type=float, default=25.0)
    ap.add_argument("--selftest", action="store_true")
    args = ap.parse_args(argv[1:])

    if args.selftest:
        return _selftest()
    if not args.baseline or not args.fresh:
        ap.error("BASELINE and FRESH are required unless --selftest")
    try:
        return compare(args.baseline, args.fresh,
                       args.warn_pct, args.fail_pct)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
