#!/usr/bin/env python3
"""Validate Prometheus text exposition format v0.0.4 (stdlib only).

Usage:
    check_prom.py FILE          # validate a scrape saved to a file
    ... | check_prom.py -       # validate stdin
    check_prom.py FILE --require FAMILY [--require FAMILY ...]
                                # additionally fail unless each named
                                # family has at least one sample; a
                                # trailing '*' matches any suffix
                                # (e.g. --require 'muppet_slo_*')

Checks, per the exposition-format spec:
  * every line is a comment (# HELP / # TYPE), a sample, or blank
  * metric and label names are legal ([a-zA-Z_:][a-zA-Z0-9_:]*)
  * label values use only \\\\ \\" \\n escapes
  * sample values parse as int/float (Inf/NaN allowed)
  * at most one TYPE line per family, appearing before its samples
  * a family's samples are contiguous (no interleaving)
  * histogram families have _bucket/_sum/_count series, the le ladder is
    cumulative (monotone non-decreasing), ends at +Inf, and the +Inf
    bucket equals _count
  * no duplicate sample (same name + label set)

Exit status 0 = valid; 1 = violations (printed one per line).
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value, optional timestamp
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r" ([^ ]+)"
    r"(?: (-?\d+))?$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_ESCAPES = {"\\", '"', "n"}


def base_family(name):
    """Strip histogram/summary sample suffixes to get the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(raw, lineno, errors):
    labels = {}
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if m is None:
            errors.append(f"line {lineno}: malformed labels: {{{raw}}}")
            return labels
        name, value = m.group(1), m.group(2)
        if not LABEL_NAME_RE.match(name):
            errors.append(f"line {lineno}: bad label name {name!r}")
        i = 0
        while i < len(value):
            if value[i] == "\\":
                if i + 1 >= len(value) or value[i + 1] not in VALID_ESCAPES:
                    errors.append(
                        f"line {lineno}: bad escape in label value {value!r}"
                    )
                    break
                i += 2
            else:
                i += 1
        if name in labels:
            errors.append(f"line {lineno}: duplicate label {name!r}")
        labels[name] = value
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                errors.append(f"line {lineno}: expected ',' in labels")
                return labels
            pos += 1
    return labels


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def validate(text):
    errors = []
    types = {}  # family -> declared type
    family_done = set()  # families whose sample block has ended
    current_family = None
    seen_samples = set()
    histograms = {}  # family -> {"buckets": [(le, v)], "sum": v, "count": v}

    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    errors.append(f"line {lineno}: truncated {parts[1]} line")
                    continue
                family = parts[2]
                if not METRIC_NAME_RE.match(family):
                    errors.append(
                        f"line {lineno}: bad metric name {family!r}"
                    )
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        errors.append(
                            f"line {lineno}: unknown type {kind!r}"
                        )
                    if family in types:
                        errors.append(
                            f"line {lineno}: duplicate TYPE for {family}"
                        )
                    if family in family_done or any(
                        base_family(s.split("{")[0]) == family
                        for s in seen_samples
                    ):
                        errors.append(
                            f"line {lineno}: TYPE for {family} after its "
                            "samples"
                        )
                    types[family] = kind
            # bare comments are fine
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name, raw_labels, raw_value = m.group(1), m.group(2), m.group(3)
        labels = parse_labels(raw_labels, lineno, errors) if raw_labels else {}
        try:
            value = parse_value(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: bad value {raw_value!r}")
            continue

        family = base_family(name)
        if family != current_family:
            if family in family_done:
                errors.append(
                    f"line {lineno}: samples of {family} are not contiguous"
                )
            if current_family is not None:
                family_done.add(current_family)
            current_family = family

        key = name + "{" + ",".join(
            f'{k}="{v}"' for k, v in sorted(labels.items())
        ) + "}"
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {key}")
        seen_samples.add(key)

        if types.get(family) == "histogram":
            h = histograms.setdefault(
                family, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                else:
                    h["buckets"].append((labels["le"], value, lineno))
            elif name.endswith("_sum"):
                h["sum"] = value
            elif name.endswith("_count"):
                h["count"] = value

    for family, h in sorted(histograms.items()):
        if not h["buckets"]:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        if h["count"] is None:
            errors.append(f"histogram {family}: missing _count")
        if h["sum"] is None:
            errors.append(f"histogram {family}: missing _sum")
        prev = None
        for le, value, lineno in h["buckets"]:
            if prev is not None and value < prev:
                errors.append(
                    f"line {lineno}: histogram {family} le={le} bucket "
                    f"count {value} < previous {prev} (not cumulative)"
                )
            prev = value
        last_le = h["buckets"][-1][0]
        if last_le != "+Inf":
            errors.append(
                f"histogram {family}: bucket ladder ends at le={last_le!r}, "
                "not +Inf"
            )
        elif h["count"] is not None and h["buckets"][-1][1] != h["count"]:
            errors.append(
                f"histogram {family}: +Inf bucket {h['buckets'][-1][1]} != "
                f"_count {h['count']}"
            )

    return errors, len(seen_samples), seen_samples


def check_required(required, seen_samples, errors):
    """Each required family (exact, or prefix via a trailing '*') must
    have at least one sample in the scrape."""
    families = {base_family(s.split("{")[0]) for s in seen_samples}
    for req in required:
        if req.endswith("*"):
            prefix = req[:-1]
            if not any(f.startswith(prefix) for f in families):
                errors.append(f"required family {req!r}: no sample with "
                              "that prefix")
        elif req not in families:
            errors.append(f"required family {req!r}: no samples")


def main(argv):
    args = argv[1:]
    required = []
    while "--require" in args:
        i = args.index("--require")
        if i + 1 >= len(args):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        required.append(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if args[0] == "-":
        text = sys.stdin.read()
    else:
        with open(args[0], "r", encoding="utf-8") as f:
            text = f.read()
    errors, samples, seen_samples = validate(text)
    check_required(required, seen_samples, errors)
    for e in errors:
        print(f"check_prom: {e}", file=sys.stderr)
    if errors:
        print(f"check_prom: FAIL ({len(errors)} violations)", file=sys.stderr)
        return 1
    print(f"check_prom: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
