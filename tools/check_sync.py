#!/usr/bin/env python3
"""Tree-wide concurrency lint.

Fails if any file under src/, tests/, or bench/ names a raw
standard-library synchronization primitive instead of the annotated
wrappers in src/common/sync.h (muppet::Mutex / SharedMutex / MutexLock /
ReaderMutexLock / WriterMutexLock / CondVar). The wrappers carry Clang
thread-safety attributes and participate in the runtime lock-order
checker; a raw std::mutex is invisible to both. Tests and benches are
held to the same rule: a test that takes a raw lock around engine state
can mask (or cause) an ordering bug the checker would otherwise catch.

Usage: tools/check_sync.py [repo_root]     (exit 0 = clean)
"""

import os
import re
import sys

# Only src/common/sync.h and sync.cc may touch the raw primitives.
ALLOWED = {
    os.path.join("src", "common", "sync.h"),
    os.path.join("src", "common", "sync.cc"),
}

FORBIDDEN = [
    (re.compile(r"\bstd::(recursive_|timed_|recursive_timed_)?mutex\b"),
     "std::mutex family"),
    (re.compile(r"\bstd::shared_(timed_)?mutex\b"), "std::shared_mutex"),
    (re.compile(r"\bstd::lock_guard\b"), "std::lock_guard"),
    (re.compile(r"\bstd::unique_lock\b"), "std::unique_lock"),
    (re.compile(r"\bstd::shared_lock\b"), "std::shared_lock"),
    (re.compile(r"\bstd::scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"\bstd::condition_variable(_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"#\s*include\s*<mutex>"), "#include <mutex>"),
    (re.compile(r"#\s*include\s*<shared_mutex>"), "#include <shared_mutex>"),
    (re.compile(r"#\s*include\s*<condition_variable>"),
     "#include <condition_variable>"),
]


SCAN_DIRS = ("src", "tests", "bench")


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.getcwd()
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"check_sync: no src/ under {root}", file=sys.stderr)
        return 2
    roots = [os.path.join(root, d) for d in SCAN_DIRS
             if os.path.isdir(os.path.join(root, d))]

    violations = 0
    for scan_root in roots:
        for dirpath, _, filenames in sorted(os.walk(scan_root)):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                if rel in ALLOWED:
                    continue
                with open(path, encoding="utf-8") as f:
                    for lineno, line in enumerate(f, start=1):
                        for pattern, what in FORBIDDEN:
                            if pattern.search(line):
                                print(f"{rel}:{lineno}: raw {what}; use "
                                      "the wrappers in common/sync.h")
                                violations += 1

    if violations:
        print(f"check_sync: {violations} violation(s)", file=sys.stderr)
        return 1
    scanned = ", ".join(os.path.relpath(r, root) + "/" for r in roots)
    print(f"check_sync: OK (no raw std synchronization primitives in "
          f"{scanned})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
