#!/usr/bin/env python3
"""muppet-doctor: one-shot cluster diagnosis from the admin endpoints.

Scrapes /healthz, /statusz, /sloz and /metrics from each given admin
endpoint (or reads a saved scrape directory), runs the project's
diagnosis rules over the combined view, and prints findings ranked by
severity with a concrete remediation hint each — the runbook in
DESIGN.md §14, executable.

Usage:
    muppet_doctor.py http://host:port [http://host2:port2 ...]
    muppet_doctor.py --from-dir DIR     # saved scrape: healthz.json,
                                        # statusz.json, sloz.json,
                                        # metrics.prom (chaos artifacts
                                        # and CI smoke dumps fit); a DIR
                                        # holding node*/ subdirectories
                                        # is diagnosed per cluster node
    muppet_doctor.py --selftest         # fixture-driven self-check

Exit status: 0 = healthy or warnings only, 1 = at least one critical
finding, 2 = scrape/usage error. Stdlib only.
"""

from __future__ import annotations

import json
import os
import re
import sys
import urllib.error
import urllib.request

CRIT, WARN, INFO = "CRIT", "WARN", "INFO"
_SEV_RANK = {CRIT: 0, WARN: 1, INFO: 2}

# Remediation hints keyed by watchdog incident kind (engine/watchdog.h).
_INCIDENT_HINTS = {
    "queue-stall": ("a worker queue is full and not dequeuing: look for a "
                    "wedged operator (stuck map/update callback) or an "
                    "undersized queue_capacity"),
    "drain-stall": ("a drain has made no inflight progress for several "
                    "ticks: an event is stuck in an operator or a "
                    "crashed machine still holds inflight work"),
    "changelog-stall": ("the slate changelog sync cursor is frozen while "
                        "appends continue: check disk throughput / fsync "
                        "latency on that machine"),
    "recovery-stuck": ("a machine has been between BeginRecovery and "
                       "ClearFailure past the budget: replay may be "
                       "wedged on a corrupt segment; inspect its "
                       "changelog directory"),
}

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? ([^ ]+)(?: -?\d+)?$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class Finding:
    def __init__(self, severity, where, message, hint=""):
        self.severity = severity
        self.where = where
        self.message = message
        self.hint = hint

    def render(self):
        line = f"[{self.severity}] {self.where}: {self.message}"
        if self.hint:
            line += f"\n       fix: {self.hint}"
        return line


def parse_metrics(text):
    """Prometheus text -> list of (name, {labels}, float value)."""
    samples = []
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        labels = dict(_LABEL_RE.findall(m.group(2) or ""))
        try:
            value = float(m.group(3))
        except ValueError:
            continue
        samples.append((m.group(1), labels, value))
    return samples


def metric_value(samples, name, **labels):
    for sname, slabels, value in samples:
        if sname == name and all(slabels.get(k) == v
                                 for k, v in labels.items()):
            return value
    return None


def diagnose(healthz, statusz, sloz, samples, where="cluster"):
    """The rule set. Pure function of the four scraped documents."""
    findings = []

    # --- Liveness / readiness (the first thing an operator checks).
    if healthz is not None:
        if not healthz.get("live", True):
            findings.append(Finding(
                CRIT, where, "process reports not-live",
                "the admin server answered but the engine marked itself "
                "dead; restart the process"))
        if not healthz.get("ready", True):
            failed = [c for c in healthz.get("checks", [])
                      if not c.get("ok", True)]
            detail = "; ".join(
                f"{c.get('name', '?')}: {c.get('detail', '')}"
                for c in failed) or "no failing check listed"
            findings.append(Finding(
                CRIT, where, f"machine not ready ({detail})",
                "drain traffic away until /healthz returns 200; if the "
                "machine is mid-recovery this clears at ClearFailure"))

    # --- Crashed machines and open incidents from /statusz.
    if statusz is not None:
        for machine in statusz.get("machines", []):
            mid = machine.get("machine", "?")
            if machine.get("crashed", False):
                findings.append(Finding(
                    CRIT, f"{where}/machine-{mid}", "machine crashed",
                    "RestartMachine (or the ops equivalent) replays the "
                    "changelog and rejoins the ring"))
            if machine.get("recovering", False):
                findings.append(Finding(
                    WARN, f"{where}/machine-{mid}",
                    "machine recovering (not routable)",
                    "expected to clear once changelog replay finishes; "
                    "if it persists see the recovery-stuck incident hint"))
            capacity = machine.get("queue_capacity", 0)
            depths = machine.get("queue_depths", [])
            if capacity and depths:
                worst = max(depths)
                if worst >= capacity:
                    findings.append(Finding(
                        CRIT, f"{where}/machine-{mid}",
                        f"worker queue full ({worst}/{capacity})",
                        _INCIDENT_HINTS["queue-stall"]))
                elif worst >= 0.8 * capacity:
                    findings.append(Finding(
                        WARN, f"{where}/machine-{mid}",
                        f"worker queue at {worst}/{capacity} "
                        "(>=80% occupancy)",
                        "sustained pressure triggers the overflow policy; "
                        "add threads/machines or raise queue_capacity"))
        open_incidents = statusz.get("open_incidents", 0)
        if open_incidents:
            kinds = {}
            for incident in statusz.get("incidents", []):
                if incident.get("open", False) or incident.get(
                        "cleared_us", 0) == 0:
                    kinds[incident.get("kind", "?")] = (
                        kinds.get(incident.get("kind", "?"), 0) + 1)
            for kind, count in sorted(kinds.items()):
                findings.append(Finding(
                    CRIT, where,
                    f"{count} open {kind} incident(s) (watchdog)",
                    _INCIDENT_HINTS.get(kind, "see /statusz incidents "
                                        "panel for the stalled entity")))
            if not kinds:
                findings.append(Finding(
                    CRIT, where,
                    f"{open_incidents} open watchdog incident(s)",
                    "see the /statusz incidents panel"))

    # --- SLO verdicts and burn rates from /sloz.
    if sloz is not None:
        for stream in sloz.get("streams", []):
            name = stream.get("stream", "?")
            if "meeting_objective" in stream and not stream.get(
                    "meeting_objective", True):
                target = stream.get("objective", {}).get("target_p99_us", 0)
                findings.append(Finding(
                    CRIT, f"{where}/stream-{name}",
                    f"latency objective missed: p99 {stream.get('p99_us', 0)}"
                    f"us > target {target}us",
                    _dominant_bucket_hint(stream)))
            for burn in stream.get("burn", []):
                rate = burn.get("rate", 0.0)
                if rate > 1.0:
                    window_s = burn.get("window_micros", 0) // 1_000_000
                    findings.append(Finding(
                        WARN, f"{where}/stream-{name}",
                        f"error budget burning at {rate:.1f}x over the "
                        f"{window_s}s window",
                        "sustained >1x exhausts the objective's budget; "
                        + _dominant_bucket_hint(stream)))

    # --- Metrics-only signals (work even if the JSON endpoints are off).
    if samples:
        throttle = metric_value(samples, "muppet_throttle_delay_micros")
        if throttle:
            findings.append(Finding(
                WARN, where,
                f"source throttle active ({int(throttle)}us per publish)",
                "the cluster is shedding ingest; scale out or accept "
                "reduced input rate"))
        open_gauge = metric_value(samples, "muppet_watchdog_open_incidents")
        if open_gauge and statusz is None:
            findings.append(Finding(
                CRIT, where,
                f"{int(open_gauge)} open watchdog incident(s) (metrics)",
                "scrape /statusz for the incident panel"))
        # Cross-process transport health (muppetd deployments): dropped
        # sends mark the paper's §4.3 failed-send detection window;
        # declines mark write-queue / receiver backpressure.
        dropped = metric_value(
            samples, "muppet_transport_messages_dropped_total")
        if dropped:
            findings.append(Finding(
                WARN, where,
                f"{int(dropped)} cross-machine message(s) dropped at the "
                "transport",
                "sends to an unreachable peer fail until the ring reroutes "
                "(§4.3); if the count keeps growing a peer connection is "
                "flapping — check that node's muppetd process and network"))
        declined = metric_value(
            samples, "muppet_transport_messages_declined_total")
        if declined:
            findings.append(Finding(
                WARN, where,
                f"{int(declined)} message(s) declined by transport "
                "backpressure",
                "a peer's TCP write queue (or its receiver queue) is full; "
                "the overflow policy is engaged — scale out the slow node "
                "or raise the queue caps"))

    findings.sort(key=lambda f: _SEV_RANK[f.severity])
    return findings


def _dominant_bucket_hint(stream):
    """Pick the remediation from the worst critical path's biggest bucket."""
    worst = stream.get("worst_critical_paths", [])
    if not worst:
        return "no critical paths captured; raise trace sampling"
    path = worst[0]
    buckets = {
        "queue_wait_us": "time is queue wait: add worker threads or "
                         "machines (or split the hot key)",
        "exec_us": "time is operator exec: the map/update callback itself "
                   "is slow",
        "slate_fetch_us": "time is slate fetches: cache misses or remote "
                          "reads dominate; grow the slate cache",
        "net_hop_us": "time is network hops: keys are bouncing between "
                      "machines; check ring placement",
        "publish_us": "time is publish-side: the ingest path or source "
                      "throttle is the bottleneck",
    }
    dominant = max(buckets, key=lambda k: path.get(k, 0))
    return f"worst trace: most {buckets[dominant]}"


def fetch(base, target):
    with urllib.request.urlopen(base + target, timeout=10) as resp:
        return resp.read().decode("utf-8")


def load_json(text, what):
    try:
        return json.loads(text)
    except json.JSONDecodeError as e:
        print(f"muppet-doctor: bad JSON from {what}: {e}", file=sys.stderr)
        return None


def scrape_endpoint(base):
    docs = {}
    for target, key in (("/healthz", "healthz"), ("/statusz", "statusz"),
                        ("/sloz", "sloz"), ("/metrics", "metrics")):
        try:
            docs[key] = fetch(base, target)
        except (urllib.error.URLError, OSError) as e:
            # /healthz returns 503 with a body when not ready — that body
            # IS the diagnosis input, not a scrape failure.
            if isinstance(e, urllib.error.HTTPError) and e.code == 503:
                docs[key] = e.read().decode("utf-8")
            else:
                print(f"muppet-doctor: cannot scrape {base}{target}: {e}",
                      file=sys.stderr)
                docs[key] = None
    return docs


def load_dir(path):
    docs = {}
    for fname, key in (("healthz.json", "healthz"),
                       ("statusz.json", "statusz"), ("sloz.json", "sloz"),
                       ("metrics.prom", "metrics")):
        full = os.path.join(path, fname)
        docs[key] = (open(full, encoding="utf-8").read()
                     if os.path.exists(full) else None)
    return docs


def diagnose_docs(docs, where):
    # A node that produced NO document at all is a finding, not a silent
    # pass: in a multi-node scrape a dead muppetd must not read as
    # healthy just because there was nothing to diagnose.
    if not any(docs.get(k) for k in ("healthz", "statusz", "sloz",
                                     "metrics")):
        return [Finding(
            CRIT, where, "node unreachable (no admin endpoint answered)",
            "the muppetd process is down or the admin address is wrong; "
            "restart the node and check the cluster config")]
    healthz = (load_json(docs["healthz"], "healthz")
               if docs.get("healthz") else None)
    statusz = (load_json(docs["statusz"], "statusz")
               if docs.get("statusz") else None)
    sloz = load_json(docs["sloz"], "sloz") if docs.get("sloz") else None
    samples = parse_metrics(docs["metrics"]) if docs.get("metrics") else []
    return diagnose(healthz, statusz, sloz, samples, where)


def diagnose_tree(path, where):
    """Diagnose a saved scrape. A flat directory holds one node's
    documents; a directory with node*/ subdirectories holds one saved
    scrape per cluster node (the net-smoke and chaos artifact layout),
    diagnosed per node with findings merged most-severe-first."""
    subdirs = sorted(
        d for d in (os.listdir(path) if os.path.isdir(path) else [])
        if d.startswith("node") and os.path.isdir(os.path.join(path, d)))
    if not subdirs:
        return diagnose_docs(load_dir(path), where)
    findings = []
    for sub in subdirs:
        findings.extend(
            diagnose_docs(load_dir(os.path.join(path, sub)),
                          f"{where}/{sub}"))
    findings.sort(key=lambda f: _SEV_RANK[f.severity])
    return findings


def report(findings):
    for finding in findings:
        print(finding.render())
    crit = sum(1 for f in findings if f.severity == CRIT)
    warn = sum(1 for f in findings if f.severity == WARN)
    if not findings:
        print("muppet-doctor: cluster healthy (no findings)")
    else:
        print(f"muppet-doctor: {len(findings)} finding(s) "
              f"({crit} critical, {warn} warning)")
    return 1 if crit else 0


# --- Fixture selftest -------------------------------------------------

def selftest():
    testdata = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "testdata", "doctor")
    failures = []

    def check(cond, what):
        print(f"[{'ok' if cond else 'FAIL'}] {what}")
        if not cond:
            failures.append(what)

    cases = sorted(os.listdir(testdata))
    check(len(cases) >= 3, f"at least 3 fixture cases ({cases})")
    for case in cases:
        case_dir = os.path.join(testdata, case)
        if not os.path.isdir(case_dir):
            continue
        with open(os.path.join(case_dir, "expected.json"),
                  encoding="utf-8") as f:
            expected = json.load(f)
        findings = diagnose_tree(case_dir, case)
        rendered = "\n".join(f.render() for f in findings)
        crit = sum(1 for f in findings if f.severity == CRIT)
        warn = sum(1 for f in findings if f.severity == WARN)
        check(crit == expected["critical"],
              f"{case}: {crit} critical findings "
              f"(want {expected['critical']})")
        check(warn == expected["warnings"],
              f"{case}: {warn} warnings (want {expected['warnings']})")
        for needle in expected.get("contains", []):
            check(needle in rendered,
                  f"{case}: diagnosis mentions {needle!r}")
        for needle in expected.get("absent", []):
            check(needle not in rendered,
                  f"{case}: diagnosis does not mention {needle!r}")
        # Ranking: severities must come out most-severe-first.
        ranks = [_SEV_RANK[f.severity] for f in findings]
        check(ranks == sorted(ranks), f"{case}: findings ranked by severity")
    print("muppet-doctor selftest:",
          "PASS" if not failures else f"FAIL ({len(failures)})")
    return 0 if not failures else 1


def main(argv):
    if len(argv) >= 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) == 3 and argv[1] == "--from-dir":
        return report(diagnose_tree(argv[2], argv[2]))
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    findings = []
    for base in argv[1:]:
        findings.extend(diagnose_docs(scrape_endpoint(base), base))
    findings.sort(key=lambda f: _SEV_RANK[f.severity])
    return report(findings)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
