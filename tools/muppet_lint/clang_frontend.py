"""Optional libclang frontend.

When the Python clang bindings (clang.cindex) and a loadable libclang
are present, muppet-lint cross-validates its built-in class/field model
against the real AST: for each class the textual model found, the
libclang field list must match. Divergence is reported as a warning
(the textual model stays authoritative so results are identical on
hosts without libclang, e.g. the GCC-only default toolchain here).

When the bindings are absent the skip is loud — one stderr line —
mirroring the lint target's clang-format/clang-tidy skip idiom.
"""

from __future__ import annotations

import sys


def load():
    """Return the clang.cindex module, or None after a loud skip."""
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        print("muppet-lint: libclang python bindings not found -- "
              "AST cross-validation skipped (built-in parser only)",
              file=sys.stderr)
        return None
    try:
        cindex.Index.create()
    except Exception as e:  # cindex present but libclang.so missing
        print(f"muppet-lint: libclang unusable ({e}) -- "
              "AST cross-validation skipped (built-in parser only)",
              file=sys.stderr)
        return None
    return cindex


def cross_validate(cindex, root: str, files, model_classes) -> list[str]:
    """Compare the textual field model with libclang's view.

    model_classes: {class name -> set of field names} from cpp_model.
    Returns warning strings (never findings: a parse divergence is a
    muppet-lint bug, not a code bug).
    """
    warnings: list[str] = []
    index = cindex.Index.create()
    args = ["-std=c++20", f"-I{root}/src", f"-I{root}"]
    for sf in files:
        if not sf.rel.endswith(".h"):
            continue
        try:
            tu = index.parse(sf.path, args=args)
        except Exception as e:
            warnings.append(f"{sf.rel}: libclang parse failed: {e}")
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (cindex.CursorKind.CLASS_DECL,
                                   cindex.CursorKind.STRUCT_DECL):
                continue
            if not cursor.is_definition():
                continue
            if cursor.location.file is None or \
                    cursor.location.file.name != sf.path:
                continue
            name = cursor.spelling
            if name not in model_classes:
                continue
            ast_fields = {c.spelling for c in cursor.get_children()
                          if c.kind == cindex.CursorKind.FIELD_DECL}
            model_fields = model_classes[name]
            missing = ast_fields - model_fields
            if missing:
                warnings.append(
                    f"{sf.rel}: class {name}: built-in parser missed "
                    f"field(s) {sorted(missing)} that libclang sees")
    return warnings
