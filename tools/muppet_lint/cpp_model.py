"""Lightweight C++ source model for muppet-lint.

This is not a C++ parser; it is a project-shaped lexer that understands
exactly the idioms this codebase enforces elsewhere (Google style,
annotated sync wrappers, brace-initialized members, Encode/Decode free
functions). Every pass consumes the same model:

  * SourceFile     -- raw text, comment/string-stripped text, line map,
                      `// muppet-lint: allow(check): why` suppressions
  * ClassInfo      -- name, bases, member fields (with annotations),
                      source range
  * FunctionInfo   -- qualified name, enclosing class, body range,
                      REQUIRES/EXCLUDES annotations from the matching
                      header declaration

The model intentionally over-approximates in places (lambda bodies are
split out as pseudo-functions; unresolvable mutex expressions are
reported, not guessed). When the optional libclang frontend is present
it cross-validates the class/field tables; see clang_frontend.py.
"""

from __future__ import annotations

import bisect
import os
import re
from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Findings and suppressions
# --------------------------------------------------------------------------

@dataclass
class Finding:
    check: str          # "lock-graph" | "wire" | "determinism" | "guarded" | "suppression"
    path: str           # repo-relative path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# `// muppet-lint: allow(check): justification` or allow(a, b): ...
SUPPRESS_RE = re.compile(
    r"muppet-lint:\s*allow\(\s*([a-z][a-z\-]*(?:\s*,\s*[a-z][a-z\-]*)*)\s*\)"
    r"(?:\s*:\s*(.*\S))?")

KNOWN_CHECKS = {"lock-graph", "wire", "determinism", "guarded"}


class Suppressions:
    """Per-file suppression table.

    A suppression covers the line it appears on; when the marker is on a
    line whose stripped code is blank (a comment-only line), it also
    covers the next line, so block-comment style

        // muppet-lint: allow(guarded): written once before Start()
        int knob_ = 0;

    works. A marker without a justification is itself a finding.
    """

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.malformed: list[tuple[int, str]] = []
        self.used: set[tuple[int, str]] = set()

    def add(self, line: int, checks: set[str], covers_next: bool) -> None:
        self.by_line.setdefault(line, set()).update(checks)
        if covers_next:
            self.by_line.setdefault(line + 1, set()).update(checks)

    def allows(self, check: str, line: int) -> bool:
        if check in self.by_line.get(line, ()):  # noqa: SIM103
            self.used.add((line, check))
            return True
        return False


class SourceFile:
    def __init__(self, root: str, rel: str) -> None:
        self.rel = rel.replace(os.sep, "/")
        self.path = os.path.join(root, rel)
        with open(self.path, encoding="utf-8") as f:
            self.text = f.read()
        self.code = strip_comments_and_strings(self.text)
        # Offsets of line starts, for offset -> line translation.
        self._line_starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                self._line_starts.append(i + 1)
        self.suppressions = self._scan_suppressions()

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self._line_starts, offset)

    def line_text(self, line: int) -> str:
        start = self._line_starts[line - 1]
        end = (self._line_starts[line] - 1
               if line < len(self._line_starts) else len(self.text))
        return self.text[start:end]

    def code_line(self, line: int) -> str:
        start = self._line_starts[line - 1]
        end = (self._line_starts[line] - 1
               if line < len(self._line_starts) else len(self.code))
        return self.code[start:end]

    def _scan_suppressions(self) -> Suppressions:
        sup = Suppressions()
        for lineno in range(1, len(self._line_starts) + 1):
            raw = self.line_text(lineno)
            m = SUPPRESS_RE.search(raw)
            if not m:
                continue
            checks = {c.strip() for c in m.group(1).split(",")}
            justification = m.group(2)
            if not justification:
                sup.malformed.append(
                    (lineno, "suppression is missing its justification "
                             "(write `// muppet-lint: allow(check): why`)"))
                continue
            unknown = checks - KNOWN_CHECKS
            if unknown:
                sup.malformed.append(
                    (lineno, f"suppression names unknown check(s) "
                             f"{sorted(unknown)}; known: "
                             f"{sorted(KNOWN_CHECKS)}"))
                checks &= KNOWN_CHECKS
            comment_only = not self.code_line(lineno).strip()
            sup.add(lineno, checks, covers_next=comment_only)
        return sup

    def allows(self, check: str, line: int) -> bool:
        return self.suppressions.allows(check, line)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal contents.

    Newlines are preserved so offsets and line numbers stay aligned with
    the original text. String literal quotes are kept (the content is
    blanked) so regexes never match inside literals. Handles //, /* */,
    raw strings R"delim(...)delim", and digit separators (1'000'000).
    """
    out = list(text)
    i, n = 0, len(text)

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank(i, j)
            i = j
        elif c == '"':
            # Raw string?  Look back for R / u8R / LR / uR / UR.
            is_raw = False
            k = i - 1
            prefix = ""
            while k >= 0 and text[k].isalnum():
                prefix = text[k] + prefix
                k -= 1
                if len(prefix) > 3:
                    break
            if prefix.endswith("R") and len(prefix) <= 3:
                is_raw = True
            if is_raw:
                close_paren = text.find("(", i)
                delim = text[i + 1:close_paren]
                terminator = ")" + delim + '"'
                j = text.find(terminator, close_paren + 1)
                j = n if j < 0 else j + len(terminator)
                blank(i + 1, j - 1)
                i = j
            else:
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                j = min(j + 1, n)
                blank(i + 1, j - 1)
                i = j
        elif c == "'":
            prev = text[i - 1] if i > 0 else ""
            if prev.isdigit() and nxt and (nxt.isdigit() or
                                           nxt in "abcdefABCDEF"):
                i += 1  # digit separator, e.g. 1'000'000
                continue
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out)


def match_brace(code: str, open_idx: int) -> int:
    """Index just past the `}` matching code[open_idx] == `{` (or len)."""
    depth = 0
    for i in range(open_idx, len(code)):
        ch = code[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def split_top_level(args: str) -> list[str]:
    """Split an argument list on commas outside (), <>, {}, []."""
    parts, depth, cur = [], 0, []
    prev = ""
    for ch in args:
        if ch in "(<[{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == ">" and prev != "-":  # `->` is not a closing angle
            depth -= 1
        prev = ch
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


# --------------------------------------------------------------------------
# Class / member model
# --------------------------------------------------------------------------

ANNOTATION_NAMES = (
    "MUPPET_GUARDED_BY", "MUPPET_PT_GUARDED_BY", "MUPPET_ACQUIRED_BEFORE",
    "MUPPET_ACQUIRED_AFTER", "MUPPET_REQUIRES", "MUPPET_REQUIRES_SHARED",
    "MUPPET_EXCLUDES", "MUPPET_ACQUIRE", "MUPPET_ACQUIRE_SHARED",
    "MUPPET_RELEASE", "MUPPET_RELEASE_SHARED", "MUPPET_RELEASE_GENERIC",
    "MUPPET_TRY_ACQUIRE", "MUPPET_TRY_ACQUIRE_SHARED",
    "MUPPET_RETURN_CAPABILITY", "MUPPET_ASSERT_CAPABILITY",
)

ANNOT_RE = re.compile(
    r"\b(" + "|".join(ANNOTATION_NAMES) + r")\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")


@dataclass
class MemberField:
    name: str
    type_text: str       # declaration text minus the name
    line: int
    is_static: bool
    is_mutable: bool
    is_const: bool
    is_constexpr: bool
    annotations: list[tuple[str, str]]  # (macro, args)
    init_text: str       # brace/equals initializer text ("" if none)
    array: bool

    def annotation(self, *names: str) -> str | None:
        for macro, args in self.annotations:
            if macro in names:
                return args
        return None


@dataclass
class ClassInfo:
    name: str            # unqualified
    kind: str            # "class" | "struct"
    bases: list[str]
    file: SourceFile
    start: int           # offset of the `class` keyword
    body_start: int      # offset just past `{`
    body_end: int        # offset of closing `}`
    line: int
    fields: list[MemberField] = field(default_factory=list)
    enclosing: str = ""  # name of enclosing class for nested types

    @property
    def qualified(self) -> str:
        return f"{self.enclosing}::{self.name}" if self.enclosing else self.name

    def field_named(self, name: str) -> MemberField | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None


CLASS_RE = re.compile(
    r"\b(?P<kind>class|struct)\s+(?:MUPPET_\w+(?:\([^()]*\))?\s+)?"
    r"(?:[A-Za-z_]\w*::)*(?P<name>[A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?P<bases>:\s*[^{;]*)?\{")

FIELD_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*$")

KEYWORD_STATEMENTS = (
    "using", "typedef", "friend", "static_assert", "template", "public",
    "private", "protected", "enum", "explicit", "operator", "return",
)


def parse_classes(sf: SourceFile) -> list[ClassInfo]:
    """All class/struct definitions in a file, including nested ones."""
    classes: list[ClassInfo] = []
    _parse_classes_in(sf, 0, len(sf.code), "", classes)
    return classes


def _parse_classes_in(sf: SourceFile, start: int, end: int,
                      enclosing: str, out: list[ClassInfo]) -> None:
    code = sf.code
    pos = start
    while pos < end:
        m = CLASS_RE.search(code, pos, end)
        if not m:
            return
        # Skip `enum class`.
        before = code[max(0, m.start() - 8):m.start()]
        if re.search(r"\benum\s*$", before):
            pos = m.end()
            continue
        body_open = m.end() - 1
        body_close = match_brace(code, body_open) - 1
        info = ClassInfo(
            name=m.group("name"), kind=m.group("kind"),
            bases=[b.strip().split()[-1] for b in
                   split_top_level((m.group("bases") or ":")[1:])]
            if m.group("bases") else [],
            file=sf, start=m.start(), body_start=body_open + 1,
            body_end=body_close, line=sf.line_of(m.start()))
        info.enclosing = enclosing
        _parse_members(sf, info, out)
        out.append(info)
        pos = body_close + 1


def _parse_members(sf: SourceFile, info: ClassInfo,
                   out: list[ClassInfo]) -> None:
    """Split the class body into top-level statements; record fields and
    recurse into nested classes."""
    code = sf.code
    i = info.body_start
    stmt_start = i
    while i < info.body_end:
        ch = code[i]
        if ch == "{":
            close = match_brace(code, i)
            head = code[stmt_start:i]
            cm = CLASS_RE.search(code, stmt_start, i + 1)
            if cm and cm.end() - 1 == i and not re.search(
                    r"\benum\s+(class\s+)?\w*\s*$", code[stmt_start:cm.start()]):
                _parse_classes_in(sf, stmt_start, close, info.name, out)
                # Nested class: the statement ends at its `};`.
                i = close
                if i < info.body_end and code[i] == ";":
                    i += 1
                stmt_start = i
                continue
            if "(" in head or re.search(r"\benum\b", head):
                # Function body / enum body: skip it; the statement ends
                # here (optionally followed by `;`).
                i = close
                if i < info.body_end and code[i] == ";":
                    i += 1
                stmt_start = i
                continue
            # Brace initializer of a member: part of the statement.
            i = close
            continue
        if ch == ":" and re.search(r"\b(public|private|protected)\s*$",
                                   code[stmt_start:i]):
            i += 1
            stmt_start = i
            continue
        if ch == ";":
            stmt = code[stmt_start:i]
            f = _parse_field(sf, stmt, stmt_start)
            if f is not None:
                info.fields.append(f)
            i += 1
            stmt_start = i
            continue
        i += 1


def _parse_field(sf: SourceFile, stmt: str,
                 stmt_offset: int) -> MemberField | None:
    text = stmt.strip()
    if not text:
        return None
    first_word = re.match(r"[A-Za-z_]\w*", text)
    if first_word and first_word.group(0) in KEYWORD_STATEMENTS:
        return None
    annotations = [(m.group(1), m.group(2).strip())
                   for m in ANNOT_RE.finditer(text)]
    bare = ANNOT_RE.sub(" ", text)
    # Strip the initializer: `= ...` or a trailing `{...}` group.
    init = ""
    eq = _top_level_find(bare, "=")
    if eq >= 0:
        init = bare[eq + 1:].strip()
        bare = bare[:eq]
    else:
        bm = _trailing_brace_group(bare)
        if bm is not None:
            init = bm[1]
            bare = bm[0]
    bare = bare.strip()
    if not bare or "(" in bare or ")" in bare:
        return None  # method declaration, ctor, function pointer, ...
    qualifiers = {"static": False, "mutable": False, "constexpr": False,
                  "inline": False, "const": False}
    tokens = bare.split()
    while tokens and tokens[0] in qualifiers:
        qualifiers[tokens[0]] = True
        tokens.pop(0)
    if tokens and tokens[0] == "const":
        qualifiers["const"] = True
        tokens.pop(0)
    bare = " ".join(tokens)
    nm = FIELD_NAME_RE.search(bare)
    if not nm:
        return None
    name = nm.group(1)
    if name == "operator":
        return None  # `T& operator=(...) = delete;` is not a field
    type_text = bare[:nm.start()].strip()
    if not type_text:
        return None  # a lone identifier is not a declaration
    line = sf.line_of(stmt_offset + stmt.find(name.split("[")[0]))
    # `const` embedded at the top level of the type (e.g. `const LockLevel x`)
    # was popped above; `std::vector<const T*>` stays non-const.
    return MemberField(
        name=name, type_text=type_text, line=line,
        is_static=qualifiers["static"], is_mutable=qualifiers["mutable"],
        is_const=qualifiers["const"], is_constexpr=qualifiers["constexpr"],
        annotations=annotations, init_text=init,
        array=nm.group(2) is not None)


def _top_level_find(text: str, needle: str) -> int:
    depth = 0
    for i, ch in enumerate(text):
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        elif ch == needle and depth == 0:
            # Reject ==, <=, >=, != around the match.
            if needle == "=" and (
                    (i > 0 and text[i - 1] in "=<>!+-*/|&^") or
                    (i + 1 < len(text) and text[i + 1] == "=")):
                continue
            return i
    return -1


def _trailing_brace_group(text: str) -> tuple[str, str] | None:
    t = text.rstrip()
    if not t.endswith("}"):
        return None
    depth = 0
    for i in range(len(t) - 1, -1, -1):
        if t[i] == "}":
            depth += 1
        elif t[i] == "{":
            depth -= 1
            if depth == 0:
                return t[:i], t[i + 1:len(t) - 1].strip()
    return None


# --------------------------------------------------------------------------
# Function model
# --------------------------------------------------------------------------

@dataclass
class FunctionInfo:
    name: str            # unqualified function/method name
    cls: str             # enclosing class name ("" for free functions)
    file: SourceFile
    body_start: int      # offset just past `{`
    body_end: int        # offset of closing `}`
    line: int
    header_text: str     # text between name and body (args + qualifiers)
    is_lambda: bool = False

    @property
    def key(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


FUNC_HEAD_RE = re.compile(
    r"(?<![\w.>])"                               # not obj.Foo( / ptr->Foo(
    r"((?:[A-Za-z_]\w*::)*)"                     # qualifier
    r"(~?[A-Za-z_]\w*|operator\s*[^\s(]{1,3})"   # name
    r"\s*\(")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "alignof", "decltype", "static_assert", "assert",
    "defined", "co_await", "co_return",
}


def parse_functions(sf: SourceFile,
                    classes: list[ClassInfo]) -> list[FunctionInfo]:
    """Function definitions with bodies (free, methods, out-of-line).

    Lambdas inside bodies are extracted as separate pseudo-functions and
    their text blanked from the enclosing body, so that locks taken on a
    worker thread are not attributed to the spawning function's scope.
    """
    funcs: list[FunctionInfo] = []
    code = sf.code
    class_ranges = [(c.body_start, c.body_end, c.name) for c in classes]

    pos = 0
    n = len(code)
    while pos < n:
        m = FUNC_HEAD_RE.search(code, pos)
        if not m:
            break
        name = m.group(2).replace(" ", "")
        if name in CONTROL_KEYWORDS or name.startswith("MUPPET_"):
            pos = m.end()
            continue
        args_open = m.end() - 1
        args_close = _match_paren(code, args_open)
        if args_close < 0:
            pos = m.end()
            continue
        body_open = _find_body_after(code, args_close + 1)
        if body_open is None:
            pos = m.end()
            continue
        body_close = match_brace(code, body_open) - 1
        qual = m.group(1).rstrip(":")
        cls = qual.split("::")[-1] if qual else ""
        if not cls:
            for cs, ce, cname in class_ranges:
                if cs <= m.start() < ce:
                    cls = cname
                    break
        funcs.append(FunctionInfo(
            name=name, cls=cls, file=sf, body_start=body_open + 1,
            body_end=body_close, line=sf.line_of(m.start()),
            header_text=code[args_open:body_open]))
        # Continue scanning *inside* the body too: nested class methods
        # were already captured by the class walk; lambdas are handled by
        # the caller via extract_lambdas. Move past the header only.
        pos = body_open + 1
    return _dedupe_functions(funcs)


def _dedupe_functions(funcs: list[FunctionInfo]) -> list[FunctionInfo]:
    seen: set[tuple[int, int]] = set()
    out = []
    for f in funcs:
        span = (f.body_start, f.body_end)
        if span in seen:
            continue
        seen.add(span)
        out.append(f)
    return out


def _match_paren(code: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(code)):
        ch = code[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


QUALIFIER_TOKEN_RE = re.compile(
    r"\s*(const|noexcept|override|final|mutable|->\s*[\w:<>,\s*&]+|"
    + "|".join(ANNOTATION_NAMES) + r")\b")


def _find_body_after(code: str, pos: int) -> int | None:
    """After an argument list, skip qualifiers / annotations / ctor init
    lists; return the offset of the opening `{` of a definition, or None
    when this is only a declaration (`;`) or something else."""
    i = pos
    n = len(code)
    while i < n:
        ch = code[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "{":
            return i
        if ch == ";":
            return None
        if ch == ":":
            # ctor init list: scan forward over `name(init)` / `name{init}`
            # groups until `{` at depth 0.
            i += 1
            depth = 0
            while i < n:
                c = code[i]
                if c in "([":
                    depth += 1
                elif c in ")]":
                    depth -= 1
                elif c == "{" and depth == 0:
                    # Either a member brace-init or the body. A body `{`
                    # follows a `)`/`}` + whitespace or the `:` directly
                    # after an identifier... distinguish by looking back:
                    # member init `name{` has an identifier immediately
                    # before; body `{` follows `)` or `}` or `,`-less end.
                    k = i - 1
                    while k >= 0 and code[k].isspace():
                        k -= 1
                    if k >= 0 and (code[k].isalnum() or code[k] == "_"):
                        close = match_brace(code, i)
                        i = close
                        continue
                    return i
                elif c == ";" and depth == 0:
                    return None
                i += 1
            return None
        m = QUALIFIER_TOKEN_RE.match(code, i)
        if m:
            i = m.end()
            # Skip a following (...) group (annotation args, noexcept(..)).
            j = i
            while j < n and code[j].isspace():
                j += 1
            if j < n and code[j] == "(":
                i = _match_paren(code, j) + 1
            continue
        if ch == "=":
            return None  # `= default`, `= delete`, or an initializer
        return None
    return None


LAMBDA_RE = re.compile(r"\[[^\[\]]*\]\s*(\([^()]*(?:\([^()]*\)[^()]*)*\))?"
                       r"\s*(mutable\s*)?(->\s*[\w:<>,\s*&]+\s*)?\{")


def extract_lambdas(sf: SourceFile, fn: FunctionInfo,
                    counter: list[int]) -> tuple[str, list[FunctionInfo]]:
    """Return fn's body text with lambda bodies blanked, plus one
    pseudo-FunctionInfo per lambda (named <fn>::lambda#N)."""
    body = sf.code[fn.body_start:fn.body_end]
    lambdas: list[FunctionInfo] = []
    out = list(body)

    def scan(text_start: int, text_end: int) -> None:
        i = text_start
        while i < text_end:
            m = LAMBDA_RE.search(sf.code, i, text_end)
            if not m:
                return
            # Heuristic guard: `[` after an identifier is array indexing.
            k = m.start() - 1
            while k >= 0 and sf.code[k].isspace():
                k -= 1
            if k >= 0 and (sf.code[k].isalnum() or sf.code[k] in "_)]"):
                i = m.start() + 1
                continue
            body_open = m.end() - 1
            body_close = match_brace(sf.code, body_open) - 1
            counter[0] += 1
            lam = FunctionInfo(
                name=f"{fn.name}::lambda#{counter[0]}", cls=fn.cls,
                file=sf, body_start=body_open + 1, body_end=body_close,
                line=sf.line_of(m.start()), header_text="", is_lambda=True)
            lambdas.append(lam)
            for j in range(body_open + 1 - fn.body_start,
                           body_close - fn.body_start):
                if 0 <= j < len(out) and out[j] != "\n":
                    out[j] = " "
            scan(body_open + 1, body_close)  # nested lambdas
            i = body_close + 1

    scan(fn.body_start, fn.body_end)
    return "".join(out), lambdas


# --------------------------------------------------------------------------
# Repo walking
# --------------------------------------------------------------------------

def walk_sources(root: str, subdirs: tuple[str, ...] = ("src",),
                 exts: tuple[str, ...] = (".h", ".cc")) -> list[SourceFile]:
    files = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith(exts):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(SourceFile(root, rel))
    return files
