"""Pass 3: determinism lint.

The chaos harness replays whole cluster runs bit-for-bit from one seed
(DESIGN.md §8); the reference oracle compares slate ledgers byte by
byte. Both break the moment engine/core/net/testing code consults a
nondeterminism source. This pass bans, inside those paths:

  * wall clocks (`std::chrono::*_clock::now`, `time(nullptr)`,
    `gettimeofday`, `clock_gettime`) — production time flows through
    the Clock abstraction (common/clock.h) so simulations can drive it;
  * real-time sleeps (`std::this_thread::sleep_for/sleep_until`) —
    settle loops must be justified with a suppression, everything else
    goes through Clock::SleepFor;
  * ambient randomness (`std::rand`, `srand`, `std::random_device`,
    `std::mt19937` and friends) — seeds are plumbed explicitly via
    common/rng.h;
  * pointer-keyed ordered containers (`std::map<T*, ...>`,
    `std::set<T*>`) — address order differs across runs;
  * iteration over unordered containers inside serialization /
    fingerprint / comparison functions — hash-table order is not part
    of the wire or oracle contract.

Scope: src/engine, src/core, src/net, src/testing (common/clock.* is
the sanctioned wall-clock user and is exempt, as is common/rng.h).
"""

from __future__ import annotations

import re

from cpp_model import (Finding, SourceFile, parse_classes, parse_functions)

CHECK = "determinism"

SCOPE_DIRS = ("src/engine/", "src/core/", "src/net/", "src/testing/")
EXEMPT_FILES = ("src/common/clock.h", "src/common/clock.cc",
                "src/common/rng.h")

BANNED = [
    (re.compile(r"\bstd::chrono::(system|steady|high_resolution)_clock"
                r"\s*::\s*now\b"),
     "wall-clock read; route time through the Clock abstraction "
     "(common/clock.h) so simulated runs stay reproducible"),
    (re.compile(r"\b(system|steady|high_resolution)_clock::now\b"),
     "wall-clock read; route time through the Clock abstraction "
     "(common/clock.h) so simulated runs stay reproducible"),
    (re.compile(r"\bstd::this_thread::sleep_(for|until)\b"),
     "real-time sleep; use Clock::SleepFor (or justify a bounded settle "
     "loop with a suppression)"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "wall-clock read; route time through the Clock abstraction"),
    (re.compile(r"\b(gettimeofday|clock_gettime)\s*\("),
     "wall-clock read; route time through the Clock abstraction"),
    (re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom\s*\(\s*\)"),
     "ambient RNG; seed an explicit generator from common/rng.h"),
    (re.compile(r"\bstd::random_device\b"),
     "nondeterministic seed source; seeds are plumbed explicitly"),
    (re.compile(r"\bstd::(mt19937(_64)?|minstd_rand0?|"
                r"default_random_engine|ranlux\w+|knuth_b)\b"),
     "std random engine; use the explicit-seed generator in common/rng.h"),
]

PTR_KEYED_RE = re.compile(
    r"\bstd::(map|set|multimap|multiset)\s*<\s*(?:const\s+)?[\w:]+\s*\*")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(map|set|multimap|multiset)\s*<[^;=]*?>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([\w\.\->\[\]]+)\s*\)")
ORDER_SENSITIVE_FN_RE = re.compile(
    r"Encode|Serialize|ToWire|Fingerprint|Signature|Snapshot|Ledger|"
    r"Oracle|Compare|Digest|Checksum")
ORDER_SENSITIVE_BODY_RE = re.compile(
    r"\bPut(Varint32|Varint64|Fixed32|Fixed64|LengthPrefixed)\s*\(|"
    r"\bEncode\w*\s*\(|\bHashCombine\s*\(|\bFnv1a64\s*\(")


def _in_scope(sf: SourceFile) -> bool:
    if sf.rel in EXEMPT_FILES:
        return False
    return any(sf.rel.startswith(d) for d in SCOPE_DIRS)


def run(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        if not _in_scope(sf):
            continue
        code_lines = sf.code.split("\n")
        for lineno, line in enumerate(code_lines, start=1):
            for pattern, why in BANNED:
                if pattern.search(line) and not sf.allows(CHECK, lineno):
                    findings.append(Finding(
                        CHECK, sf.rel, lineno,
                        f"{pattern.search(line).group(0)}: {why}"))
            if PTR_KEYED_RE.search(line) and not sf.allows(CHECK, lineno):
                findings.append(Finding(
                    CHECK, sf.rel, lineno,
                    "pointer-keyed ordered container: iteration order is "
                    "the address order of this run; key by a stable id "
                    "instead"))
        findings.extend(_unordered_iteration(sf))
    return findings


def _unordered_iteration(sf: SourceFile) -> list[Finding]:
    """Range-for over an unordered container inside an order-sensitive
    function (named like a codec/fingerprint, or whose loop body feeds
    wire primitives / hash combination)."""
    findings: list[Finding] = []
    # Unordered names declared anywhere in the file (members + locals).
    unordered_names = {m.group(2)
                       for m in UNORDERED_DECL_RE.finditer(sf.code)}
    if not unordered_names:
        return findings
    classes = parse_classes(sf)
    for fn in parse_functions(sf, classes):
        body = sf.code[fn.body_start:fn.body_end]
        for fm in RANGE_FOR_RE.finditer(body):
            target = fm.group(1)
            leaf = re.sub(r"\[[^\]]*\]", "",
                          target.split("->")[-1].split(".")[-1])
            if leaf not in unordered_names:
                continue
            loop_line = sf.line_of(fn.body_start + fm.start())
            name_sensitive = bool(ORDER_SENSITIVE_FN_RE.search(fn.name))
            # The loop body: from the `{` after the for(...) to its match.
            open_idx = body.find("{", fm.end())
            loop_body = ""
            if open_idx >= 0:
                depth = 0
                for i in range(open_idx, len(body)):
                    if body[i] == "{":
                        depth += 1
                    elif body[i] == "}":
                        depth -= 1
                        if depth == 0:
                            loop_body = body[open_idx:i]
                            break
            body_sensitive = bool(ORDER_SENSITIVE_BODY_RE.search(loop_body))
            if not (name_sensitive or body_sensitive):
                continue
            if sf.allows(CHECK, loop_line):
                continue
            findings.append(Finding(
                CHECK, sf.rel, loop_line,
                f"iteration over unordered container '{leaf}' feeds "
                f"{'wire/hash output' if body_sensitive else 'the order-sensitive function ' + fn.name}"
                "; hash-table order differs between runs — iterate a "
                "sorted copy or an ordered container"))
    return findings
