"""Pass 4: GUARDED_BY coverage.

Any class that owns a muppet::Mutex/SharedMutex has opted into the
concurrency contract; a member that is *mutated after construction* is
expected to be either

  * annotated MUPPET_GUARDED_BY / MUPPET_PT_GUARDED_BY (so the Clang
    thread-safety job proves every access point), or
  * std::atomic (lock-free by construction), or
  * const / constexpr / a reference (immutable), or
  * another synchronization object (Mutex, SharedMutex, CondVar), or
  * explicitly justified with `// muppet-lint: allow(guarded): why`.

"Mutated after construction" means a write site — assignment (plain,
compound, or through operator[]), ++/--, or a mutating container call
(push_back, clear, erase, ...) — in a method other than the lifecycle
set {constructor, destructor, Start, Stop}. Members only ever written
during single-threaded setup/teardown are not flagged: nothing races
on them. Writes inside lambdas are never lifecycle-exempt even when
the lambda is spawned from Start — that code runs on worker threads.
"""

from __future__ import annotations

import re

from cpp_model import (ClassInfo, Finding, FunctionInfo, MemberField,
                       SourceFile, extract_lambdas, parse_classes,
                       parse_functions)

CHECK = "guarded"

SYNC_TYPES = ("Mutex", "SharedMutex", "CondVar")
SCOPE_DIRS = ("src/",)
EXEMPT_FILES = ("src/common/sync.h", "src/common/sync.cc")

LIFECYCLE_NAMES = ("Start", "Stop")

# Types that are internally synchronized or value-constant by idiom.
# Counter/Gauge/Histogram (common/metrics.h) are std::atomic inside and
# wait-free by contract; pointers to them only ever see Add/Record.
SELF_SYNCED_RE = re.compile(
    r"^std::atomic\b|\batomic<|^LockLevel$")
SELF_SYNCED_TYPES = ("Counter", "Gauge", "Histogram")

# Method names whose invocation on a member mutates it.
MUTATORS = (
    "push_back", "pop_back", "push_front", "pop_front", "emplace",
    "emplace_back", "emplace_front", "insert", "erase", "clear",
    "assign", "resize", "reserve", "swap", "merge", "extract",
    "append", "reset", "release", "store", "exchange", "Add", "Set",
)


def _in_scope(sf: SourceFile) -> bool:
    return (any(sf.rel.startswith(d) for d in SCOPE_DIRS)
            and sf.rel not in EXEMPT_FILES)


def _write_res(name: str) -> list[re.Pattern]:
    """Regexes matching a write to member `name` inside a body.

    The lookbehind rejects `other->name = ...` / `other.name = ...`
    (a write to some other object's member of the same name); `this->`
    qualification is still accepted.
    """
    ref = r"(?<![\w.>])(?:this\s*->\s*)?\b" + re.escape(name)
    return [
        # name = / name[i] = / name += ... (not ==, <=, >=, !=)
        re.compile(ref + r"\s*(?:\[[^\]]*\]\s*)?"
                   r"(?:(?:[+\-*/%&|^]|<<|>>)=|(?<![=!<>])=(?!=))"),
        # ++name / name++ / --name / name--
        re.compile(r"(?:\+\+|--)\s*" + ref + r"\b"),
        re.compile(ref + r"\s*(?:\+\+|--)"),
        # name.push_back(...) and friends
        re.compile(ref + r"\s*(?:\.|->)\s*(?:" +
                   "|".join(MUTATORS) + r")\s*\("),
    ]


def run(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []

    # Pass A: classes owning a mutex, with their candidate fields.
    owners: dict[str, tuple[ClassInfo, list[MemberField]]] = {}
    for sf in files:
        if not _in_scope(sf):
            continue
        for ci in parse_classes(sf):
            has_mutex = any(
                _base_type(f.type_text) in ("Mutex", "SharedMutex")
                or _is_derived_mutex(ci, f) for f in ci.fields)
            if not has_mutex:
                continue
            cands: list[MemberField] = []
            for fld in ci.fields:
                if fld.is_static or fld.is_constexpr or fld.is_const:
                    continue
                base = _base_type(fld.type_text)
                if base in SYNC_TYPES or _is_derived_mutex(ci, fld):
                    continue
                if SELF_SYNCED_RE.search(fld.type_text):
                    continue
                if base in SELF_SYNCED_TYPES:
                    continue
                if fld.type_text.endswith("&"):
                    continue
                if fld.annotation("MUPPET_GUARDED_BY",
                                  "MUPPET_PT_GUARDED_BY") is not None:
                    continue
                if sf.allows(CHECK, fld.line):
                    continue
                cands.append(fld)
            if cands and ci.name not in owners:
                owners[ci.name] = (ci, cands)
    if not owners:
        return findings

    # Pass B: every method body of an owner class (including out-of-line
    # definitions in .cc files), with lambdas split out as non-lifecycle
    # pseudo-methods -- their bodies run on worker threads.
    bodies: dict[str, list[tuple[FunctionInfo, str]]] = {}
    for sf in files:
        if not _in_scope(sf):
            continue
        classes = parse_classes(sf)
        counter = [0]
        for fn in parse_functions(sf, classes):
            if fn.cls not in owners:
                continue
            blanked, lambdas = extract_lambdas(sf, fn, counter)
            bodies.setdefault(fn.cls, []).append((fn, blanked))
            for lam in lambdas:
                bodies.setdefault(fn.cls, []).append(
                    (lam, sf.code[lam.body_start:lam.body_end]))

    for cls in sorted(owners):
        ci, cands = owners[cls]
        methods = bodies.get(cls, [])
        for fld in cands:
            res = _write_res(fld.name)
            site: tuple[FunctionInfo, int] | None = None
            for fn, body in methods:
                lifecycle = (not fn.is_lambda
                             and (fn.name == cls or fn.name == "~" + cls
                                  or fn.name in LIFECYCLE_NAMES))
                if lifecycle:
                    continue
                for wre in res:
                    m = wre.search(body)
                    if m:
                        site = (fn,
                                fn.file.line_of(fn.body_start + m.start()))
                        break
                if site:
                    break
            if site is None:
                continue
            fn, wline = site
            findings.append(Finding(
                CHECK, ci.file.rel, fld.line,
                f"{cls}::{fld.name} ({fld.type_text}) is written by "
                f"{fn.key} ({fn.file.rel}:{wline}) outside "
                f"construction but has no MUPPET_GUARDED_BY; annotate "
                f"it, make it atomic, or justify with "
                f"`// muppet-lint: allow(guarded): why`"))
    return findings


def _base_type(type_text: str) -> str:
    t = type_text.split("::")[-1].strip()
    return re.sub(r"[<>*&\s\[].*$", "", t)


def _is_derived_mutex(ci, fld) -> bool:
    """Members typed as a nested struct deriving Mutex (stripe mutexes)."""
    base = _base_type(fld.type_text)
    # Search the file for `struct <base> : Mutex`.
    return bool(re.search(
        r"\b(class|struct)\s+" + re.escape(base) +
        r"\s*(?:final\s*)?:\s*(?:public\s+)?(?:muppet::)?(Mutex|SharedMutex)\b",
        ci.file.code))
