"""Pass 1: static lock-graph verification.

Builds the whole-program lock acquisition graph:

  * every `LockLevel` enum constant (from common/sync.h, or from any
    scanned file declaring `enum class LockLevel`) becomes a node;
  * every Mutex/SharedMutex declaration is resolved to its level — via
    the brace initializer (`Mutex mu_{LockLevel::kQueue}`), a local
    `static constexpr LockLevel kFooLockLevel = ...` constant, or a
    derived mutex class whose constructor pins the level;
  * every RAII acquisition site (MutexLock / ReaderMutexLock /
    WriterMutexLock) is located inside its function body, and lexical
    nesting of guards yields held->acquired edges;
  * calls made while holding a lock propagate the callee's transitive
    acquisition set (callees resolved through receiver typing: class
    members, local declarations, same-class methods, free functions);
  * MUPPET_REQUIRES(mu) on the header declaration seeds the entry-held
    set of the matching definition; MUPPET_EXCLUDES(mu) is verified at
    call sites.

Violations: an acquisition edge whose destination level is <= the
source level (the runtime checker demands strictly increasing levels),
and any call into an EXCLUDES(mu) function while mu's level is held.
Edges touching kUnordered are exempt, matching the runtime checker.

The extracted graph is emitted as DOT (--dot) so CI can archive the
artifact; inverted edges are drawn red.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from cpp_model import (ANNOT_RE, ClassInfo, Finding, FunctionInfo,
                       SourceFile, extract_lambdas, parse_classes,
                       parse_functions, split_top_level)

CHECK = "lock-graph"

MUTEX_BASE_TYPES = ("Mutex", "SharedMutex")
GUARD_TYPES = {
    "MutexLock": "exclusive",
    "WriterMutexLock": "exclusive",
    "ReaderMutexLock": "shared",
}

ENUM_RE = re.compile(r"enum\s+class\s+LockLevel\s*(?::\s*\w+\s*)?\{([^}]*)\}")
ENUM_ENTRY_RE = re.compile(r"(k\w+)\s*=\s*(\d+)")
LEVEL_CONST_RE = re.compile(
    r"\bconstexpr\s+LockLevel\s+(k\w+)\s*=\s*LockLevel::(k\w+)")
GLOBAL_MUTEX_RE = re.compile(
    r"\b(?:muppet::)?(Mutex|SharedMutex)\s+([a-zA-Z_]\w*)\s*\{([^}]*)\}")
ELEMENT_OF_RE = re.compile(r"(?:std::)?(?:array|vector)\s*<\s*([\w:]+)")
GUARD_DECL_RE = re.compile(
    r"\b(MutexLock|ReaderMutexLock|WriterMutexLock)\s+\w+\s*"
    r"([\(\{])\s*([^;]*?)\s*[\)\}]\s*;")
CALL_RE = re.compile(r"([\w\.\]\)]+(?:->|\.))?\b([A-Za-z_]\w*)\s*\(")
LOCAL_DECL_RE = re.compile(
    r"\b([A-Z]\w*(?:::\w+)*)\s*[*&]?\s+([a-z_]\w*)\s*[=;({]")

NOT_CALLEES = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "assert", "static_cast", "dynamic_cast",
    "reinterpret_cast", "const_cast", "defined", "alignof", "decltype",
    "emplace_back", "push_back",
}


@dataclass
class MutexDecl:
    cls: str             # owning class ("" for globals/locals)
    member: str
    level: str           # enum constant name, e.g. "kQueue"
    file: SourceFile
    line: int
    shared: bool


@dataclass
class Acquisition:
    level: str
    offset: int          # in file code
    scope_end: int       # offset where the guard is destroyed
    line: int
    mutex_expr: str


@dataclass
class FuncModel:
    fn: FunctionInfo
    body_text: str       # with lambdas blanked
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[tuple[int, str, str]] = field(default_factory=list)
    # (offset, receiver_expr or "", callee_name)
    entry_held: list[str] = field(default_factory=list)   # levels
    excludes: list[str] = field(default_factory=list)     # levels
    local_types: dict[str, str] = field(default_factory=dict)


@dataclass
class Edge:
    src: str
    dst: str
    count: int
    example: str         # "path:line (FuncKey)"
    inverted: bool


class LockGraphPass:
    def __init__(self, files: list[SourceFile]) -> None:
        self.files = files
        self.findings: list[Finding] = []
        self.levels: dict[str, int] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        self.class_list: list[ClassInfo] = []
        self.mutexes: list[MutexDecl] = []
        self.mutex_by_class: dict[tuple[str, str], MutexDecl] = {}
        self.mutex_by_name: dict[str, list[MutexDecl]] = {}
        self.derived_mutex_levels: dict[str, str] = {}
        self.funcs: dict[str, list[FuncModel]] = {}
        self.edges: dict[tuple[str, str], Edge] = {}
        self.unresolved: list[str] = []

    # -- model building ----------------------------------------------------

    def run(self) -> list[Finding]:
        self._collect_levels()
        if not self.levels:
            self.findings.append(Finding(
                CHECK, "(global)", 1,
                "no `enum class LockLevel` found in scanned files; "
                "cannot build the lock graph"))
            return self.findings
        self._collect_classes()
        self._collect_mutexes()
        self._collect_functions()
        self._resolve_calls_and_edges()
        return self.findings

    def _collect_levels(self) -> None:
        for sf in self.files:
            m = ENUM_RE.search(sf.code)
            if m:
                for em in ENUM_ENTRY_RE.finditer(m.group(1)):
                    self.levels[em.group(1)] = int(em.group(2))

    def _collect_classes(self) -> None:
        for sf in self.files:
            for ci in parse_classes(sf):
                self.classes.setdefault(ci.name, []).append(ci)
                self.class_list.append(ci)

    def _level_consts(self, sf: SourceFile) -> dict[str, str]:
        """Level-constant names declared in one file, unique names only
        (two classes in one file may both declare kLockLevel)."""
        found: dict[str, set[str]] = {}
        for m in LEVEL_CONST_RE.finditer(sf.code):
            found.setdefault(m.group(1), set()).add(m.group(2))
        return {k: next(iter(v)) for k, v in found.items() if len(v) == 1}

    def _global_level_consts(self) -> dict[str, str]:
        if not hasattr(self, "_global_consts"):
            found: dict[str, set[str]] = {}
            for sf in self.files:
                for m in LEVEL_CONST_RE.finditer(sf.code):
                    found.setdefault(m.group(1), set()).add(m.group(2))
            self._global_consts = {k: next(iter(v))
                                   for k, v in found.items() if len(v) == 1}
        return self._global_consts

    def _collect_mutexes(self) -> None:
        # Derived mutex classes: `struct X : Mutex { X() : Mutex(EXPR) .. }`
        for ci in self.class_list:
            if not any(b in MUTEX_BASE_TYPES for b in ci.bases):
                continue
            body = ci.file.code[ci.body_start:ci.body_end]
            m = re.search(r":\s*(?:Mutex|SharedMutex)\s*\(([^)]*)\)", body)
            if m:
                lvl = self._resolve_level_expr(m.group(1), ci.file, ci.name)
                if lvl:
                    self.derived_mutex_levels[ci.name] = lvl

        mutex_types = set(MUTEX_BASE_TYPES) | set(self.derived_mutex_levels)
        for ci in self.class_list:
            consts = self._level_consts(ci.file)
            for f in ci.fields:
                base = f.type_text.split("::")[-1].strip()
                base = re.sub(r"[<>*&\s\[].*$", "", base)
                elem = None
                em = ELEMENT_OF_RE.search(f.type_text)
                if em:
                    elem = em.group(1).split("::")[-1]
                if base in mutex_types:
                    mutex_type = base
                elif elem in mutex_types:
                    mutex_type = elem  # array/vector of (derived) mutexes
                else:
                    continue
                if mutex_type in self.derived_mutex_levels:
                    lvl = self.derived_mutex_levels[mutex_type]
                else:
                    lvl = self._resolve_level_expr(
                        f.init_text, ci.file, ci.name, consts)
                if lvl is None:
                    lvl = "kUnordered" if not f.init_text else None
                if lvl is None:
                    self.unresolved.append(
                        f"{ci.file.rel}:{f.line}: mutex {ci.name}::{f.name} "
                        f"has unresolvable level init {f.init_text!r}")
                    continue
                decl = MutexDecl(
                    cls=ci.name, member=f.name, level=lvl, file=ci.file,
                    line=f.line, shared="Shared" in f.type_text)
                self.mutexes.append(decl)
                self.mutex_by_class[(ci.name, f.name)] = decl
                self.mutex_by_name.setdefault(f.name, []).append(decl)

        # File-scope mutexes (e.g. `Mutex g_sink_mutex{LockLevel::kLogging}`
        # in logging.cc) live outside any class body.
        class_spans = {sf.rel: [(c.start, c.body_end)
                                for c in self.class_list if c.file is sf]
                       for sf in self.files}
        for sf in self.files:
            for m in GLOBAL_MUTEX_RE.finditer(sf.code):
                if any(s <= m.start() < e for s, e in class_spans[sf.rel]):
                    continue
                lvl = self._resolve_level_expr(m.group(3), sf, "")
                if lvl is None:
                    continue
                decl = MutexDecl(
                    cls="", member=m.group(2), level=lvl, file=sf,
                    line=sf.line_of(m.start()),
                    shared=m.group(1) == "SharedMutex")
                self.mutexes.append(decl)
                self.mutex_by_name.setdefault(m.group(2), []).append(decl)

    def _resolve_level_expr(self, expr: str, sf: SourceFile, cls: str,
                            consts: dict[str, str] | None = None) -> str | None:
        expr = expr.strip()
        if not expr:
            return None
        m = re.search(r"LockLevel::(k\w+)", expr)
        if m:
            return m.group(1)
        m = re.match(r"(k\w+)$", expr)
        if m:
            name = m.group(1)
            # Own class first: many classes declare their own kLockLevel.
            for other in self.class_list:
                if other.name == cls:
                    fld = other.field_named(name)
                    if fld is not None:
                        lm = re.search(r"LockLevel::(k\w+)", fld.init_text)
                        if lm:
                            return lm.group(1)
            if consts is None:
                consts = self._level_consts(sf)
            if name in consts:
                return consts[name]
            # A constant declared in another class of the same file
            # (e.g. nested struct referencing the outer constant).
            for other in self.class_list:
                if other.file is sf:
                    fld = other.field_named(name)
                    if fld is not None:
                        lm = re.search(r"LockLevel::(k\w+)", fld.init_text)
                        if lm:
                            return lm.group(1)
            # Cross-file (a .cc naming a constant pinned in its header),
            # accepted only when the name is globally unambiguous.
            return self._global_level_consts().get(name)
        return None

    def _collect_functions(self) -> None:
        lambda_counter = [0]
        for sf in self.files:
            classes = [c for c in self.class_list if c.file is sf]
            fns = parse_functions(sf, classes)
            all_fns: list[tuple[FunctionInfo, str]] = []
            for fn in fns:
                blanked, lams = extract_lambdas(sf, fn, lambda_counter)
                all_fns.append((fn, blanked))
                for lam in lams:
                    all_fns.append(
                        (lam, sf.code[lam.body_start:lam.body_end]))
            for fn, body_text in all_fns:
                fm = self._model_function(fn, body_text)
                self.funcs.setdefault(fm_key(fn), []).append(fm)

    def _model_function(self, fn: FunctionInfo, body_text: str) -> FuncModel:
        sf = fn.file
        fm = FuncModel(fn=fn, body_text=body_text)
        # Entry-held levels from MUPPET_REQUIRES on the definition header
        # or the matching in-class declaration.
        for args in self._annotation_args(fn, ("MUPPET_REQUIRES",
                                               "MUPPET_REQUIRES_SHARED")):
            lvl = self._mutex_expr_level(args, fn)
            if lvl:
                fm.entry_held.append(lvl)
        for args in self._annotation_args(fn, ("MUPPET_EXCLUDES",)):
            lvl = self._mutex_expr_level(args, fn)
            if lvl:
                fm.excludes.append(lvl)

        for m in LOCAL_DECL_RE.finditer(body_text):
            fm.local_types.setdefault(m.group(2), m.group(1).split("::")[-1])

        base = fn.body_start
        for gm in GUARD_DECL_RE.finditer(body_text):
            arg = split_top_level(gm.group(3))
            expr = arg[0] if arg else ""
            lvl = self._mutex_expr_level(expr, fn, fm)
            off = base + gm.start()
            if lvl is None:
                self.unresolved.append(
                    f"{sf.rel}:{sf.line_of(off)}: cannot resolve level of "
                    f"guard expression {expr!r} in {fm_key(fn)}")
                continue
            fm.acquisitions.append(Acquisition(
                level=lvl, offset=off,
                scope_end=base + _scope_end(body_text, gm.start()),
                line=sf.line_of(off), mutex_expr=expr))
        for cm in CALL_RE.finditer(body_text):
            callee = cm.group(2)
            if callee in NOT_CALLEES or callee in GUARD_TYPES:
                continue
            recv = (cm.group(1) or "").rstrip(".->")
            fm.calls.append((base + cm.start(), recv, callee))
        return fm

    def _annotation_args(self, fn: FunctionInfo,
                         names: tuple[str, ...]) -> list[str]:
        out = []
        for macro, args in (
                (m.group(1), m.group(2))
                for m in ANNOT_RE.finditer(fn.header_text)):
            if macro in names:
                out.extend(a.strip() for a in split_top_level(args))
        if fn.cls and not fn.is_lambda:
            # Find the in-class declaration carrying the annotation.
            for ci in self.classes.get(fn.cls, ()):
                body = ci.file.code[ci.body_start:ci.body_end]
                for dm in re.finditer(
                        r"\b" + re.escape(fn.name) + r"\s*\(", body):
                    tail = body[dm.end():dm.end() + 400]
                    stop = tail.find(";")
                    brace = tail.find("{")
                    if stop < 0 or (0 <= brace < stop):
                        continue
                    for am in ANNOT_RE.finditer(tail[:stop]):
                        if am.group(1) in names:
                            out.extend(a.strip() for a in
                                       split_top_level(am.group(2)))
        return out

    # -- resolution --------------------------------------------------------

    def _mutex_expr_level(self, expr: str, fn: FunctionInfo,
                          fm: FuncModel | None = None) -> str | None:
        """Resolve a guard argument like `mutex_`, `this->mu_`,
        `stripe.mutex`, `stripes_[i]`, `node->cf_mutex_` to a level."""
        expr = expr.strip()
        if not expr:
            return None
        expr = re.sub(r"^\*", "", expr)
        expr = re.sub(r"^this\s*->\s*", "", expr)
        expr = re.sub(r"\[[^\]]*\]", "", expr)  # drop indexing
        parts = re.split(r"->|\.", expr)
        leaf = parts[-1].strip()
        recv = parts[-2].strip() if len(parts) > 1 else ""
        leaf = re.sub(r"\(\)$", "", leaf)

        # Receiver typed via locals or members of the enclosing class.
        recv_type = None
        if recv:
            recv = re.sub(r"\(\)$", "", recv)
            if fm is not None and recv in fm.local_types:
                recv_type = fm.local_types[recv]
            if recv_type is None and fn.cls:
                for ci in self.classes.get(fn.cls, ()):
                    fld = ci.field_named(recv)
                    if fld is not None:
                        recv_type = self._field_value_type(fld.type_text)
                        break
            if recv_type is None and fm is not None:
                recv_type = self._infer_local_type(fm, fn, recv)
        if recv_type and (recv_type, leaf) in self.mutex_by_class:
            return self.mutex_by_class[(recv_type, leaf)].level
        if not recv and fn.cls and (fn.cls, leaf) in self.mutex_by_class:
            return self.mutex_by_class[(fn.cls, leaf)].level
        # Nested-struct members (e.g. Muppet2 Machine) fall back to the
        # unique-global-name table.
        decls = self.mutex_by_name.get(leaf, [])
        if len({d.level for d in decls}) == 1:
            return decls[0].level
        # A local guard on a locally declared mutex (tests, fixtures).
        if fm is not None and leaf in fm.local_types:
            t = fm.local_types[leaf]
            if t in self.derived_mutex_levels:
                return self.derived_mutex_levels[t]
            if t in MUTEX_BASE_TYPES:
                m = re.search(re.escape(leaf) + r"\s*[\{\(]\s*"
                              r"(?:LockLevel::)?(k\w+)", fm.body_text)
                if m and m.group(1) in self.levels:
                    return m.group(1)
                return "kUnordered"
        return None

    def _field_value_type(self, type_text: str) -> str:
        """Base type of a member, looking through array/vector/unique_ptr
        element types (`std::array<Stripe, N>` -> Stripe)."""
        em = re.search(r"(?:std::)?(?:array|vector|unique_ptr|shared_ptr)"
                       r"\s*<\s*([\w:]+)", type_text)
        t = em.group(1) if em else type_text
        t = t.split("::")[-1]
        return re.sub(r"[<>*&\s\[].*$", "", t)

    def _infer_local_type(self, fm: FuncModel, fn: FunctionInfo,
                          name: str) -> str | None:
        """Type a local declared as `auto& x = <member-expr>;` by typing
        the right-hand side through the enclosing class's members."""
        # Explicitly typed reference declarations, including range-for:
        # `OverrideState& state = *override_state_;`
        # `for (const Stripe& stripe : stripes_)`
        dm = re.search(r"\b(?:const\s+)?([A-Z][\w:]*)\s*&\s*" +
                       re.escape(name) + r"\s*[=:]", fm.body_text)
        if dm:
            return dm.group(1).split("::")[-1]
        m = re.search(r"\b" + re.escape(name) + r"\s*=\s*([^;]{1,160});",
                      fm.body_text)
        if not m:
            return None
        rhs = m.group(1).strip()
        rhs = rhs.lstrip("*&")          # `auto& s = *ptr_member_;`
        rhs = re.sub(r"\[[^\]]*\]", "", rhs)
        rhs = re.sub(r"\(\)$", "", rhs)
        leaf = rhs.split("->")[-1].split(".")[-1].strip()
        if not re.fullmatch(r"[A-Za-z_]\w*", leaf):
            return None
        if fn.cls:
            for ci in self.classes.get(fn.cls, ()):
                fld = ci.field_named(leaf)
                if fld is not None:
                    return self._field_value_type(fld.type_text)
        if leaf in fm.local_types:
            return fm.local_types[leaf]
        return None

    def _transitive_acquires(self) -> dict[str, set[str]]:
        """funcKey -> set of levels the function may acquire, transitively."""
        direct: dict[str, set[str]] = {}
        callees: dict[str, set[str]] = {}
        for key, models in self.funcs.items():
            acq = set()
            outs = set()
            for fm in models:
                acq.update(a.level for a in fm.acquisitions)
                for _, recv, callee in fm.calls:
                    for ck in self._candidate_keys(fm, recv, callee):
                        outs.add(ck)
            direct[key] = acq
            callees[key] = outs
        closure = {k: set(v) for k, v in direct.items()}
        changed = True
        while changed:
            changed = False
            for key, outs in callees.items():
                for ck in outs:
                    add = closure.get(ck)
                    if add and not add <= closure[key]:
                        closure[key] |= add
                        changed = True
        return closure

    def _candidate_keys(self, fm: FuncModel, recv: str,
                        callee: str) -> list[str]:
        """Resolve a call site to function keys — only when unambiguous.

        Unresolvable receivers are skipped rather than unioned across
        every class declaring a method of that name: a wrong union would
        manufacture edges that exist on no real path.
        """
        fn = fm.fn
        if recv:
            recv_base = re.sub(r"\[[^\]]*\]", "", recv)
            recv_base = re.sub(r"^this\s*->\s*", "", recv_base)
            recv_base = recv_base.split("->")[-1].split(".")[-1]
            recv_type = fm.local_types.get(recv_base)
            if recv_type is None and fn.cls:
                for ci in self.classes.get(fn.cls, ()):
                    fld = ci.field_named(recv_base)
                    if fld is not None:
                        recv_type = re.sub(r"[<>*&\s].*$", "",
                                           fld.type_text.split("::")[-1])
                        break
            if recv_type and f"{recv_type}::{callee}" in self.funcs:
                return [f"{recv_type}::{callee}"]
            if recv_type:
                return []
            # Unknown receiver: resolve only if exactly one class defines
            # the method.
            keys = [k for k in self.funcs
                    if k.endswith(f"::{callee}") and "lambda#" not in k]
            return keys if len(keys) == 1 else []
        if fn.cls and f"{fn.cls}::{callee}" in self.funcs:
            return [f"{fn.cls}::{callee}"]
        if callee in self.funcs:
            return [callee]
        return []

    def _resolve_calls_and_edges(self) -> None:
        closure = self._transitive_acquires()
        excludes_of: dict[str, set[str]] = {}
        for key, models in self.funcs.items():
            exc = set()
            for fm in models:
                exc.update(fm.excludes)
            if exc:
                excludes_of[key] = exc

        for models in self.funcs.values():
            for fm in models:
                self._edges_for(fm, closure, excludes_of)

        for key, edge in sorted(self.edges.items()):
            if edge.inverted:
                sf, line = _example_site(edge)
                self.findings.append(Finding(
                    CHECK, sf, line,
                    f"lock-order inversion: acquiring {edge.dst} "
                    f"(level {self.levels.get(edge.dst, '?')}) while "
                    f"holding {edge.src} "
                    f"(level {self.levels.get(edge.src, '?')}) — the "
                    f"hierarchy requires strictly increasing levels "
                    f"[at {edge.example}]"))

    def _edges_for(self, fm: FuncModel, closure: dict[str, set[str]],
                   excludes_of: dict[str, set[str]]) -> None:
        sf = fm.fn.file
        regions: list[tuple[str, int, int, int]] = [
            (lvl, fm.fn.body_start, fm.fn.body_end, fm.fn.line)
            for lvl in fm.entry_held]
        regions += [(a.level, a.offset, a.scope_end, a.line)
                    for a in fm.acquisitions]

        for held, start, end, _ in regions:
            for a in fm.acquisitions:
                if start < a.offset < end:
                    self._add_edge(held, a.level, sf, a.line, fm)
            for off, recv, callee in fm.calls:
                if not start < off < end:
                    continue
                for ck in self._candidate_keys(fm, recv, callee):
                    for lvl in closure.get(ck, ()):
                        self._add_edge(held, lvl, sf, sf.line_of(off), fm,
                                       via=ck)
                    for lvl in excludes_of.get(ck, ()):
                        if lvl == held and not sf.allows(
                                CHECK, sf.line_of(off)):
                            self.findings.append(Finding(
                                CHECK, sf.rel, sf.line_of(off),
                                f"call to {ck} which EXCLUDES level {lvl} "
                                f"while {lvl} is held in {fm_key(fm.fn)} "
                                f"(self-deadlock)"))

    def _add_edge(self, src: str, dst: str, sf: SourceFile, line: int,
                  fm: FuncModel, via: str = "") -> None:
        if src == "kUnordered" or dst == "kUnordered":
            return
        if src == dst and via:
            # Transitive same-level edges through a call are usually a
            # re-lock the callee takes after the caller released; the
            # direct-nesting case below still reports them.
            return
        inverted = self.levels.get(dst, 0) <= self.levels.get(src, 0)
        if inverted and sf.allows(CHECK, line):
            inverted = False
        key = (src, dst)
        where = f"{sf.rel}:{line}" + (f" via {via}" if via else "")
        prev = self.edges.get(key)
        if prev is None:
            self.edges[key] = Edge(src, dst, 1, f"{where} ({fm_key(fm.fn)})",
                                   inverted)
        else:
            prev.count += 1
            prev.inverted = prev.inverted or inverted

    # -- reporting ---------------------------------------------------------

    def to_dot(self) -> str:
        lines = ["digraph muppet_lock_graph {",
                 '  rankdir=LR;',
                 '  node [shape=box, fontname="Helvetica"];']
        for name, value in sorted(self.levels.items(), key=lambda kv: kv[1]):
            if name == "kUnordered":
                continue
            lines.append(f'  "{name}" [label="{name}\\n{value}"];')
        for (src, dst), e in sorted(self.edges.items()):
            attrs = [f'label="{e.count}"']
            if e.inverted:
                attrs.append('color=red')
                attrs.append('penwidth=2')
            lines.append(f'  "{src}" -> "{dst}" [{", ".join(attrs)}];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def fm_key(fn: FunctionInfo) -> str:
    return f"{fn.cls}::{fn.name}" if fn.cls else fn.name


def _scope_end(body: str, guard_start: int) -> int:
    """Offset (within body) where the scope enclosing guard_start closes."""
    depth = 0
    for i in range(guard_start, len(body)):
        ch = body[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return i
    return len(body)


def _example_site(edge: Edge) -> tuple[str, int]:
    m = re.match(r"([^\s:]+):(\d+)", edge.example)
    if m:
        return m.group(1), int(m.group(2))
    return edge.example, 1


def run(files: list[SourceFile], dot_path: str | None = None
        ) -> tuple[list[Finding], "LockGraphPass"]:
    p = LockGraphPass(files)
    findings = p.run()
    if dot_path:
        with open(dot_path, "w", encoding="utf-8") as f:
            f.write(p.to_dot())
    return findings, p
