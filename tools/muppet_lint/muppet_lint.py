#!/usr/bin/env python3
"""muppet-lint: project-semantic static analysis for the muppet repo.

Four passes over src/ (see the module docstrings for details):

  lock-graph    whole-program lock acquisition graph vs. the documented
                hierarchy in common/sync.h; emits a DOT artifact
  wire          encode/decode completeness for every wire struct
  determinism   bans nondeterminism sources in engine/core/net/testing
  guarded       GUARDED_BY coverage for mutex-owning classes

Usage:
  tools/muppet_lint/muppet_lint.py [REPO_ROOT]
      [--checks lock-graph,wire,determinism,guarded]
      [--dot PATH]           write the lock graph as DOT
      [--subdirs src]        comma list of roots to scan (default: src)
      [--verbose]            print unresolved-expression diagnostics

Suppressions: `// muppet-lint: allow(<check>): <justification>` on the
offending line, or alone on the line above. The justification is
mandatory; a bare allow() is itself reported.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import clang_frontend  # noqa: E402
import determinism  # noqa: E402
import guarded_by  # noqa: E402
import lock_graph  # noqa: E402
import wire_codec  # noqa: E402
from cpp_model import Finding, parse_classes, walk_sources  # noqa: E402

ALL_CHECKS = ("lock-graph", "wire", "determinism", "guarded")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="muppet-lint", add_help=True)
    ap.add_argument("root", nargs="?", default=os.getcwd())
    ap.add_argument("--checks", default=",".join(ALL_CHECKS))
    ap.add_argument("--dot", default=None)
    ap.add_argument("--subdirs", default="src")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv[1:])

    checks = tuple(c.strip() for c in args.checks.split(",") if c.strip())
    unknown = set(checks) - set(ALL_CHECKS)
    if unknown:
        print(f"muppet-lint: unknown check(s) {sorted(unknown)}; "
              f"known: {list(ALL_CHECKS)}", file=sys.stderr)
        return 2
    subdirs = tuple(s.strip().rstrip("/") for s in args.subdirs.split(",")
                    if s.strip())
    if not os.path.isdir(args.root):
        print(f"muppet-lint: no such directory {args.root}", file=sys.stderr)
        return 2

    files = walk_sources(args.root, subdirs=subdirs)
    if not files:
        print(f"muppet-lint: no .h/.cc files under "
              f"{[os.path.join(args.root, s) for s in subdirs]}",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []

    # Malformed suppressions are findings regardless of selected checks.
    for sf in files:
        for line, msg in sf.suppressions.malformed:
            findings.append(Finding("suppression", sf.rel, line, msg))

    graph = None
    if "lock-graph" in checks:
        got, graph = lock_graph.run(files, dot_path=args.dot)
        findings.extend(got)
        if args.verbose and graph is not None:
            for note in graph.unresolved:
                print(f"muppet-lint: note: {note}", file=sys.stderr)
    if "wire" in checks:
        findings.extend(wire_codec.run(files))
    if "determinism" in checks:
        findings.extend(determinism.run(files))
    if "guarded" in checks:
        findings.extend(guarded_by.run(files))

    cindex = clang_frontend.load()
    if cindex is not None:
        model = {}
        for sf in files:
            for ci in parse_classes(sf):
                model.setdefault(ci.name, set()).update(
                    f.name for f in ci.fields)
        for w in clang_frontend.cross_validate(
                cindex, args.root, files, model):
            print(f"muppet-lint: warning: {w}", file=sys.stderr)

    for f in sorted(findings, key=lambda f: (f.path, f.line, f.check)):
        print(f)

    n_edges = len(graph.edges) if graph is not None else 0
    n_levels = len(graph.levels) - (1 if graph and "kUnordered"
                                    in graph.levels else 0) \
        if graph is not None else 0
    summary = (f"muppet-lint: {len(files)} files, "
               f"checks=[{','.join(checks)}]")
    if graph is not None:
        summary += f", lock graph: {n_levels} levels / {n_edges} edges"
    if findings:
        print(f"{summary} -- {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"{summary} -- OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
