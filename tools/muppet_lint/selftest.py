#!/usr/bin/env python3
"""Self-tests for muppet-lint against the seeded fixtures in testdata/.

Each fixture is a miniature repo (its own src/ tree). The bad_* cases
seed exactly the violation their pass must catch; `clean` and
`suppressed` must come back with exit 0. The DOT artifact is checked
for node completeness against the fixture's LockLevel enum.

Run directly or via ctest (registered in tools/CMakeLists.txt).
"""

from __future__ import annotations

import contextlib
import io
import os
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import muppet_lint  # noqa: E402

TESTDATA = os.path.join(HERE, "testdata")

_failures: list[str] = []


def _run(fixture: str, extra_args: list[str] | None = None
         ) -> tuple[int, str]:
    root = os.path.join(TESTDATA, fixture)
    argv = ["muppet-lint", root] + (extra_args or [])
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = muppet_lint.main(argv)
    return rc, out.getvalue()


def check(fixture: str, cond: bool, what: str) -> None:
    tag = "ok" if cond else "FAIL"
    print(f"[{tag}] {fixture}: {what}")
    if not cond:
        _failures.append(f"{fixture}: {what}")


def main() -> int:
    rc, out = _run("clean")
    check("clean", rc == 0, f"exit 0 on a clean tree (got {rc})")
    check("clean", out.strip().endswith("OK") or "OK" in out,
          "reports OK")

    rc, out = _run("suppressed")
    check("suppressed", rc == 0,
          f"justified allow() silences the finding (got exit {rc})")

    rc, out = _run("bad_lock")
    check("bad_lock", rc == 1, f"exit 1 on inversion (got {rc})")
    check("bad_lock", "[lock-graph]" in out, "lock-graph finding emitted")
    check("bad_lock", "kMid" in out and "kLow" in out,
          "finding names both levels of the inverted edge")
    check("bad_lock", "TakeLow" in out or "Inverted" in out,
          "interprocedural acquisition attributed to a function")

    with tempfile.TemporaryDirectory() as td:
        dot = os.path.join(td, "g.dot")
        rc, out = _run("bad_lock", ["--dot", dot])
        with open(dot, encoding="utf-8") as f:
            dot_text = f.read()
        for lvl in ("kLow", "kMid", "kHigh"):
            check("bad_lock", f'"{lvl}"' in dot_text,
                  f"DOT artifact contains node {lvl}")
        check("bad_lock", "->" in dot_text, "DOT artifact contains edges")

    rc, out = _run("bad_wire")
    check("bad_wire", rc == 1, f"exit 1 on dropped field (got {rc})")
    check("bad_wire", "field-count mismatch" in out,
          "count-pinning check fires (3 puts vs 2 gets)")
    check("bad_wire", "'c'" in out,
          "dropped field named in the symmetry finding")
    check("bad_wire", "'dedup'" in out,
          "slatelog scope scanned: dropped dedup identity caught")
    check("bad_wire", "EncodeSlateLogRecord" in out,
          "slatelog codec named in its finding")

    rc, out = _run("bad_determinism")
    check("bad_determinism", rc == 1, f"exit 1 on wall clock (got {rc})")
    check("bad_determinism", "[determinism]" in out and "steady_clock" in out,
          "wall-clock read reported")

    rc, out = _run("bad_guarded")
    check("bad_guarded", rc == 1, f"exit 1 on unguarded member (got {rc})")
    check("bad_guarded", "hits_" in out, "unguarded written member flagged")
    check("bad_guarded", "limit_" not in out,
          "ctor-only member not flagged")
    check("bad_guarded", "guarded_" not in out,
          "annotated member not flagged")

    rc, out = _run("bad_suppression")
    check("bad_suppression", rc == 1, f"exit 1 (got {rc})")
    check("bad_suppression", "[suppression]" in out,
          "bare allow() without justification is itself a finding")
    check("bad_suppression", "[determinism]" in out,
          "malformed allow() does not silence the violation")

    if _failures:
        print(f"\nmuppet-lint selftest: {len(_failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("\nmuppet-lint selftest: all fixtures behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
