// Fixture: wall-clock read inside an engine path.
#include <chrono>
#include <cstdint>

namespace muppet {

uint64_t NowMs() {
  auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count());
}

}  // namespace muppet
