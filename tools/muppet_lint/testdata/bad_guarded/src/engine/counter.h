// Fixture: `hits_` is mutated by Tick() (not a lifecycle method) in a
// mutex-owning class, with no MUPPET_GUARDED_BY. `limit_` is written
// only by the constructor and must NOT be flagged; `guarded_` is
// annotated and must not be flagged either.
#ifndef FIXTURE_ENGINE_COUNTER_H_
#define FIXTURE_ENGINE_COUNTER_H_

#include "common/sync.h"

namespace muppet {

class HitCounter {
 public:
  explicit HitCounter(int limit) { limit_ = limit; }

  void Tick() {
    MutexLock lock(mutex_);
    hits_++;
    guarded_++;
  }

 private:
  Mutex mutex_{LockLevel::kLow};
  int hits_ = 0;
  int guarded_ MUPPET_GUARDED_BY(mutex_) = 0;
  int limit_ = 0;
};

}  // namespace muppet

#endif  // FIXTURE_ENGINE_COUNTER_H_
