// Fixture: interprocedural lock-order inversion. Inverted() holds kMid
// and calls TakeLow(), which acquires kLow (20 -> 10: inverted).
#include "common/sync.h"

namespace muppet {

class Inverter {
 public:
  void Inverted() {
    MutexLock a(mid_);
    TakeLow();
  }

  void TakeLow() { MutexLock b(low_); }

 private:
  Mutex low_{LockLevel::kLow};
  Mutex mid_{LockLevel::kMid};
};

}  // namespace muppet
