// Fixture: minimal sync surface mirroring src/common/sync.h.
#ifndef FIXTURE_COMMON_SYNC_H_
#define FIXTURE_COMMON_SYNC_H_

namespace muppet {

enum class LockLevel : int {
  kUnordered = 0,
  kLow = 10,
  kMid = 20,
  kHigh = 30,
};

class Mutex {
 public:
  explicit Mutex(LockLevel level) : level_(level) {}

 private:
  LockLevel level_;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) {}
};

}  // namespace muppet

#endif  // FIXTURE_COMMON_SYNC_H_
