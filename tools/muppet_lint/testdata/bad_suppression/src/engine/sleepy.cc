// Fixture: a suppression without the mandatory justification is itself
// a finding, and it must NOT silence the underlying violation.
#include <chrono>
#include <thread>

namespace muppet {

void Nap() {
  // muppet-lint: allow(determinism)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace muppet
