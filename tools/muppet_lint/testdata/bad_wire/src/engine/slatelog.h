// Fixture: a changelog-record codec whose decoder drops the trailing
// `dedup` identity field — exactly the truncation that would silently
// break exactly-once replay. Both the count check and the field symmetry
// check must fire, proving the slatelog path is inside the wire scope.
#ifndef FIXTURE_ENGINE_SLATELOG_H_
#define FIXTURE_ENGINE_SLATELOG_H_

#include <cstdint>

namespace muppet {

struct SlateLogRecord {
  uint64_t lsn = 0;
  uint64_t seq = 0;
  uint64_t dedup = 0;
};

void PutVarint64(void* out, uint64_t v);
bool GetVarint64(void* in, uint64_t* v);

inline void EncodeSlateLogRecord(void* out, const SlateLogRecord& rec) {
  PutVarint64(out, rec.lsn);
  PutVarint64(out, rec.seq);
  PutVarint64(out, rec.dedup);
}

inline bool DecodeSlateLogRecord(void* in, SlateLogRecord* rec) {
  if (!GetVarint64(in, &rec->lsn)) return false;
  if (!GetVarint64(in, &rec->seq)) return false;
  return true;
}

}  // namespace muppet

#endif  // FIXTURE_ENGINE_SLATELOG_H_
