// Fixture: well-ordered acquisitions, no banned calls, no unguarded
// mutable state.
#include "common/sync.h"

namespace muppet {

class Ordered {
 public:
  void Both() {
    MutexLock a(low_);
    MutexLock b(mid_);
  }

 private:
  Mutex low_{LockLevel::kLow};
  Mutex mid_{LockLevel::kMid};
};

}  // namespace muppet
