// Fixture: a complete changelog codec — record and manifest both round
// trip every field, so the slatelog wire scope stays quiet on clean code.
#ifndef FIXTURE_ENGINE_SLATELOG_H_
#define FIXTURE_ENGINE_SLATELOG_H_

#include <cstdint>

namespace muppet {

struct SlateLogRecord {
  uint64_t lsn = 0;
  uint64_t seq = 0;
  uint64_t dedup = 0;
};

struct CheckpointManifest {
  uint64_t machine = 0;
  uint64_t lsn = 0;
};

void PutVarint64(void* out, uint64_t v);
bool GetVarint64(void* in, uint64_t* v);

inline void EncodeSlateLogRecord(void* out, const SlateLogRecord& rec) {
  PutVarint64(out, rec.lsn);
  PutVarint64(out, rec.seq);
  PutVarint64(out, rec.dedup);
}

inline bool DecodeSlateLogRecord(void* in, SlateLogRecord* rec) {
  if (!GetVarint64(in, &rec->lsn)) return false;
  if (!GetVarint64(in, &rec->seq)) return false;
  if (!GetVarint64(in, &rec->dedup)) return false;
  return true;
}

inline void EncodeCheckpointManifest(void* out,
                                     const CheckpointManifest& manifest) {
  PutVarint64(out, manifest.machine);
  PutVarint64(out, manifest.lsn);
}

inline bool DecodeCheckpointManifest(void* in, CheckpointManifest* manifest) {
  if (!GetVarint64(in, &manifest->machine)) return false;
  if (!GetVarint64(in, &manifest->lsn)) return false;
  return true;
}

}  // namespace muppet

#endif  // FIXTURE_ENGINE_SLATELOG_H_
