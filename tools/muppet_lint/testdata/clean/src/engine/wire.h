// Fixture: a complete codec — every Put has its Get, every encoded
// field is read back.
#ifndef FIXTURE_ENGINE_WIRE_H_
#define FIXTURE_ENGINE_WIRE_H_

#include <cstdint>

namespace muppet {

struct Ping {
  uint64_t a = 0;
  uint64_t b = 0;
};

void PutVarint64(void* out, uint64_t v);
bool GetVarint64(void* in, uint64_t* v);

inline void EncodePing(void* out, const Ping& ping) {
  PutVarint64(out, ping.a);
  PutVarint64(out, ping.b);
}

inline bool DecodePing(void* in, Ping* ping) {
  if (!GetVarint64(in, &ping->a)) return false;
  if (!GetVarint64(in, &ping->b)) return false;
  return true;
}

}  // namespace muppet

#endif  // FIXTURE_ENGINE_WIRE_H_
