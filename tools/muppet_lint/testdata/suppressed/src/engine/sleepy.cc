// Fixture: a justified suppression silences the violation on the next
// line; the run must come back clean.
#include <chrono>
#include <thread>

namespace muppet {

void Nap() {
  // muppet-lint: allow(determinism): fixture settle loop, bounded
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace muppet
