"""Pass 2: wire-codec completeness.

For every encode/decode pair in the wire-bearing files (engine/wire.h,
core/event, net/, kvstore/format.h) this pass verifies that a field
written on the wire is always read back:

  1. *Field-count pinning* — the number of Put* primitive calls in the
     encoder equals the number of Get* primitive calls in the decoder.
     Dropping a GetVarint while the PutVarint stays (the classic
     "silently truncated struct" bug) trips this even when no field
     name can be matched.
  2. *Field symmetry* — every struct member the encoder references must
     be referenced by the decoder (as `p->member`, or via an
     identically named local that is later assigned/`.assign`ed).
  3. *Struct completeness* — every member of a struct that has at least
     one encoder must appear in *some* encoder of that struct, or carry
     a `// muppet-lint: allow(wire): why` suppression on its
     declaration (for fields that deliberately never ride the wire).

Pairs are discovered by name (`EncodeX` <-> `DecodeX`); decoders
implemented as streaming reader classes are matched through the
EXTRA_PAIRS table below (e.g. EncodeRoutedEventFrame <->
RoutedEventFrameReader::Next).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cpp_model import (ClassInfo, Finding, FunctionInfo, SourceFile,
                       parse_classes, parse_functions)

CHECK = "wire"

# Files that define wire formats. Directories end with "/".
WIRE_PATHS = (
    "src/engine/wire.h",
    "src/engine/slatelog.h", "src/engine/slatelog.cc",
    "src/core/event.h", "src/core/event.cc",
    "src/core/slate.h", "src/core/slate.cc",
    "src/kvstore/format.h",
    "src/net/",
)

# Encoder -> decoder pairs that the EncodeX/DecodeX convention cannot
# discover (streaming reader classes).
EXTRA_PAIRS = {
    "EncodeRoutedEventFrame": ("RoutedEventFrameReader", "Next"),
}

PUT_RE = re.compile(r"\bPut(Varint32|Varint64|Fixed32|Fixed64|"
                    r"LengthPrefixed)\s*\(")
GET_RE = re.compile(r"\bGet(Varint32|Varint64|Fixed32|Fixed64|"
                    r"LengthPrefixed)\s*\(")


@dataclass
class Codec:
    fn: FunctionInfo
    body: str
    param: str           # name of the struct parameter ("" if none)
    struct: str          # struct type name ("" if none)
    prim_calls: int


def _in_scope(sf: SourceFile) -> bool:
    return any(sf.rel == p or (p.endswith("/") and sf.rel.startswith(p))
               for p in WIRE_PATHS)


def _struct_param(header: str, by_ref: bool) -> tuple[str, str]:
    """(param name, struct type) of the serialized struct argument."""
    if by_ref:
        m = re.search(r"\bconst\s+([A-Z]\w*)\s*&\s*(\w+)", header)
    else:
        m = re.search(r"\b([A-Z]\w*)\s*\*\s*(\w+)", header)
    if not m or m.group(1) in ("Bytes", "BytesView", "Status"):
        return "", ""
    return m.group(2), m.group(1)


def _fields_used(body: str, param: str) -> set[str]:
    """First-level member names referenced off `param` (by . or ->)."""
    if not param:
        return set()
    return {m.group(1) for m in
            re.finditer(r"\b" + re.escape(param) + r"\s*(?:\.|->)\s*(\w+)",
                        body)}


def run(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    scoped = [sf for sf in files if _in_scope(sf)]

    encoders: dict[str, Codec] = {}
    decoders: dict[str, Codec] = {}
    reader_methods: dict[tuple[str, str], Codec] = {}
    structs: dict[str, ClassInfo] = {}

    for sf in scoped:
        classes = parse_classes(sf)
        for ci in classes:
            structs.setdefault(ci.name, ci)
        for fn in parse_functions(sf, classes):
            body = sf.code[fn.body_start:fn.body_end]
            puts = len(PUT_RE.findall(body))
            gets = len(GET_RE.findall(body))
            if fn.name.startswith("Encode") and puts:
                param, struct = _struct_param(fn.header_text, by_ref=True)
                if not param:
                    # Batch encoders take vector<X> and iterate:
                    # `for (const X& item : items)`.
                    fm = re.search(
                        r"for\s*\(\s*const\s+([A-Z]\w*)\s*&\s*(\w+)\s*:",
                        body)
                    if fm:
                        struct, param = fm.group(1), fm.group(2)
                encoders[fn.name] = Codec(fn, body, param, struct, puts)
            elif fn.name.startswith("Decode") and gets:
                param, struct = _struct_param(fn.header_text, by_ref=False)
                decoders[fn.name] = Codec(fn, body, param, struct, gets)
            elif fn.cls and gets:
                param, struct = _struct_param(fn.header_text, by_ref=False)
                reader_methods[(fn.cls, fn.name)] = Codec(
                    fn, body, param, struct, gets)

    # Also pick up struct definitions outside the wire files (RoutedEvent
    # lives in engine/queue.h, Event in core/event.h).
    for sf in files:
        if sf in scoped:
            continue
        for ci in parse_classes(sf):
            structs.setdefault(ci.name, ci)

    encoded_fields_by_struct: dict[str, set[str]] = {}
    paired_structs: dict[str, list[str]] = {}

    for name, enc in sorted(encoders.items()):
        suffix = name[len("Encode"):]
        dec: Codec | None = decoders.get("Decode" + suffix)
        dec_extra_prims = 0
        if dec is None and name in EXTRA_PAIRS:
            reader_cls, method = EXTRA_PAIRS[name]
            dec = reader_methods.get((reader_cls, method))
            # A streaming reader may consume frame-level prefixes (the
            # event count) in its constructor; count those too.
            ctor = reader_methods.get((reader_cls, reader_cls))
            if ctor is not None:
                dec_extra_prims = ctor.prim_calls
        sf = enc.fn.file
        if dec is None:
            if not sf.allows(CHECK, enc.fn.line):
                findings.append(Finding(
                    CHECK, sf.rel, enc.fn.line,
                    f"{name} has no matching Decode{suffix} "
                    f"(or registered reader) in the wire scope"))
            continue

        # 1. field-count pinning
        dec_prims = dec.prim_calls + dec_extra_prims
        if enc.prim_calls != dec_prims and not sf.allows(
                CHECK, enc.fn.line):
            findings.append(Finding(
                CHECK, sf.rel, enc.fn.line,
                f"codec field-count mismatch: {name} writes "
                f"{enc.prim_calls} wire primitives but "
                f"{dec.fn.key} reads {dec_prims} "
                f"({dec.fn.file.rel}:{dec.fn.line})"))

        # 2. field symmetry (needs a recognizable struct param on the
        # encoder; the decoder may use locals named after the fields).
        enc_fields = _fields_used(enc.body, enc.param)
        if enc.struct:
            encoded_fields_by_struct.setdefault(
                enc.struct, set()).update(enc_fields)
            paired_structs.setdefault(enc.struct, []).append(name)
        dec_fields = _fields_used(dec.body, dec.param)
        dec_idents = set(re.findall(r"[A-Za-z_]\w*", dec.body))
        for f in sorted(enc_fields):
            if f in dec_fields or f in dec_idents:
                continue
            if sf.allows(CHECK, enc.fn.line):
                continue
            findings.append(Finding(
                CHECK, sf.rel, enc.fn.line,
                f"field '{f}' is written by {name} but never read back "
                f"by {dec.fn.key} ({dec.fn.file.rel}:{dec.fn.line})"))

    # 3. struct completeness
    for struct, enc_fields in sorted(encoded_fields_by_struct.items()):
        ci = structs.get(struct)
        if ci is None:
            continue
        for fld in ci.fields:
            if fld.is_static or fld.is_constexpr:
                continue
            if fld.name in enc_fields:
                continue
            if ci.file.allows(CHECK, fld.line):
                continue
            findings.append(Finding(
                CHECK, ci.file.rel, fld.line,
                f"{struct}::{fld.name} is never serialized by any of its "
                f"encoders ({', '.join(paired_structs[struct])}); if the "
                f"field deliberately stays off the wire, annotate it with "
                f"`// muppet-lint: allow(wire): <why>`"))

    return findings
