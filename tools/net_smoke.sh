#!/usr/bin/env bash
# Multi-process deployment smoke (DESIGN.md, "Transport backends &
# deployment model"): boots a 3-node muppetd cluster on localhost, drives
# it with muppet_loadgen over HTTP, checks /healthz and /metrics on every
# node, kills one node mid-run and restarts it (the paper's §4.3 failure
# arc over real sockets), verifies the cluster keeps answering and that
# every node converges to the same slate values, asserts clean shutdown,
# and gates the measured throughput against the committed BENCH_net.json
# baseline with tools/check_bench.py.
#
# Usage: tools/net_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MUPPETD="$REPO_ROOT/$BUILD_DIR/src/muppetd"
LOADGEN="$REPO_ROOT/$BUILD_DIR/src/muppet_loadgen"
WORK="$(mktemp -d /tmp/muppet-net-smoke.XXXXXX)"

# Offset ports by PID so parallel CI jobs on one runner cannot collide.
BASE=$((20000 + $$ % 20000))
DATA0=$((BASE)); DATA1=$((BASE + 1)); DATA2=$((BASE + 2))
ADM0=$((BASE + 3)); ADM1=$((BASE + 4)); ADM2=$((BASE + 5))

declare -a PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

fail() {
  echo "net_smoke: FAIL: $*" >&2
  echo "--- node logs ---" >&2
  tail -n 40 "$WORK"/node*.log >&2 || true
  exit 1
}

cat > "$WORK/cluster.json" <<EOF
{
  "app": "wordcount",
  "engine": {"threads_per_machine": 2, "queue_capacity": 4096,
             "overflow_policy": "throttle"},
  "durability": {"mode": "exactly_once", "dir": "$WORK/state"},
  "slo": {"target_p99_micros": 5000000},
  "nodes": [
    {"id": 0, "host": "127.0.0.1", "data_port": $DATA0,
     "admin_port": $ADM0, "machines": [0]},
    {"id": 1, "host": "127.0.0.1", "data_port": $DATA1,
     "admin_port": $ADM1, "machines": [1]},
    {"id": 2, "host": "127.0.0.1", "data_port": $DATA2,
     "admin_port": $ADM2, "machines": [2]}
  ]
}
EOF

start_node() {  # start_node <id> <logfile>
  "$MUPPETD" --config="$WORK/cluster.json" --node="$1" --run-seconds=300 \
    > "$WORK/$2" 2>&1 &
  PIDS+=($!)
  echo $!
}

wait_ready() {  # wait_ready <admin_port>
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$1/healthz" 2>/dev/null \
        | python3 -c 'import json,sys; d=json.load(sys.stdin); sys.exit(0 if d["live"] and d["ready"] else 1)' 2>/dev/null; then
      return 0
    fi
    sleep 0.2
  done
  return 1
}

echo "net_smoke: starting 3-node cluster (data $DATA0-$DATA2, admin $ADM0-$ADM2)"
PID0=$(start_node 0 node0.log)
PID1=$(start_node 1 node1.log)
PID2=$(start_node 2 node2.log)
for port in $ADM0 $ADM1 $ADM2; do
  wait_ready "$port" || fail "node on admin port $port never became ready"
done

echo "net_smoke: steady-state load"
"$LOADGEN" --targets=127.0.0.1:$ADM0,127.0.0.1:$ADM1,127.0.0.1:$ADM2 \
  --stream=lines --publishers=4 --events=250 \
  --out="$WORK/BENCH_net.json" || fail "steady-state loadgen failed"

# Every node must serve its admin plane: healthz ready, metrics
# exposition parseable with the core families present.
for port in $ADM0 $ADM1 $ADM2; do
  curl -fsS "http://127.0.0.1:$port/healthz" > "$WORK/healthz_$port.json" \
    || fail "healthz on $port"
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["live"] and d["ready"], d' \
    "$WORK/healthz_$port.json" || fail "node on $port not live/ready"
  curl -fsS "http://127.0.0.1:$port/metrics" > "$WORK/metrics_$port.prom" \
    || fail "metrics on $port"
  python3 "$REPO_ROOT/tools/check_prom.py" "$WORK/metrics_$port.prom" \
    --require muppet_build_info \
    --require muppet_transport_messages_sent_total \
    || fail "metrics exposition on $port"
done

# Multi-node doctor scrape: a healthy steady-state cluster must produce
# no critical finding across all three nodes.
python3 "$REPO_ROOT/tools/muppet_doctor.py" \
  "http://127.0.0.1:$ADM0" "http://127.0.0.1:$ADM1" \
  "http://127.0.0.1:$ADM2" || fail "muppet-doctor found a critical issue"

echo "net_smoke: killing node 1 mid-run"
kill -9 "$PID1"
"$LOADGEN" --targets=127.0.0.1:$ADM0,127.0.0.1:$ADM2 \
  --stream=lines --publishers=4 --events=100 \
  || fail "loadgen through survivors failed"
curl -fsS "http://127.0.0.1:$ADM0/healthz" | python3 -c \
  'import json,sys; d=json.load(sys.stdin); assert d["live"], d' \
  || fail "survivor node 0 unhealthy during outage"

echo "net_smoke: restarting node 1"
PID1B=$(start_node 1 node1b.log)
wait_ready "$ADM1" || fail "restarted node 1 never became ready"
"$LOADGEN" --targets=127.0.0.1:$ADM0,127.0.0.1:$ADM1,127.0.0.1:$ADM2 \
  --stream=lines --publishers=4 --events=100 \
  || fail "loadgen after restart failed"

# Settle in-flight events, then every node must agree on the slate value
# for a hot word — node 1 and 2 answer via cross-process slate fetch.
curl -fsS -X POST "http://127.0.0.1:$ADM0/drainz" > /dev/null || true
sleep 1
counts=""
for port in $ADM0 $ADM1 $ADM2; do
  c=$(curl -fsS "http://127.0.0.1:$port/slate/count/fast") \
    || fail "slate fetch on $port"
  counts="$counts $c"
done
echo "net_smoke: slate answers:$counts"
[ "$(echo "$counts" | tr ' ' '\n' | sort -u | sed '/^$/d' | wc -l)" = "1" ] \
  || fail "nodes disagree on slate value:$counts"

echo "net_smoke: clean shutdown"
kill -TERM "$PID0" "$PID1B" "$PID2"
for _ in $(seq 1 100); do
  kill -0 "$PID0" 2>/dev/null || kill -0 "$PID1B" 2>/dev/null \
    || kill -0 "$PID2" 2>/dev/null || break
  sleep 0.2
done
grep -q 'stopped clean=1' "$WORK/node0.log" || fail "node 0 unclean shutdown"
grep -q 'stopped clean=1' "$WORK/node1b.log" || fail "node 1 unclean shutdown"
grep -q 'stopped clean=1' "$WORK/node2.log" || fail "node 2 unclean shutdown"

echo "net_smoke: gating BENCH_net.json against committed baseline"
python3 "$REPO_ROOT/tools/check_bench.py" "$REPO_ROOT/BENCH_net.json" \
  "$WORK/BENCH_net.json" || fail "throughput regression vs BENCH_net.json"

echo "net_smoke: OK (work dir $WORK)"
