// Fixture: raw std synchronization that check_sync must reject.
#include <mutex>

namespace muppet {

std::mutex g_raw;

void Touch() { std::lock_guard<std::mutex> lock(g_raw); }

}  // namespace muppet
