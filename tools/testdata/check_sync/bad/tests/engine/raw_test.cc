// Fixture: raw std synchronization in a test file — the extended scan
// over tests/ must catch this too.
#include <shared_mutex>

namespace muppet {

std::shared_mutex g_test_raw;

}  // namespace muppet
