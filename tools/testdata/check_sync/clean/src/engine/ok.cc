// Fixture: uses only the project wrappers; check_sync must pass.
#include "common/sync.h"

namespace muppet {

class Fine {
 public:
  void Touch() { MutexLock lock(mutex_); }

 private:
  Mutex mutex_{LockLevel::kUnordered};
};

}  // namespace muppet
