#!/usr/bin/env python3
"""Fixture tests for the standalone repo linters (ctest: tools_selftest).

Covers:
  * check_sync.py — rejects raw std synchronization in src/ AND tests/
    (the fixture seeds one violation in each), passes a clean tree
  * check_prom.py — accepts a spec-conforming exposition, rejects one
    with a duplicate sample and a non-cumulative histogram ladder

check_bench.py and muppet-lint carry their own selftests
(check_bench.py --selftest, muppet_lint/selftest.py).
"""

from __future__ import annotations

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
TESTDATA = os.path.join(HERE, "testdata")

_failures: list[str] = []


def run(script: str, *args: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, os.path.join(HERE, script), *args],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(cond: bool, what: str) -> None:
    tag = "ok" if cond else "FAIL"
    print(f"[{tag}] {what}")
    if not cond:
        _failures.append(what)


def main() -> int:
    rc, out = run("check_sync.py", os.path.join(TESTDATA, "check_sync",
                                                "clean"))
    check(rc == 0, f"check_sync passes the clean fixture (rc={rc})")

    rc, out = run("check_sync.py", os.path.join(TESTDATA, "check_sync",
                                                "bad"))
    check(rc == 1, f"check_sync fails the seeded fixture (rc={rc})")
    check("raw.cc" in out and "std::mutex" in out,
          "src/ violation reported with file and primitive")
    check("raw_test.cc" in out,
          "tests/ violation reported (extended scan)")

    rc, out = run("check_prom.py", os.path.join(TESTDATA, "check_prom",
                                                "good.prom"))
    check(rc == 0, f"check_prom accepts a conforming scrape (rc={rc})")

    rc, out = run("check_prom.py", os.path.join(TESTDATA, "check_prom",
                                                "bad.prom"))
    check(rc == 1, f"check_prom rejects the seeded scrape (rc={rc})")
    check("duplicate" in out.lower(), "duplicate sample reported")
    check("cumulative" in out.lower() or "bucket" in out.lower(),
          "non-cumulative histogram ladder reported")

    # --require: present families (exact and wildcard) pass, missing fail.
    good = os.path.join(TESTDATA, "check_prom", "good.prom")
    rc, out = run("check_prom.py", good,
                  "--require", "muppet_events_total",
                  "--require", "muppet_latency_*")
    check(rc == 0, f"check_prom --require accepts present families (rc={rc})")
    rc, out = run("check_prom.py", good,
                  "--require", "muppet_build_info")
    check(rc == 1, f"check_prom --require rejects a missing family (rc={rc})")
    check("muppet_build_info" in out, "missing required family named")

    if _failures:
        print(f"\ntools_selftest: {len(_failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("\ntools_selftest: all fixtures behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
